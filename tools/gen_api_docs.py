"""Generate docs/API.md from the package's docstrings.

Run from the repository root::

    python tools/gen_api_docs.py

Walks every module under ``repro``, collects public classes and functions
(the names each module exports via ``__all__``), and renders their
signatures and docstring summaries into a single Markdown reference.
Keeping the reference generated — not hand-written — means it cannot
drift from the code.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path
from typing import List

import repro

OUTPUT = Path(__file__).resolve().parent.parent / "docs" / "API.md"

# Hand-authored deep-dive appended after the generated per-module
# reference.  Lives here (not in docs/API.md directly) so the byte-equality
# check in tests/test_tools.py keeps covering the whole file.
ENGINE_INTERNALS = """\
## Opt-EdgeCut engine internals

`repro.core.opt_edgecut.OptEdgeCut` is a bitmask engine.  A `CutTree` is
capped at `MAX_OPT_NODES` (16) nodes, so every component the solver ever
sees is a subset of indices `0..15` and is represented as a Python int
bitmask (bit *i* set ⟺ node *i* in the component):

- **Subtree masks** — `__init__` precomputes, bottom-up, the mask of each
  node's full subtree.  The component below a cut edge `(parent, child)`
  is `subtree_mask[child] & component_mask`; the upper component clears
  those bits.  No set algebra, no hashing.
- **Citation bitmaps** — each distinct citation id across the tree gets
  one bit; a component's distinct-result count is the OR of its members'
  bitmaps popcounted (`int.bit_count()`), replacing frozenset unions.
- **Mask-keyed memos** — `solve_component_mask` memoizes `BestCut`s in a
  dict keyed by the component mask, and per-mask EXPLORE/result/member
  statistics are memoized the same way.  `memo_items()` exposes the
  frozenset view for compatibility; `repro.core.heuristic` harvests the
  raw masks via `memo_masks()`.
- **Lazy pruned search** — instead of materializing the cross-product of
  per-child cut options, `_search_cuts` walks it as a DFS over a cons
  list of undecided subtrees, accumulating a lower bound (expand cost
  plus reveal + lower-component cost per decided edge, in canonical
  order) and abandoning any prefix whose bound already reaches the best
  term.  Because every addend is non-negative and IEEE rounding is
  monotone, the bound never exceeds the true term, so pruning is exact:
  the engine returns bit-identical cuts and expected costs to the
  exhaustive reference (`repro.core.opt_edgecut_reference`, kept as the
  oracle for the property suite in `tests/test_opt_engine_equivalence.py`).

The enumeration order matches the legacy engine (per child: cut edge
first, then the child's own cuts, empty cut last; earlier children vary
slowest) and ties break to the first minimum, so `explain` traces and
golden tests are unaffected.  `benchmarks/bench_opt_engine.py` holds the
speedup floor (≥3× on a 12-node exact solve) and emits
`BENCH_opt_engine.json`.
"""

SERVING_HTTP = """\
## Serving runtime and HTTP observability

`repro.serving.ServingRuntime` is the thread-safe facade the web layer
mounts (see DESIGN.md "Serving runtime" for the threading model).  Its
two observability surfaces are served by `repro.web.app.BioNavWebApp`
without passing through the worker pool, so they answer even when the
pool is saturated:

### `GET /api/health`

| field            | meaning                                              |
|------------------|------------------------------------------------------|
| `status`         | `ok`, or `overloaded` when the admission queue is full |
| `workers`        | worker-pool size (request concurrency cap)           |
| `queue_depth`    | admitted requests currently waiting for a worker     |
| `queue_capacity` | admission-queue bound; beyond it requests are shed   |
| `in_flight`      | requests currently executing on workers              |
| `sessions_active`| live navigation sessions in the registry             |
| `solver`         | canonical registry name of the serving solver        |
| `results_page_size` | citations per SHOWRESULTS page (serving config)   |
| `uptime_seconds` | seconds since the runtime was constructed            |

### `GET /api/stats`

Extends the per-query rows and solver summary with serving counters:

- `pipeline` — per-stage cache/latency counters from the staged
  navigation pipeline (DESIGN.md §10): for each of `hierarchy`,
  `results`, `nav_tree`, `active_tree`, and `cut`, the stage's
  `hits` / `misses` / `coalesced` / `evictions` / `size` / `capacity`
  (cached stages), `builds` / `runs`, and build-latency aggregates
  (`build_seconds_total`, `build_ms_avg`, `build_ms_max`).
- `query_cache` — the `nav_tree` stage's counters rendered on the
  historical surface: `size`, `capacity`, `hits`, `misses`,
  `evictions`, `hit_ratio` (same value as the legacy `hit_rate` key),
  and `single_flight_coalesced`: requests that waited on another
  thread's in-progress tree build instead of duplicating it.
- `sessions` — `active`, `capacity`, `created`, `evicted`, and
  `expired_lookups` (requests that named an evicted session and were
  answered `410 Gone` / `session_expired`).
- `serving` — `workers`, `queue_depth`, `queue_capacity`, `in_flight`,
  `admitted`, `completed`, and `shed.overload` / `shed.deadline` /
  `shed.total` (requests rejected `503` with a `Retry-After` hint).
- `solver` — per-EXPAND latency aggregates including `p50_ms` and
  `p95_ms`, collected by the shared `AtomicSolverProfile`.

Shed responses use HTTP 503 with `Retry-After` (derived from the
configured queueing deadline); requests naming an evicted session get
HTTP 410 with `error_code: "session_expired"` (distinct from 404
`not_found` for ids that never existed).
`benchmarks/bench_serving.py` load-tests the runtime (1 → 4 worker
scaling, zero shed, zero lost sessions) and emits `BENCH_serving.json`.
"""

CLUSTER_HTTP = """\
## Cluster mode: merged observability surfaces

`python -m repro.web --cluster N` mounts
`repro.cluster.BioNavCluster` — N worker processes, each hosting a
full `ServingRuntime`, sharing stage artifacts through the file-backed
L2 store (DESIGN.md §13) — behind the same web app, which duck-types
the runtime surface.  Session ids gain a routing prefix
(`w<index>g<generation>-s…`); sessions owned by a crashed-and-respawned
worker answer `410 Gone` with the re-search hint.  The two
observability endpoints merge the fleet:

### `GET /api/health` (cluster)

Top level keeps the single-process fields (`status` — `degraded` when
any shard is unreachable or non-`ok` — summed `queue_depth`,
`sessions_active`, `results_page_size`, `uptime_seconds`) and adds:

| field     | meaning                                                   |
|-----------|-----------------------------------------------------------|
| `cluster` | `size`, `placement` (`spread`/`shard`), `crashes` (respawns over the fleet's lifetime) |
| `shards`  | one row per worker: `name`, `generation`, `alive`, `respawns`, `queue_depth`, `status`, and the worker's own `health` answer |

### `GET /api/stats` (cluster)

- `pipeline` — per-stage counters summed across workers, hit ratios
  recomputed from the sums (same row shape as single-process mode).
- `l2` — the shared store, fleet-wide: summed `hits` / `misses` /
  `publishes` / `evictions` / `errors`, recomputed `hit_ratio`, and a
  single `entries` / `bytes` census (every worker sees one directory).
- `cluster` — `size`, `placement`, `crashes`, `hints_learned` (shard
  hints the router has cached), `branch_shards`, the hash `ring`
  (`members`, `replicas`), and fleet-summed `shed_total`.
- `workers` — per-worker raw `stats` answers for drill-down, each with
  `name` / `generation` / `alive` / `respawns` / `queue_depth`.

`benchmarks/bench_cluster.py` load-tests the fleet (CPU-bound 1 → 4
process scaling, zero shed/lost, ledger-verified cross-worker L2 hit)
and emits `BENCH_cluster.json`.
"""


def iter_module_names() -> List[str]:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        names.append(info.name)
    return sorted(names)


def first_paragraph(doc: str) -> str:
    lines: List[str] = []
    for line in doc.strip().splitlines():
        if not line.strip():
            break
        lines.append(line.strip())
    return " ".join(lines)


def describe_callable(name: str, obj) -> List[str]:
    try:
        signature = str(inspect.signature(obj))
    except (TypeError, ValueError):
        signature = "(...)"
    doc = inspect.getdoc(obj) or ""
    summary = first_paragraph(doc) if doc else "(undocumented)"
    return ["- **`%s%s`** — %s" % (name, signature, summary)]


def describe_class(name: str, cls) -> List[str]:
    doc = inspect.getdoc(cls) or ""
    summary = first_paragraph(doc) if doc else "(undocumented)"
    lines = ["- **`%s`** — %s" % (name, summary)]
    for method_name, method in sorted(vars(cls).items()):
        if method_name.startswith("_"):
            continue
        if isinstance(method, (staticmethod, classmethod)):
            method = method.__func__
        if not callable(method):
            continue
        method_doc = inspect.getdoc(method) or ""
        if not method_doc:
            continue
        try:
            signature = str(inspect.signature(method))
        except (TypeError, ValueError):
            signature = "(...)"
        lines.append(
            "  - `%s%s` — %s" % (method_name, signature, first_paragraph(method_doc))
        )
    return lines


def render() -> str:
    out: List[str] = [
        "# API reference",
        "",
        "_Generated by `python tools/gen_api_docs.py` — do not edit by hand._",
        "",
    ]
    for module_name in iter_module_names():
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if not exported:
            continue
        out.append("## `%s`" % module_name)
        out.append("")
        module_doc = inspect.getdoc(module)
        if module_doc:
            out.append(first_paragraph(module_doc))
            out.append("")
        for name in exported:
            obj = getattr(module, name, None)
            if obj is None:
                continue
            # Skip re-exports documented in their home module.
            home = getattr(obj, "__module__", module_name)
            if home != module_name and home.startswith("repro."):
                continue
            if inspect.isclass(obj):
                out.extend(describe_class(name, obj))
            elif callable(obj):
                out.extend(describe_callable(name, obj))
            else:
                out.append("- **`%s`** — constant" % name)
        out.append("")
    out.append(ENGINE_INTERNALS)
    out.append("")
    out.append(SERVING_HTTP)
    out.append(CLUSTER_HTTP)
    return "\n".join(out)


def main() -> int:
    OUTPUT.parent.mkdir(exist_ok=True)
    text = render()
    OUTPUT.write_text(text)
    print("wrote %s (%d lines)" % (OUTPUT, len(text.splitlines())))
    return 0


if __name__ == "__main__":
    sys.exit(main())
