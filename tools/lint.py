#!/usr/bin/env python
"""Compatibility shim: the legacy lint CLI over ``tools.analyzer``.

Historically this file carried its own AST checks (unused imports,
duplicate imports, ``import *``).  Those checks now live in the
``tools/analyzer`` rule framework alongside the repo's semantic solver
rules; this shim keeps the old entry point (``python tools/lint.py
[paths...]``, ``make lint``) working by running the lint-level rule
subset.  Use ``python -m tools.analyzer`` (``make analyze``) for the
full gate including the determinism/recursion/float/bitmask rules.

Exit status is non-zero when any finding is reported.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analyzer import DEFAULT_TARGETS, analyze  # noqa: E402
from tools.analyzer.runner import main as _analyzer_main  # noqa: E402

Finding = Tuple[Path, int, str]


def check_file(path: Path) -> List[Finding]:
    """Legacy API: lint-level findings for one file as (path, line, msg).

    Retained for callers of the pre-framework module; new code should use
    :func:`tools.analyzer.analyze` directly.
    """
    findings, _, _, _ = analyze(paths=[str(path)], lint_only=True)
    return [(Path(f.path), f.line, f.message) for f in findings]


def main(argv: Optional[List[str]] = None) -> int:
    """Run the lint-level rules over ``argv`` paths (default: repo targets)."""
    paths = list(argv) if argv else list(DEFAULT_TARGETS)
    return _analyzer_main(["--lint-only"] + paths)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
