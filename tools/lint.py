#!/usr/bin/env python
"""Static lint for the repro source tree.

Prefers ``pyflakes`` (or ``ruff``) when installed; otherwise falls back to
a built-in AST pass that catches the defect classes this repo has actually
shipped: unused imports, duplicate imports, and ``import *``.  The
fallback keeps ``make lint`` meaningful in the hermetic CI container,
where neither external linter is available.

Usage:
    python tools/lint.py [paths...]     # default: src/repro tools benchmarks

Exit status is non-zero when any finding is reported.
"""

from __future__ import annotations

import ast
import subprocess
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGETS = ("src/repro", "tools", "benchmarks")

Finding = Tuple[Path, int, str]


def _python_files(targets: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for target in targets:
        if target.is_file() and target.suffix == ".py":
            files.append(target)
        elif target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
    return files


class _ImportChecker(ast.NodeVisitor):
    """Collects imported names and every name the module actually uses."""

    def __init__(self) -> None:
        # binding name -> (line, display name), first occurrence wins
        self.imports: List[Tuple[str, int, str]] = []
        self.used: set = set()
        self.star_imports: List[int] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            binding = alias.asname or alias.name.split(".")[0]
            self.imports.append((binding, node.lineno, alias.name))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":
            return  # future statements are directives, not bindings
        for alias in node.names:
            if alias.name == "*":
                self.star_imports.append(node.lineno)
                continue
            binding = alias.asname or alias.name
            self.imports.append((binding, node.lineno, alias.name))

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)


def _string_uses(tree: ast.Module) -> set:
    """Names referenced from string annotations/docstring-free strings.

    With ``from __future__ import annotations`` every annotation is a
    string at runtime; a conservative scan of every string constant keeps
    typing-only imports (``TYPE_CHECKING`` blocks, quoted annotations)
    from being flagged.
    """
    names: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            for token in (
                node.value.replace("[", " ")
                .replace("]", " ")
                .replace(",", " ")
                .replace(".", " ")
                .replace('"', " ")
                .replace("'", " ")
                .split()
            ):
                if token.isidentifier():
                    names.add(token)
    return names


def _annotation_uses(tree: ast.Module) -> set:
    names: set = set()
    for node in ast.walk(tree):
        annotation = getattr(node, "annotation", None)
        if annotation is not None:
            for sub in ast.walk(annotation):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        returns = getattr(node, "returns", None)
        if returns is not None:
            for sub in ast.walk(returns):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def check_file(path: Path) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, "syntax error: %s" % exc.msg)]
    checker = _ImportChecker()
    checker.visit(tree)
    findings: List[Finding] = []
    for line in checker.star_imports:
        findings.append((path, line, "star import hides unused names"))
    # __all__ re-exports count as uses (package __init__ modules).
    exported: set = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        exported.add(element.value)
    used = checker.used | _annotation_uses(tree) | _string_uses(tree) | exported
    # Duplicate detection covers module level only — re-importing inside a
    # function is the standard lazy-import pattern, not a defect.
    top_level: set = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            names = [a.asname or a.name.split(".")[0] for a in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module != "__future__":
            names = [a.asname or a.name for a in node.names if a.name != "*"]
        else:
            continue
        for name in names:
            if name in top_level:
                findings.append(
                    (path, node.lineno, "duplicate import '%s'" % name)
                )
            top_level.add(name)
    for binding, line, display in checker.imports:
        if binding == "_" or binding.startswith("__"):
            continue
        if path.name == "__init__.py":
            # Packages import to re-export; presence is the point.
            continue
        if binding not in used:
            findings.append((path, line, "unused import '%s'" % display))
    return findings


def _external_linter(files: List[Path]) -> "int | None":
    """Run pyflakes (or ruff) when installed; None when neither is."""
    try:
        import pyflakes  # noqa: F401 - availability probe

        proc = subprocess.run(
            [sys.executable, "-m", "pyflakes"] + [str(f) for f in files],
            cwd=REPO_ROOT,
        )
        return proc.returncode
    except ImportError:
        pass
    try:
        proc = subprocess.run(
            ["ruff", "check"] + [str(f) for f in files], cwd=REPO_ROOT
        )
        return proc.returncode
    except OSError:
        return None


def main(argv: List[str]) -> int:
    targets = [
        (REPO_ROOT / arg) if not Path(arg).is_absolute() else Path(arg)
        for arg in (argv or list(DEFAULT_TARGETS))
    ]
    files = _python_files(targets)
    if not files:
        print("lint: no python files under %s" % ", ".join(map(str, targets)))
        return 1
    external = _external_linter(files)
    if external is not None:
        return external
    findings: List[Finding] = []
    for path in files:
        findings.extend(check_file(path))
    for path, line, message in findings:
        try:
            shown = path.relative_to(REPO_ROOT)
        except ValueError:  # explicit targets outside the repo
            shown = path
        print("%s:%d: %s" % (shown, line, message))
    if findings:
        print("lint: %d finding(s) in %d files" % (len(findings), len(files)))
        return 1
    print("lint: OK (%d files)" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
