"""Repository tooling: lint shim, static analyzer, docs generator."""
