"""Framework primitives: findings, rules, the registry, and the index.

A :class:`Rule` sees one parsed module at a time plus the whole-project
:class:`ProjectIndex` built by the first pass, and returns
:class:`Finding` objects.  Rules self-register via the :func:`register`
decorator so adding one is a single import in ``tools.analyzer.rules``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

__all__ = [
    "SEVERITIES",
    "Finding",
    "ModuleInfo",
    "ProjectIndex",
    "Rule",
    "register",
    "all_rules",
]

# Both severities fail the gate on new findings; the label records how
# dangerous a violation is (errors break solver invariants, warnings are
# hygiene defects).
SEVERITIES = ("error", "warning")

# Inline suppression: ``# repro: ignore[rule-id]`` (comma-separated ids,
# or ``*`` for every rule) on the flagged line.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_\-*,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str  # repo-relative posix path (or absolute for external targets)
    line: int
    message: str
    severity: str = "warning"

    @property
    def key(self) -> str:
        """Line-insensitive fingerprint used for baseline matching.

        Line numbers churn with unrelated edits, so grandfathered
        findings are identified by (rule, file, message) instead.
        """
        return "%s::%s::%s" % (self.rule, self.path, self.message)

    def render(self) -> str:
        """The canonical single-line text form."""
        return "%s:%d: [%s] %s: %s" % (
            self.path,
            self.line,
            self.severity,
            self.rule,
            self.message,
        )


class ModuleInfo:
    """One parsed target file: source, AST, and inline suppressions."""

    def __init__(self, path: Path, rel: str, source: str, tree: Optional[ast.Module]):
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree  # None when the file failed to parse
        self.lines = source.splitlines()
        #: line number -> rule ids suppressed on that line ("*" = all)
        self.suppressions: Dict[int, Set[str]] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                self.suppressions[number] = {i for i in ids if i}

    @property
    def parts(self) -> Sequence[str]:
        """Path components of the repo-relative path."""
        return tuple(self.rel.split("/"))

    @property
    def name(self) -> str:
        """File basename (e.g. ``opt_edgecut.py``)."""
        return self.parts[-1]

    def exported_names(self) -> Set[str]:
        """Names the module lists in a top-level ``__all__``."""
        if self.tree is None:
            return set()
        exported: Set[str] = set()
        for node in self.tree.body:
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if "__all__" in targets and isinstance(
                    node.value, (ast.List, ast.Tuple)
                ):
                    for element in node.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            exported.add(element.value)
        return exported

    def is_suppressed(self, finding: Finding) -> bool:
        """True when the finding's line carries a matching suppression."""
        ids = self.suppressions.get(finding.line)
        if not ids:
            return False
        return "*" in ids or finding.rule in ids


@dataclass
class ProjectIndex:
    """Pass-1 product: every parsed module, addressable by relative path."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)

    def add(self, info: ModuleInfo) -> None:
        """Register one parsed module."""
        self.modules[info.rel] = info
        self._project = None  # symbol table is stale once membership changes

    def __iter__(self):
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)

    def project(self):
        """The whole-program :class:`~tools.analyzer.project.ProjectContext`.

        Built lazily on the first interprocedural rule that asks and
        cached for the rest of the run, so the symbol-table/call-graph
        pass happens at most once per analysis regardless of how many
        rules (or modules) consume it.
        """
        from tools.analyzer.project import ProjectContext

        if getattr(self, "_project", None) is None:
            self._project = ProjectContext.build(self)
        return self._project


class Rule:
    """Base class for one analysis rule.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes:
        id: stable kebab-case identifier (used in suppressions/baseline).
        severity: ``"error"`` or ``"warning"``.
        lint_level: lint-level rules also run on ``tests/`` and
            ``examples/``; semantic (solver-invariant) rules do not.
        description: one-line catalog entry for ``--list-rules``.
    """

    id: str = ""
    severity: str = "warning"
    lint_level: bool = False
    #: interprocedural rules consult the whole-program ProjectContext;
    #: ``--write-baseline`` refuses to grandfather their findings
    #: without ``--force`` (cross-module invariants are fixed, not
    #: baselined).
    interprocedural: bool = False
    description: str = ""

    def applies_to(self, module: ModuleInfo) -> bool:
        """Whether this rule runs on ``module`` (default: every module)."""
        return True

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        """Analyze one module; return all violations found."""
        raise NotImplementedError

    # Convenience -------------------------------------------------------
    def finding(self, module: ModuleInfo, line: int, message: str) -> Finding:
        """Build a Finding for this rule at ``module``:``line``."""
        return Finding(
            rule=self.id,
            path=module.rel,
            line=line,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (by instance) to the global registry."""
    if not rule_cls.id:
        raise ValueError("rule %r has no id" % (rule_cls,))
    if rule_cls.severity not in SEVERITIES:
        raise ValueError(
            "rule %s has invalid severity %r" % (rule_cls.id, rule_cls.severity)
        )
    if rule_cls.id in _REGISTRY:
        raise ValueError("duplicate rule id %r" % (rule_cls.id,))
    _REGISTRY[rule_cls.id] = rule_cls()
    return rule_cls


def all_rules(lint_only: bool = False) -> List[Rule]:
    """Every registered rule, sorted by id.

    Args:
        lint_only: restrict to lint-level rules (the ``tools/lint.py``
            shim and the ``tests/``/``examples/`` targets).
    """
    # Importing the rules package triggers registration on first use.
    from tools.analyzer import rules  # noqa: F401

    selected: Iterable[Rule] = _REGISTRY.values()
    if lint_only:
        selected = (rule for rule in selected if rule.lint_level)
    return sorted(selected, key=lambda rule: rule.id)
