"""Analysis driver: file collection, the multi-pass loop, and the CLI.

Pass 1 parses every target file into the :class:`ProjectIndex`; pass 2
runs each registered rule over the modules its scope matches; pass 3
drops suppressed findings and subtracts the committed baseline.  The
process exits non-zero when any unbaselined finding remains.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from tools.analyzer.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, all_rules
from tools.analyzer.reporters import json_report, sarif_report, text_report

__all__ = ["REPO_ROOT", "DEFAULT_TARGETS", "LINT_ONLY_DIRS", "analyze", "main"]

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: Everything the gate watches.  ``tests``/``examples`` get lint-level
#: rules only (see LINT_ONLY_DIRS); the rest gets the full rule set.
DEFAULT_TARGETS = ("src/repro", "tools", "benchmarks", "tests", "examples")

#: Directory names whose files only receive lint-level rules — test and
#: example code may legitimately recurse, compare floats, etc.
#: ``benchmarks`` gets the full semantic set: benchmark drivers share
#: the substrate and the pipeline, so a mutation or nondeterminism bug
#: there invalidates the numbers the ROADMAP steers by.
LINT_ONLY_DIRS = {"tests", "examples"}


def _python_files(targets: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for target in targets:
        if target.is_file() and target.suffix == ".py":
            files.append(target)
        elif target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
    return files


def _relative(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:  # explicit targets outside the repo (tests, CI)
        return path.resolve().as_posix()


def _index(files: List[Path]) -> ProjectIndex:
    """Pass 1: parse every file once; record syntax errors on the module."""
    index = ProjectIndex()
    for path in files:
        source = path.read_text(encoding="utf-8")
        rel = _relative(path)
        try:
            tree = ast.parse(source, filename=str(path))
            info = ModuleInfo(path, rel, source, tree)
        except SyntaxError as exc:
            info = ModuleInfo(path, rel, source, None)
            info.syntax_error = (exc.lineno or 0, exc.msg or "invalid syntax")
        index.add(info)
    return index


def _lint_only_module(info: ModuleInfo) -> bool:
    return any(part in LINT_ONLY_DIRS for part in info.parts[:-1])


def analyze(
    paths: Optional[Iterable[str]] = None,
    lint_only: bool = False,
    baseline_path: Optional[Path] = None,
) -> Tuple[List[Finding], ProjectIndex, int, List[str]]:
    """Run the full pipeline over ``paths`` (default: the repo targets).

    Args:
        paths: files/directories to analyze; relative paths resolve
            against the repo root.
        lint_only: restrict to lint-level rules (the ``tools/lint.py``
            compatibility surface).
        baseline_path: baseline file to subtract; ``None`` uses the
            committed default, and a missing file means an empty baseline.

    Returns:
        (new findings, project index, baselined-finding count,
        stale baseline keys).
    """
    targets = [
        (REPO_ROOT / p) if not Path(p).is_absolute() else Path(p)
        for p in (list(paths) if paths else list(DEFAULT_TARGETS))
    ]
    index = _index(_python_files(targets))
    rules = all_rules(lint_only=lint_only)
    findings: List[Finding] = []
    for info in index:
        for rule in rules:
            if not rule.lint_level and _lint_only_module(info):
                continue
            if not rule.applies_to(info):
                continue
            for finding in rule.check(info, index):
                if not info.is_suppressed(finding):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    baseline = load_baseline(baseline_path or DEFAULT_BASELINE)
    fresh, stale = apply_baseline(findings, baseline)
    return fresh, index, len(findings) - len(fresh), stale


def _committed_baseline_total(path: Path) -> Optional[int]:
    """Total tolerated findings in the committed (HEAD) baseline.

    ``None`` when the count cannot be determined — git missing, the
    baseline outside the repo, not yet committed — in which case the
    ratchet does not apply.
    """
    try:
        rel = path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return None
    try:
        proc = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "show", "HEAD:%s" % rel],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    try:
        data = json.loads(proc.stdout)
    except ValueError:
        return None
    findings = data.get("findings")
    if not isinstance(findings, dict):
        return None
    return sum(int(count) for count in findings.values())


def _ratchet_violation(baseline_path: Path) -> Optional[str]:
    """Error text when the working baseline tolerates more than HEAD's.

    The baseline is a ratchet: regenerating after a fix shrinks it, and
    growth means someone grandfathered a *new* defect instead of fixing
    it.  Escape hatch for the rare legitimate growth (e.g. a new rule
    with justified historic findings): ``ANALYZE_ALLOW_BASELINE_GROWTH=1``.
    """
    if os.environ.get("ANALYZE_ALLOW_BASELINE_GROWTH") == "1":
        return None
    committed = _committed_baseline_total(baseline_path)
    if committed is None:
        return None
    current = sum(load_baseline(baseline_path).values())
    if current > committed:
        return (
            "analyze: baseline ratchet: %s tolerates %d finding(s) but the "
            "committed version tolerates %d; fix the findings instead of "
            "growing the baseline (ANALYZE_ALLOW_BASELINE_GROWTH=1 to "
            "override)" % (baseline_path.name, current, committed)
        )
    return None


def _list_rules() -> str:
    lines = ["rule catalog:"]
    for rule in all_rules():
        level = "lint" if rule.lint_level else "semantic"
        lines.append(
            "  %-18s %-8s %-9s %s" % (rule.id, rule.severity, level, rule.description)
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Rule-based static analysis gate for this repository.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files/directories (default: repo targets)"
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--lint-only",
        action="store_true",
        help="run only the lint-level rules (tools/lint.py surface)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: tools/analyzer/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="let --write-baseline grandfather interprocedural-rule findings",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail when the analysis wall time exceeds this budget",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0

    baseline_path = options.baseline or DEFAULT_BASELINE
    if options.no_baseline:
        # Point the subtraction at a guaranteed-missing file.
        baseline_path = baseline_path.with_suffix(".disabled.json")
    elif baseline_path.is_file() and not options.write_baseline:
        ratchet_error = _ratchet_violation(baseline_path)
        if ratchet_error is not None:
            print(ratchet_error, file=sys.stderr)
            return 1

    started = time.perf_counter()
    fresh, index, baselined, stale = analyze(
        paths=options.paths or None,
        lint_only=options.lint_only,
        baseline_path=baseline_path,
    )
    elapsed = time.perf_counter() - started
    if len(index) == 0:
        print("analyze: no python files matched the targets", file=sys.stderr)
        return 1

    if options.write_baseline:
        # Re-run unbaselined so the file captures the complete picture.
        everything, _, _, _ = analyze(
            paths=options.paths or None,
            lint_only=options.lint_only,
            baseline_path=baseline_path.with_suffix(".disabled.json"),
        )
        interprocedural_ids = {
            rule.id for rule in all_rules() if rule.interprocedural
        }
        blocked = sorted(
            {f.key for f in everything if f.rule in interprocedural_ids}
        )
        if blocked and not options.force:
            print(
                "analyze: refusing to baseline %d interprocedural finding(s) "
                "(cross-module invariants are fixed, not grandfathered); "
                "re-run with --force to override:" % len(blocked),
                file=sys.stderr,
            )
            for key in blocked:
                print("  %s" % key, file=sys.stderr)
            return 1
        write_baseline(options.baseline or DEFAULT_BASELINE, everything)
        print(
            "analyze: baseline written with %d finding(s) to %s"
            % (len(everything), options.baseline or DEFAULT_BASELINE)
        )
        return 0

    reporters = {"json": json_report, "sarif": sarif_report, "text": text_report}
    report = reporters[options.fmt](fresh, len(index), baselined, stale)
    if options.output is not None:
        options.output.write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    print(
        "analyze: wall time %.2fs over %d file(s)" % (elapsed, len(index)),
        file=sys.stderr,
    )
    if options.max_seconds is not None and elapsed > options.max_seconds:
        print(
            "analyze: wall time %.2fs exceeds the %.2fs budget"
            % (elapsed, options.max_seconds),
            file=sys.stderr,
        )
        return 1
    return 1 if fresh else 0
