"""Determinism taint over the call graph.

Content keys are the serving architecture's load-bearing wall: the
StageCache (and the ROADMAP's sharded multi-process store) equate "same
key" with "same artifact", so a content-key computation that consults a
nondeterministic source silently poisons every process that shares the
cache.  This pass machine-checks the invariant:

1. **Roots** — the key computations themselves: functions named
   ``content_key``/``component_digest``/``params_key``/
   ``compute_key``/``_compute_key``, and ``key`` methods on pipeline
   stage classes (``*Stage``).
2. **Closure** — everything reachable from a root through the
   :mod:`~tools.analyzer.callgraph` edges.
3. **Sources** — inside the closure, any *direct* touch of a
   nondeterministic source is a violation, reported with the call chain
   from the root:

   * ``time.*`` calls (wall clocks, monotonic counters);
   * ``random`` module functions (``random.random``, ``shuffle``, …) —
     a seeded ``random.Random(...)`` instance handed in by the caller is
     fine (its method calls resolve to no source pattern), constructing
     one is fine, ``SystemRandom`` is not;
   * ``id(...)`` (CPython address — differs across processes, which is
     exactly the cross-process poisoning case);
   * ``os.environ`` / ``os.getenv`` / ``os.urandom``;
   * ``uuid.uuid1``/``uuid.uuid4``, ``secrets.*``;
   * ``datetime.now``/``utcnow``/``today``;
   * unsorted ``set``/``frozenset`` iteration feeding an
     order-sensitive consumer (the per-file determinism rule's
     detector, reused here so the two rules agree on what "unsorted"
     means).

Dynamic calls (subscript dispatch, ``getattr``) inside the closure
cannot be proven deterministic; they surface as warnings, never errors.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from tools.analyzer.callgraph import CallGraph, CallSite, get_callgraph
from tools.analyzer.project import FunctionSymbol, ProjectContext

__all__ = [
    "SourceHit",
    "KEY_ROOT_NAMES",
    "is_key_root",
    "direct_sources",
    "KeyTaintResult",
    "key_taint",
]

#: Function names that root the key-determinism closure.
KEY_ROOT_NAMES = frozenset(
    {"content_key", "component_digest", "params_key", "compute_key", "_compute_key"}
)

#: ``random`` module attributes that are safe to touch: constructing a
#: seeded generator is how callers *fix* nondeterminism.
_RANDOM_SAFE = frozenset({"Random", "seed"})

_DATETIME_NOW = frozenset({"now", "utcnow", "today"})


class SourceHit:
    """One direct nondeterministic touch inside a function body."""

    __slots__ = ("line", "description")

    def __init__(self, line: int, description: str):
        self.line = line
        self.description = description


def is_key_root(symbol: FunctionSymbol) -> bool:
    """Whether a function roots the content-key closure."""
    if symbol.name in KEY_ROOT_NAMES:
        return True
    return (
        symbol.name == "key"
        and symbol.class_name is not None
        and symbol.class_name.endswith("Stage")
    )


def _external_source(target: str) -> Optional[str]:
    """Nondeterminism description for an external dotted call target."""
    if target == "id":
        return "id() (CPython address, differs across processes)"
    head, _, rest = target.partition(".")
    if head == "time" and rest:
        return "time.%s() (wall/monotonic clock)" % rest
    if head == "random" and rest and rest.split(".", 1)[0] not in _RANDOM_SAFE:
        return "random.%s() (unseeded module-level RNG)" % rest
    if target in ("os.getenv", "os.urandom") or target.startswith("os.environ"):
        return "%s (environment-dependent)" % target
    if head == "uuid" and rest in ("uuid1", "uuid4"):
        return "uuid.%s() (random/host-derived UUID)" % rest
    if head == "secrets" and rest:
        return "secrets.%s() (OS entropy)" % rest
    if "datetime" in target.split(".") and target.rsplit(".", 1)[-1] in _DATETIME_NOW:
        return "%s() (wall clock)" % target
    return None


def _environ_accesses(
    symbol: FunctionSymbol, project: ProjectContext, module_name: str
) -> List[SourceHit]:
    """``os.environ[...]`` reads that are not call expressions."""
    hits: List[SourceHit] = []
    for node in ast.walk(symbol.node):
        if not (isinstance(node, ast.Attribute) and node.attr == "environ"):
            continue
        if isinstance(node.value, ast.Name):
            target = project.import_target(module_name, node.value.id) or node.value.id
            if target == "os":
                hits.append(
                    SourceHit(node.lineno, "os.environ (environment-dependent)")
                )
    return hits


def _set_iteration_sources(symbol: FunctionSymbol) -> List[SourceHit]:
    """Unsorted set iteration inside the function body.

    Reuses the per-file determinism rule's scope tracker so both rules
    agree on order-free consumptions (``sorted``/``len``/``min``/…).
    """
    from tools.analyzer.rules.determinism import DeterminismRule, _ScopeTracker

    rule = DeterminismRule()
    tracker = _ScopeTracker(rule, symbol.module)
    tracker.visit(symbol.node)
    return [
        SourceHit(finding.line, "unsorted set iteration (hash-order dependent)")
        for finding in tracker.findings
    ]


def direct_sources(
    graph: CallGraph, symbol: FunctionSymbol
) -> List[SourceHit]:
    """Every direct nondeterministic touch in one function, deduplicated."""
    project = graph.project
    module_name = project.module_names.get(symbol.module.rel, "")
    hits: List[SourceHit] = []
    for external in graph.externals.get(symbol.qualname, []):
        description = _external_source(external.target)
        if description:
            hits.append(SourceHit(external.line, description))
    # A call like ``os.environ.get(...)`` is already reported by the
    # external-call matcher above; the attribute walk would report the
    # same line again as a bare ``os.environ`` read.
    covered = {h.line for h in hits if h.description.startswith("os.environ")}
    hits.extend(
        h for h in _environ_accesses(symbol, project, module_name)
        if h.line not in covered
    )
    hits.extend(_set_iteration_sources(symbol))
    seen = set()
    unique: List[SourceHit] = []
    for hit in sorted(hits, key=lambda h: (h.line, h.description)):
        key = (hit.line, hit.description)
        if key not in seen:
            seen.add(key)
            unique.append(hit)
    return unique


class KeyTaintResult:
    """The whole-program key-determinism analysis, computed once."""

    __slots__ = ("graph", "parents", "violations", "unprovable")

    def __init__(
        self,
        graph: CallGraph,
        parents: Dict[str, Optional[CallSite]],
        violations: List[Tuple[FunctionSymbol, SourceHit, str]],
        unprovable: List[Tuple[FunctionSymbol, int, str]],
    ):
        self.graph = graph
        self.parents = parents
        #: (offending function, source hit, rendered chain root → func)
        self.violations = violations
        #: (function, line, description) for dynamic calls in the closure
        self.unprovable = unprovable


def _compute_key_taint(project: ProjectContext) -> KeyTaintResult:
    graph = get_callgraph(project)
    roots = [
        symbol.qualname
        for symbol in project.functions.values()
        if is_key_root(symbol)
    ]
    parents, order = graph.reachable_from(roots)
    violations: List[Tuple[FunctionSymbol, SourceHit, str]] = []
    unprovable: List[Tuple[FunctionSymbol, int, str]] = []
    for qualname in order:
        symbol = project.functions.get(qualname)
        if symbol is None:
            continue
        chain = graph.display_chain(parents, qualname)
        for hit in direct_sources(graph, symbol):
            violations.append((symbol, hit, chain))
        for dynamic in graph.dynamics.get(qualname, []):
            unprovable.append((symbol, dynamic.line, dynamic.description))
    return KeyTaintResult(graph, parents, violations, unprovable)


def key_taint(project: ProjectContext) -> KeyTaintResult:
    """Cached key-determinism taint for one analysis run."""
    return project.cached("key_taint", lambda: _compute_key_taint(project))
