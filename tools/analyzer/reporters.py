"""Output formats for analysis runs: human text, machine JSON, SARIF."""

from __future__ import annotations

import json
from typing import Dict, List

from tools.analyzer.core import Finding

__all__ = ["text_report", "json_report", "sarif_report"]


def text_report(
    findings: List[Finding],
    files_analyzed: int,
    baselined: int = 0,
    stale_keys: List[str] | None = None,
) -> str:
    """The ``path:line: [severity] rule: message`` listing plus a summary."""
    lines = [finding.render() for finding in findings]
    for key in stale_keys or []:
        lines.append("stale baseline entry (fix was landed): %s" % key)
    if findings:
        errors = sum(1 for f in findings if f.severity == "error")
        lines.append(
            "analyze: %d finding(s) (%d error(s)) in %d file(s)%s"
            % (
                len(findings),
                errors,
                files_analyzed,
                ", %d baselined" % baselined if baselined else "",
            )
        )
    else:
        suffix = ", %d baselined" % baselined if baselined else ""
        lines.append("analyze: OK (%d files%s)" % (files_analyzed, suffix))
    return "\n".join(lines)


def json_report(
    findings: List[Finding],
    files_analyzed: int,
    baselined: int = 0,
    stale_keys: List[str] | None = None,
) -> str:
    """A stable JSON document for CI consumers and editor integrations."""
    payload: Dict[str, object] = {
        "files_analyzed": files_analyzed,
        "baselined": baselined,
        "stale_baseline_keys": list(stale_keys or []),
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "severity": f.severity,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_report(
    findings: List[Finding],
    files_analyzed: int,
    baselined: int = 0,
    stale_keys: List[str] | None = None,
) -> str:
    """SARIF 2.1.0 for GitHub code scanning and other SARIF consumers.

    The rule catalog is embedded as ``tool.driver.rules`` so viewers can
    show descriptions; finding severities map 1:1 onto SARIF levels
    (both vocabularies use ``error``/``warning``).  Baseline-absorbed
    findings are already subtracted upstream, so every result here is
    actionable.
    """
    from tools.analyzer.core import all_rules

    rules = all_rules()
    rule_index = {rule.id: position for position, rule in enumerate(rules)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": f.severity,
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": max(1, f.line)},
                    }
                }
            ],
        }
        for f in findings
    ]
    payload: Dict[str, object] = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "rules": [
                            {
                                "id": rule.id,
                                "shortDescription": {"text": rule.description},
                                "defaultConfiguration": {"level": rule.severity},
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
