"""Whole-program symbol table: the :class:`ProjectContext`.

The per-file passes of PR 2 see one module at a time; the invariants
added since then (deterministic content keys, cross-method lock
discipline, substrate immutability) are *cross-module* properties.  The
``ProjectContext`` is the shared substrate interprocedural rules build
on: every module parsed by the index pass is resolved into

* a **module map** — repo files addressable by dotted name, with
  suffix-based resolution so analysis of out-of-tree fixture targets
  (the test suite's ``tmp_path`` files) works identically;
* an **import table** per module — local name → target dotted path,
  covering ``import x``, ``import x.y as z``, ``from a import b as c``,
  and relative ``from ..pkg import name`` forms;
* **function and class symbols** — qualified names for every top-level
  function and every method (decorators, ``staticmethod``/
  ``classmethod`` markers, and parameter annotations recorded), plus
  per-class ``self.<attr>`` type inference from ``__init__`` bodies
  (``self.tree = tree`` with an annotated parameter, or
  ``self.arrays = CostArrays(...)``).

The context is built lazily — once per analysis run, on the first
interprocedural rule that asks — and cached on the
:class:`~tools.analyzer.core.ProjectIndex`, so the whole-program pass
adds one AST walk over the repo regardless of how many rules consume
it.  Resolution never raises on unknown names: anything the table
cannot place is reported as unresolved and the consuming analysis
degrades (see :mod:`tools.analyzer.callgraph`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple, Union

from tools.analyzer.core import ModuleInfo, ProjectIndex

__all__ = [
    "FunctionSymbol",
    "ClassSymbol",
    "ProjectContext",
    "module_dotted",
    "annotation_name",
]


def module_dotted(rel: str) -> str:
    """Dotted module name derived from a (possibly absolute) file path.

    ``src/repro/core/foo.py`` → ``src.repro.core.foo`` and package
    ``__init__.py`` files collapse onto their package.  Absolute fixture
    paths keep their directory prefix; suffix resolution (below) makes
    the extra segments harmless.
    """
    parts = [p for p in rel.split("/") if p]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    """The dotted type name an annotation spells, if it spells one.

    ``NavigationTree`` → ``NavigationTree``; ``repro.core.CostArrays`` →
    ``repro.core.CostArrays``; ``Optional[Foo]``/``"Foo"`` unwrap to
    ``Foo``.  Anything structural (unions, callables) returns None.
    """
    if annotation is None:
        return None
    target = annotation
    if isinstance(target, ast.Constant) and isinstance(target.value, str):
        head = target.value.split("[", 1)[0].strip()
        return head or None
    if isinstance(target, ast.Subscript):
        # Optional[X] / List[X]: the head name is what we can resolve.
        head = annotation_name(target.value)
        if head in ("Optional",):
            return annotation_name(
                target.slice if not isinstance(target.slice, ast.Tuple) else None
            )
        return head
    parts: List[str] = []
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
        return ".".join(reversed(parts))
    return None


class FunctionSymbol:
    """One function or method, addressable by qualified name."""

    __slots__ = (
        "qualname",
        "name",
        "module",
        "node",
        "class_name",
        "decorators",
        "is_static",
        "is_classmethod",
        "param_types",
    )

    def __init__(
        self,
        qualname: str,
        module: ModuleInfo,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        class_name: Optional[str] = None,
    ):
        self.qualname = qualname
        self.name = node.name
        self.module = module
        self.node = node
        self.class_name = class_name
        self.decorators = tuple(
            name for name in (annotation_name(d) for d in node.decorator_list) if name
        )
        self.is_static = "staticmethod" in self.decorators
        self.is_classmethod = "classmethod" in self.decorators
        #: parameter name → annotated type name (dotted, unresolved)
        self.param_types: Dict[str, str] = {}
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            name = annotation_name(arg.annotation)
            if name:
                self.param_types[arg.arg] = name

    @property
    def display(self) -> str:
        """Stable human-readable name for findings (no line numbers).

        ``<module-basename>.<Class>.<name>`` — short enough for a call
        chain, unique enough to locate, and free of path/line churn so
        baseline fingerprints stay stable.
        """
        stem = self.module.name[: -len(".py")] if self.module.name.endswith(".py") else self.module.name
        if self.class_name:
            return "%s.%s.%s" % (stem, self.class_name, self.name)
        return "%s.%s" % (stem, self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FunctionSymbol(%s)" % self.qualname


class ClassSymbol:
    """One class: its methods, bases, and inferred attribute types."""

    __slots__ = ("qualname", "name", "module", "node", "methods", "bases", "attr_types")

    def __init__(self, qualname: str, module: ModuleInfo, node: ast.ClassDef):
        self.qualname = qualname
        self.name = node.name
        self.module = module
        self.node = node
        #: method name → FunctionSymbol
        self.methods: Dict[str, FunctionSymbol] = {}
        #: base-class names as written (resolved lazily through imports)
        self.bases: Tuple[str, ...] = tuple(
            name for name in (annotation_name(b) for b in node.bases) if name
        )
        #: ``self.<attr>`` → type name inferred from ``__init__``
        self.attr_types: Dict[str, str] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ClassSymbol(%s)" % self.qualname


def _collect_bindings(module: ModuleInfo, dotted: str) -> Dict[str, str]:
    """Local name → imported dotted target for one module."""
    bindings: Dict[str, str] = {}
    if module.tree is None:
        return bindings
    package_parts = dotted.split(".") if dotted else []
    if module.name != "__init__.py" and package_parts:
        package_parts = package_parts[:-1]
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    bindings[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                drop = node.level - 1
                base_parts = (
                    package_parts[: len(package_parts) - drop]
                    if drop <= len(package_parts)
                    else []
                )
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                bindings[local] = base + "." + alias.name if base else alias.name
    return bindings


class ProjectContext:
    """The whole-program symbol table interprocedural rules consult."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionSymbol] = {}
        self.classes: Dict[str, ClassSymbol] = {}
        #: module dotted name → {local name → imported dotted target}
        self.bindings: Dict[str, Dict[str, str]] = {}
        #: module rel path → its dotted name
        self.module_names: Dict[str, str] = {}
        #: dotted suffix → full dotted names ending in it
        self._suffixes: Dict[str, List[str]] = {}
        #: scratch space for analyses cached per context (taint, graph)
        self._cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, index: ProjectIndex) -> "ProjectContext":
        """One pass over every parsed module in the index."""
        context = cls()
        for module in index:
            if module.tree is None:
                continue
            dotted = module_dotted(module.rel)
            context.modules[dotted] = module
            context.module_names[module.rel] = dotted
            parts = dotted.split(".")
            for start in range(len(parts)):
                context._suffixes.setdefault(
                    ".".join(parts[start:]), []
                ).append(dotted)
            context.bindings[dotted] = _collect_bindings(module, dotted)
            context._collect_symbols(module, dotted)
        for symbol in context.classes.values():
            context._infer_attr_types(symbol)
        return context

    def _collect_symbols(self, module: ModuleInfo, dotted: str) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = dotted + "." + node.name
                self.functions[qualname] = FunctionSymbol(qualname, module, node)
            elif isinstance(node, ast.ClassDef):
                class_qual = dotted + "." + node.name
                symbol = ClassSymbol(class_qual, module, node)
                self.classes[class_qual] = symbol
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qual = class_qual + "." + child.name
                        method = FunctionSymbol(
                            method_qual, module, child, class_name=node.name
                        )
                        symbol.methods[child.name] = method
                        self.functions[method_qual] = method

    def _infer_attr_types(self, symbol: ClassSymbol) -> None:
        """``self.<attr>`` types from annotated-parameter/constructor
        assignments in ``__init__``."""
        init = symbol.methods.get("__init__")
        if init is None:
            return
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = node.value
                if isinstance(value, ast.Name):
                    annotated = init.param_types.get(value.id)
                    if annotated:
                        symbol.attr_types[target.attr] = annotated
                elif isinstance(value, ast.Call):
                    name = annotation_name(value.func)
                    if name:
                        resolved = self.resolve_name(
                            self.module_names.get(symbol.module.rel, ""), name
                        )
                        if isinstance(resolved, ClassSymbol):
                            symbol.attr_types[target.attr] = name

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_module(self, dotted: str) -> Optional[str]:
        """Full dotted name of the project module ``dotted`` names.

        Exact match first; otherwise the *unique* module whose dotted
        name ends with ``dotted`` (fixture files live under temp
        directories, so repo-style targets resolve by suffix).  An
        ambiguous suffix resolves to nothing.
        """
        if dotted in self.modules:
            return dotted
        matches = self._suffixes.get(dotted, [])
        if len(matches) == 1:
            return matches[0]
        return None

    def resolve(
        self, dotted: str
    ) -> Optional[Union[FunctionSymbol, ClassSymbol, ModuleInfo]]:
        """Resolve a dotted path to a project module, class, or function."""
        full = self.resolve_module(dotted)
        if full is not None:
            return self.modules[full]
        if "." not in dotted:
            return None
        head, last = dotted.rsplit(".", 1)
        container = self.resolve(head)
        if isinstance(container, ModuleInfo):
            base = self.module_names[container.rel]
            qualname = base + "." + last
            if qualname in self.functions:
                return self.functions[qualname]
            if qualname in self.classes:
                return self.classes[qualname]
        elif isinstance(container, ClassSymbol):
            return container.methods.get(last)
        return None

    def resolve_name(
        self, module_dotted_name: str, name: str
    ) -> Optional[Union[FunctionSymbol, ClassSymbol, ModuleInfo]]:
        """Resolve a bare name as seen from inside ``module_dotted_name``.

        Module-local definitions shadow imports, mirroring runtime
        scoping closely enough for analysis.
        """
        local = module_dotted_name + "." + name
        if local in self.functions:
            return self.functions[local]
        if local in self.classes:
            return self.classes[local]
        target = self.bindings.get(module_dotted_name, {}).get(name)
        if target:
            return self.resolve(target)
        return None

    def import_target(self, module_dotted_name: str, name: str) -> Optional[str]:
        """The dotted path ``name`` is bound to by an import, if any."""
        return self.bindings.get(module_dotted_name, {}).get(name)

    def class_of(self, name: str, seen_from: str) -> Optional[ClassSymbol]:
        """Resolve a type name (as written) to a project class."""
        resolved = self.resolve_name(seen_from, name)
        if isinstance(resolved, ClassSymbol):
            return resolved
        # Fully qualified annotation ("repro.core.cost_arrays.CostArrays").
        resolved = self.resolve(name)
        if isinstance(resolved, ClassSymbol):
            return resolved
        return None

    def method_on(
        self, cls: ClassSymbol, name: str, _depth: int = 0
    ) -> Optional[FunctionSymbol]:
        """Method lookup through the class and its resolvable bases."""
        if name in cls.methods:
            return cls.methods[name]
        if _depth >= 8:  # defensive: cyclic base annotations
            return None
        seen_from = self.module_names.get(cls.module.rel, "")
        for base in cls.bases:
            base_cls = self.class_of(base, seen_from)
            if base_cls is not None and base_cls is not cls:
                found = self.method_on(base_cls, name, _depth + 1)
                if found is not None:
                    return found
        return None

    def functions_in(self, module: ModuleInfo) -> List[FunctionSymbol]:
        """Every function/method symbol defined in ``module``."""
        return [
            symbol
            for symbol in self.functions.values()
            if symbol.module.rel == module.rel
        ]

    def cached(self, key: str, compute) -> object:
        """Per-context memo for whole-program analyses (taint, graph)."""
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]


def iter_calls(node: ast.AST) -> Iterable[ast.Call]:
    """Every call expression in a function body, nested defs included."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child
