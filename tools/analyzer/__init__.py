"""repro-analyze: rule-based static analysis for the BioNav reproduction.

The bitmask Opt-EdgeCut engine is only correct because of invariants the
code cannot express in types: enumeration order and first-minimum
tie-breaking must stay bit-identical to ``opt_edgecut_reference``, tree
traversals must stay iterative, and the prefix-cost prune is only safe
with non-negative, monotonically rounded cost addends.  This package is
the static gate that keeps future changes from silently breaking them.

Architecture (multi-pass):

1. **Index pass** — every target file is parsed once into a
   :class:`~tools.analyzer.core.ModuleInfo` (source, AST, inline
   suppressions) and collected into a
   :class:`~tools.analyzer.core.ProjectIndex` rules may consult.
2. **Rule pass** — every registered :class:`~tools.analyzer.core.Rule`
   whose scope matches a module runs over it and emits
   :class:`~tools.analyzer.core.Finding` objects.
3. **Filter pass** — findings on lines carrying a
   ``# repro: ignore[rule-id]`` comment are dropped, then the committed
   baseline (``tools/analyzer/baseline.json``) absorbs grandfathered
   findings; anything left fails the run.

Run it with ``python -m tools.analyzer`` (or ``make analyze``); the
legacy ``tools/lint.py`` CLI is a thin shim running the lint-level rule
subset.  See CONTRIBUTING.md ("Static analysis gates") for the rule
catalog and DESIGN.md §8 for the solver invariants each rule guards.
"""

from __future__ import annotations

from tools.analyzer.core import (
    Finding,
    ModuleInfo,
    ProjectIndex,
    Rule,
    all_rules,
    register,
)
from tools.analyzer.runner import DEFAULT_TARGETS, LINT_ONLY_DIRS, analyze, main

__all__ = [
    "Finding",
    "ModuleInfo",
    "ProjectIndex",
    "Rule",
    "all_rules",
    "register",
    "analyze",
    "main",
    "DEFAULT_TARGETS",
    "LINT_ONLY_DIRS",
]
