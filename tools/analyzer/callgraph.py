"""Project-wide call graph over :class:`~tools.analyzer.project.ProjectContext`.

One AST walk per function classifies every call expression into exactly
one of three buckets, so downstream analyses never crash on code they
cannot resolve:

* **edges** — calls resolved to a project function/method: direct names
  (module-local or imported, aliases followed), constructor calls (edge
  to ``__init__``), ``self.``/``cls.`` method calls (base classes
  searched), ``module.func`` attribute chains through import aliases,
  ``Class.method``, and one level of typed indirection —
  ``self.tree.results(...)`` resolves when ``__init__`` bound
  ``self.tree`` from a parameter annotated ``NavigationTree``, and
  ``param.method(...)`` resolves through the parameter's annotation.
* **external calls** — calls that resolve outside the project (stdlib,
  numpy).  The *attempted* dotted target (``time.time``,
  ``numpy.add.at``) is recorded, import aliases normalized away, which
  is exactly what the taint pass matches nondeterminism patterns
  against.
* **dynamic calls** — callees no static table can name: subscript
  dispatch (``handlers[kind]()``) and ``getattr(...)(...)``.  These
  degrade to warnings in consuming rules, never errors and never
  crashes.

Reachability is a plain BFS recording parent call sites, so any
reachable function can print the call chain that reaches it — the
evidence interprocedural findings quote.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from tools.analyzer.project import (
    ClassSymbol,
    FunctionSymbol,
    ProjectContext,
    iter_calls,
)

__all__ = ["CallSite", "ExternalCall", "DynamicCall", "CallGraph", "build_callgraph"]


class CallSite:
    """One resolved call: caller → callee at a source line."""

    __slots__ = ("caller", "callee", "line")

    def __init__(self, caller: str, callee: str, line: int):
        self.caller = caller
        self.callee = callee
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CallSite(%s -> %s @%d)" % (self.caller, self.callee, self.line)


class ExternalCall:
    """A call resolving outside the project (normalized dotted target)."""

    __slots__ = ("target", "line")

    def __init__(self, target: str, line: int):
        self.target = target
        self.line = line


class DynamicCall:
    """A call whose target no static table can name."""

    __slots__ = ("description", "line")

    def __init__(self, description: str, line: int):
        self.description = description
        self.line = line


def _attribute_chain(expr: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` → ``["a", "b", "c"]``; None when the root is not a Name."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class CallGraph:
    """Edges, external calls, and dynamic calls, per caller qualname."""

    def __init__(self, project: ProjectContext):
        self.project = project
        self.edges: Dict[str, List[CallSite]] = {}
        self.externals: Dict[str, List[ExternalCall]] = {}
        self.dynamics: Dict[str, List[DynamicCall]] = {}
        self._reverse: Optional[Dict[str, List[CallSite]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add_edge(self, caller: str, callee: str, line: int) -> None:
        self.edges.setdefault(caller, []).append(CallSite(caller, callee, line))
        self._reverse = None

    def _add_external(self, caller: str, target: str, line: int) -> None:
        self.externals.setdefault(caller, []).append(ExternalCall(target, line))

    def _add_dynamic(self, caller: str, description: str, line: int) -> None:
        self.dynamics.setdefault(caller, []).append(DynamicCall(description, line))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def callers_of(self, qualname: str) -> List[CallSite]:
        """Every recorded call site targeting ``qualname``."""
        if self._reverse is None:
            reverse: Dict[str, List[CallSite]] = {}
            for sites in self.edges.values():
                for site in sites:
                    reverse.setdefault(site.callee, []).append(site)
            self._reverse = reverse
        return self._reverse.get(qualname, [])

    def reachable_from(
        self, roots: Iterable[str]
    ) -> Tuple[Dict[str, Optional[CallSite]], List[str]]:
        """BFS closure over edges.

        Returns ``(parents, order)``: ``parents[q]`` is the call site
        through which ``q`` was first reached (None for roots), and
        ``order`` is the deterministic visit order.  Roots are iterated
        sorted so runs are reproducible regardless of dict order.
        """
        parents: Dict[str, Optional[CallSite]] = {}
        order: List[str] = []
        frontier = sorted(set(roots))
        for root in frontier:
            parents[root] = None
            order.append(root)
        while frontier:
            next_frontier: List[str] = []
            for caller in frontier:
                for site in self.edges.get(caller, []):
                    if site.callee in parents:
                        continue
                    parents[site.callee] = site
                    order.append(site.callee)
                    next_frontier.append(site.callee)
            frontier = sorted(next_frontier)
        return parents, order

    def chain(
        self, parents: Dict[str, Optional[CallSite]], target: str
    ) -> List[str]:
        """Qualnames along the discovery path root → ``target``."""
        names: List[str] = [target]
        current = target
        while True:
            site = parents.get(current)
            if site is None:
                break
            current = site.caller
            names.append(current)
            if len(names) > 64:  # defensive: corrupt parent maps
                break
        names.reverse()
        return names

    def display_chain(
        self, parents: Dict[str, Optional[CallSite]], target: str
    ) -> str:
        """``a.f -> B.key -> c.helper`` rendering of :meth:`chain`.

        Uses display names (module stem + class + function, no line
        numbers) so baseline fingerprints survive unrelated edits.
        """
        names = []
        for qualname in self.chain(parents, target):
            symbol = self.project.functions.get(qualname)
            names.append(symbol.display if symbol else qualname)
        return " -> ".join(names)


def _resolve_call(
    graph: CallGraph,
    project: ProjectContext,
    symbol: FunctionSymbol,
    module_name: str,
    call: ast.Call,
) -> None:
    """Classify one call expression into edge/external/dynamic."""
    func = call.func
    line = getattr(call, "lineno", symbol.node.lineno)

    # getattr(x, "name")(...) and handlers[kind](...) are dynamic.
    if isinstance(func, ast.Subscript):
        graph._add_dynamic(symbol.qualname, "subscript call (table dispatch)", line)
        return
    if (
        isinstance(func, ast.Call)
        and isinstance(func.func, ast.Name)
        and func.func.id == "getattr"
    ):
        graph._add_dynamic(symbol.qualname, "getattr(...) call", line)
        return

    chain = _attribute_chain(func)
    if chain is None:
        # Calls on computed expressions (results of other calls,
        # conditionals, lambdas): out of reach, silently unresolved.
        return

    root, rest = chain[0], chain[1:]

    if not rest:
        # Bare name call: local def, import, or builtin/external.
        resolved = project.resolve_name(module_name, root)
        if isinstance(resolved, FunctionSymbol):
            graph._add_edge(symbol.qualname, resolved.qualname, line)
        elif isinstance(resolved, ClassSymbol):
            init = project.method_on(resolved, "__init__")
            if init is not None:
                graph._add_edge(symbol.qualname, init.qualname, line)
        else:
            target = project.import_target(module_name, root) or root
            graph._add_external(symbol.qualname, target, line)
        return

    # self.method(...) / self.attr.method(...) inside a class.
    if root in ("self", "cls") and symbol.class_name:
        owner = project.classes.get(
            module_name + "." + symbol.class_name
        )
        if owner is None:
            return
        if len(rest) == 1:
            method = project.method_on(owner, rest[0])
            if method is not None:
                graph._add_edge(symbol.qualname, method.qualname, line)
            return
        if len(rest) == 2:
            attr_type = owner.attr_types.get(rest[0])
            if attr_type:
                attr_cls = project.class_of(attr_type, module_name)
                if attr_cls is not None:
                    method = project.method_on(attr_cls, rest[1])
                    if method is not None:
                        graph._add_edge(symbol.qualname, method.qualname, line)
                        return
        return

    # param.method(...) through the parameter's (or local's) annotation.
    annotated = symbol.param_types.get(root)
    if annotated and len(rest) == 1:
        cls = project.class_of(annotated, module_name)
        if cls is not None:
            method = project.method_on(cls, rest[0])
            if method is not None:
                graph._add_edge(symbol.qualname, method.qualname, line)
                return

    # Imported module / class attribute chains.
    resolved_root = project.resolve_name(module_name, root)
    if isinstance(resolved_root, ClassSymbol) and len(rest) == 1:
        method = project.method_on(resolved_root, rest[0])
        if method is not None:
            graph._add_edge(symbol.qualname, method.qualname, line)
        return
    target = project.import_target(module_name, root)
    if target is not None:
        dotted = ".".join([target] + rest)
        resolved = project.resolve(dotted)
        if isinstance(resolved, FunctionSymbol):
            graph._add_edge(symbol.qualname, resolved.qualname, line)
        elif isinstance(resolved, ClassSymbol):
            init = project.method_on(resolved, "__init__")
            if init is not None:
                graph._add_edge(symbol.qualname, init.qualname, line)
        else:
            graph._add_external(symbol.qualname, dotted, line)
        return

    # Unannotated receiver: unresolved, silently.
    return


def build_callgraph(project: ProjectContext) -> CallGraph:
    """The project's call graph (cached per context by callers)."""
    graph = CallGraph(project)
    for symbol in project.functions.values():
        module_name = project.module_names.get(symbol.module.rel)
        if module_name is None:
            continue
        for call in iter_calls(symbol.node):
            _resolve_call(graph, project, symbol, module_name, call)
    return graph


def get_callgraph(project: ProjectContext) -> CallGraph:
    """Build (once) and return the context's call graph."""
    return project.cached("callgraph", lambda: build_callgraph(project))
