"""Committed-baseline support for grandfathered findings.

The baseline maps finding fingerprints (``rule::path::message``, line
numbers excluded so unrelated edits do not invalidate entries) to the
number of occurrences tolerated in that file.  ``make analyze`` fails
only on findings *beyond* the baseline, so the gate can be introduced —
and kept strict — without first fixing every historic defect.  Fixing a
baselined finding and regenerating (``make baseline``) shrinks the file;
it never grows silently.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from tools.analyzer.core import Finding

__all__ = ["DEFAULT_BASELINE", "load_baseline", "write_baseline", "apply_baseline"]

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

_FORMAT_VERSION = 1


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> tolerated count; empty when no baseline exists."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(
            "unsupported baseline version %r in %s" % (data.get("version"), path)
        )
    findings = data.get("findings", {})
    return {str(key): int(count) for key, count in findings.items()}


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Overwrite ``path`` so every current finding is grandfathered."""
    counts = Counter(finding.key for finding in findings)
    payload = {
        "version": _FORMAT_VERSION,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[str]]:
    """Split findings into (new, stale-baseline-keys).

    Per fingerprint, the first ``baseline[key]`` occurrences (lowest line
    numbers first) are absorbed; the excess is new.  Baseline keys with no
    remaining occurrences are reported as stale so the file can shrink.
    """
    by_key: Dict[str, List[Finding]] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        by_key.setdefault(finding.key, []).append(finding)
    fresh: List[Finding] = []
    for key, group in by_key.items():
        tolerated = baseline.get(key, 0)
        fresh.extend(group[tolerated:])
    stale = sorted(key for key in baseline if key not in by_key)
    fresh.sort(key=lambda f: (f.path, f.line, f.rule))
    return fresh, stale
