"""Import hygiene rules, ported from the original ``tools/lint.py``.

These are the defect classes this repo has actually shipped: unused
imports, duplicate module-level imports, and ``import *``.  A
``syntax-error`` pseudo-rule reports files the index pass could not
parse (every other rule skips those).
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register

__all__ = ["SyntaxErrorRule", "UnusedImportRule", "DuplicateImportRule", "StarImportRule"]


@register
class SyntaxErrorRule(Rule):
    """Report files that do not parse (recorded by the index pass)."""

    id = "syntax-error"
    severity = "error"
    lint_level = True
    description = "file does not parse as Python"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is not None:
            return []
        # The index pass stores the SyntaxError message on the module.
        line, message = getattr(module, "syntax_error", (0, "invalid syntax"))
        return [self.finding(module, line, "syntax error: %s" % message)]


class _ImportScan(ast.NodeVisitor):
    """Collects imported bindings and every name the module loads."""

    def __init__(self) -> None:
        # (binding, line, display name) in source order.
        self.imports: List[Tuple[str, int, str]] = []
        self.used: Set[str] = set()
        self.star_imports: List[int] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            binding = alias.asname or alias.name.split(".")[0]
            self.imports.append((binding, node.lineno, alias.name))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":
            return  # future statements are directives, not bindings
        for alias in node.names:
            if alias.name == "*":
                self.star_imports.append(node.lineno)
                continue
            binding = alias.asname or alias.name
            self.imports.append((binding, node.lineno, alias.name))

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)


def _string_uses(tree: ast.Module) -> Set[str]:
    """Identifier-shaped tokens inside string constants.

    With ``from __future__ import annotations`` every annotation is a
    string at runtime; conservatively scanning all string constants keeps
    typing-only imports (TYPE_CHECKING blocks, quoted annotations) from
    being flagged.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            cleaned = node.value
            for char in "[],.\"'()|":
                cleaned = cleaned.replace(char, " ")
            for token in cleaned.split():
                if token.isidentifier():
                    names.add(token)
    return names


def _annotation_uses(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        annotation = getattr(node, "annotation", None)
        if annotation is not None:
            for sub in ast.walk(annotation):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        returns = getattr(node, "returns", None)
        if returns is not None:
            for sub in ast.walk(returns):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _scan(module: ModuleInfo) -> Tuple[_ImportScan, Set[str]]:
    scanner = _ImportScan()
    scanner.visit(module.tree)
    used = (
        scanner.used
        | _annotation_uses(module.tree)
        | _string_uses(module.tree)
        | module.exported_names()
    )
    return scanner, used


@register
class UnusedImportRule(Rule):
    """An import binding never loaded anywhere in the module."""

    id = "unused-import"
    severity = "warning"
    lint_level = True
    description = "imported name is never used"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        if module.name == "__init__.py":
            # Packages import to re-export; presence is the point.
            return []
        scanner, used = _scan(module)
        findings = []
        for binding, line, display in scanner.imports:
            if binding == "_" or binding.startswith("__"):
                continue
            if binding not in used:
                findings.append(
                    self.finding(module, line, "unused import '%s'" % display)
                )
        return findings


@register
class DuplicateImportRule(Rule):
    """The same binding imported twice at module level.

    Function-local re-imports are the standard lazy-import pattern and
    are not flagged.
    """

    id = "duplicate-import"
    severity = "warning"
    lint_level = True
    description = "same name imported twice at module level"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        findings = []
        top_level: Set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                names = [a.asname or a.name.split(".")[0] for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module != "__future__":
                names = [a.asname or a.name for a in node.names if a.name != "*"]
            else:
                continue
            for name in names:
                if name in top_level:
                    findings.append(
                        self.finding(
                            module, node.lineno, "duplicate import '%s'" % name
                        )
                    )
                top_level.add(name)
        return findings


@register
class StarImportRule(Rule):
    """``from x import *`` defeats the unused-import analysis entirely."""

    id = "star-import"
    severity = "warning"
    lint_level = True
    description = "star import hides unused names"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        scanner = _ImportScan()
        scanner.visit(module.tree)
        return [
            self.finding(module, line, "star import hides unused names")
            for line in scanner.star_imports
        ]
