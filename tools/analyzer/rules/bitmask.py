"""Bitmask-bounds rule for the Opt-EdgeCut engine.

``opt_edgecut.py`` keys every memo on integer bitmasks whose width is
bounded by :data:`repro.core.opt_edgecut.MAX_OPT_NODES` — the solver
refuses larger trees precisely so masks stay machine-word sized and the
per-node ``1 << index`` shifts stay in range.  Hard-coding a width
(``x << 16``, ``0xFFFF`` masks, ``len(tree) > 16`` caps) re-introduces
the magic number in a place the constant no longer controls; bumping
``MAX_OPT_NODES`` would then corrupt masks silently.

Flagged, anywhere in a module named ``opt_edgecut.py``:

* a shift whose amount is a literal integer (bit positions must come
  from node indices, which the ``MAX_OPT_NODES`` cap bounds);
* an integer literal wider than ``MAX_OPT_NODES`` bits used in a bitwise
  operation (a hand-written mask);
* a size-cap comparison against a literal (``len(...) > 16``) instead of
  the constant / a parameter defaulting to it.
"""

from __future__ import annotations

import ast
from typing import List

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register

__all__ = ["BitmaskBoundsRule"]

# Mirrors repro.core.opt_edgecut.MAX_OPT_NODES; the analyzer must not
# import solver code (it runs on broken trees too), so the width is
# pinned here and cross-checked by tests/test_analyzer.py.
MAX_OPT_NODES = 16

_BITWISE_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.LShift, ast.RShift)


def _literal_int(node: ast.expr):
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None


@register
class BitmaskBoundsRule(Rule):
    """Hard-coded widths/masks bypassing the MAX_OPT_NODES constant."""

    id = "bitmask-bounds"
    severity = "error"
    lint_level = False
    description = "bit width or mask not routed through MAX_OPT_NODES"

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.name == "opt_edgecut.py"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.LShift, ast.RShift)
            ):
                amount = _literal_int(node.right)
                if amount is not None:
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            "shift by literal %d; bit positions must be node "
                            "indices bounded by MAX_OPT_NODES" % amount,
                        )
                    )
            if isinstance(node, ast.BinOp) and isinstance(node.op, _BITWISE_OPS):
                for side in (node.left, node.right):
                    value = _literal_int(side)
                    if value is not None and abs(value) >= (1 << MAX_OPT_NODES):
                        findings.append(
                            self.finding(
                                module,
                                side.lineno,
                                "hand-written mask literal %#x; derive masks "
                                "from MAX_OPT_NODES" % value,
                            )
                        )
            if isinstance(node, ast.Compare):
                left_is_len = (
                    isinstance(node.left, ast.Call)
                    and isinstance(node.left.func, ast.Name)
                    and node.left.func.id == "len"
                )
                if left_is_len:
                    for op, comparator in zip(node.ops, node.comparators):
                        if not isinstance(op, (ast.Gt, ast.GtE, ast.Lt, ast.LtE)):
                            continue
                        value = _literal_int(comparator)
                        if value is not None and value > 1:
                            findings.append(
                                self.finding(
                                    module,
                                    node.lineno,
                                    "size cap compared against literal %d; route "
                                    "it through MAX_OPT_NODES" % value,
                                )
                            )
        return findings
