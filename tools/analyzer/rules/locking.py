"""Lock-discipline rule: shared state written outside the owning lock.

The serving layer's correctness rests on one convention: a class that
owns a lock (``self._lock`` assigned in ``__init__``) keeps *all* of its
shared mutable state behind it.  A stray ``self.hits += 1`` outside the
lock is exactly the kind of read-modify-write race the
``SingleFlightCache`` exists to eliminate, and it passes every
single-threaded test.  This rule makes the convention machine-checked
for the concurrent modules (``src/repro/serving/``, ``src/repro/web/``
and ``src/repro/cluster/``):

* **Scope** — classes whose ``__init__`` binds ``self._lock``.  Classes
  without a lock (pure renderers, immutable facades) are not checked.
* **Flagged** — in any other method: assignment, augmented assignment,
  or deletion of a ``self`` attribute (``self.x = ...``), or of a
  subscript on one (``self._entries[k] = ...``), when the statement is
  not lexically inside a ``with`` whose context expression is a ``self``
  lock attribute (any attribute whose name contains ``lock``).
* **Exempt** — ``__init__`` (the object is not shared during
  construction) and methods whose names end in ``_locked``, the repo's
  convention for helpers documented as "caller holds the lock" (their
  call sites are inside ``with self._lock:`` blocks, which this rule
  checks).

Mutations through method calls (``self._entries.move_to_end(k)``) are
out of reach of a syntactic rule; the convention-reviewed ``_locked``
helpers plus the concurrency test suite cover those.  Genuinely safe
unlocked writes carry ``# repro: ignore[lock-discipline]``.
"""

from __future__ import annotations

import ast
from typing import List

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register

__all__ = ["LockDisciplineRule"]


def _is_self_lock(expr: ast.expr) -> bool:
    """True for ``self.<attr>`` where ``<attr>`` names a lock."""
    if isinstance(expr, ast.Call):
        # ``with self._lock.acquire_timeout(...)``-style wrappers.
        expr = expr.func
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        return expr.value.id == "self" and "lock" in expr.attr.lower()
    return False


def _self_attribute_of(target: ast.expr) -> str:
    """The mutated ``self`` attribute name, or '' when not one.

    Recognizes ``self.x`` and ``self.x[...]`` targets, through tuple
    and starred unpacking.
    """
    if isinstance(target, ast.Starred):
        return _self_attribute_of(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            name = _self_attribute_of(element)
            if name:
                return name
        return ""
    if isinstance(target, ast.Subscript):
        return _self_attribute_of(target.value)
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        if target.value.id == "self":
            return target.attr
    return ""


class _MethodWalker(ast.NodeVisitor):
    """Walks one method tracking whether the owning lock is held."""

    def __init__(self, rule: "LockDisciplineRule", module: ModuleInfo) -> None:
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []
        self.lock_depth = 0

    def visit_With(self, node: ast.With) -> None:
        holds = any(_is_self_lock(item.context_expr) for item in node.items)
        if holds:
            self.lock_depth += 1
        for child in node.body:
            self.visit(child)
        if holds:
            self.lock_depth -= 1

    def _flag(self, line: int, attr: str) -> None:
        if self.lock_depth == 0:
            self.findings.append(
                self.rule.finding(
                    self.module,
                    line,
                    "attribute 'self.%s' mutated outside `with self._lock:`" % attr,
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = _self_attribute_of(target)
            if attr:
                self._flag(node.lineno, attr)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _self_attribute_of(node.target)
        if attr:
            self._flag(node.lineno, attr)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            attr = _self_attribute_of(node.target)
            if attr:
                self._flag(node.lineno, attr)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = _self_attribute_of(target)
            if attr:
                self._flag(node.lineno, attr)
        self.generic_visit(node)


def _binds_self_lock(init: ast.FunctionDef) -> bool:
    """True when ``__init__`` assigns ``self._lock``."""
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr == "_lock"
                ):
                    return True
    return False


@register
class LockDisciplineRule(Rule):
    """Shared mutable state written outside the owning ``self._lock``."""

    id = "lock-discipline"
    severity = "error"
    lint_level = False
    description = "lock-owning class mutates shared state outside its lock"

    def applies_to(self, module: ModuleInfo) -> bool:
        return (
            "serving" in module.parts
            or "web" in module.parts
            or "cluster" in module.parts
        )

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = [
                child
                for child in node.body
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            inits = [m for m in methods if m.name == "__init__"]
            if not inits or not _binds_self_lock(inits[0]):
                continue
            for method in methods:
                if method.name == "__init__" or method.name.endswith("_locked"):
                    continue
                walker = _MethodWalker(self, module)
                for statement in method.body:
                    walker.visit(statement)
                findings.extend(walker.findings)
        return findings
