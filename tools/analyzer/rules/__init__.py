"""Rule modules; importing this package registers every rule.

Lint-level rules (run everywhere, including ``tests/`` and
``examples/``): ``syntax-error``, ``unused-import``, ``duplicate-import``,
``star-import``, ``mutable-default``, ``shadowed-builtin``,
``bare-except``.

Semantic rules (guard solver invariants in ``src/repro``):
``determinism``, ``no-recursion``, ``float-equality``, ``bitmask-bounds``,
``missing-hints``, ``lock-discipline``, ``solver-via-registry``,
``vectorize``.
"""

from __future__ import annotations

from tools.analyzer.rules import (  # noqa: F401  - imported for registration
    bitmask,
    determinism,
    floats,
    generic,
    imports,
    layering,
    locking,
    recursion,
    vectorize,
)

__all__ = [
    "bitmask",
    "determinism",
    "floats",
    "generic",
    "imports",
    "layering",
    "locking",
    "recursion",
    "vectorize",
]
