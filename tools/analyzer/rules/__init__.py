"""Rule modules; importing this package registers every rule.

Lint-level rules (run everywhere, including ``tests/`` and
``examples/``): ``syntax-error``, ``unused-import``, ``duplicate-import``,
``star-import``, ``mutable-default``, ``shadowed-builtin``,
``bare-except``.

Semantic rules (guard solver invariants in ``src/repro``):
``determinism``, ``no-recursion``, ``float-equality``, ``bitmask-bounds``,
``missing-hints``, ``lock-discipline``, ``solver-via-registry``,
``substrate-boundary``, ``vectorize``.

Interprocedural rule packs (whole-program, built on the
:class:`~tools.analyzer.project.ProjectContext` call graph):
``key-determinism``, ``lock-chain``, ``substrate-immutability``.
"""

from __future__ import annotations

from tools.analyzer.rules import (  # noqa: F401  - imported for registration
    bitmask,
    boundary,
    determinism,
    floats,
    generic,
    immutability,
    imports,
    keytaint,
    layering,
    lockchain,
    locking,
    recursion,
    vectorize,
)

__all__ = [
    "bitmask",
    "boundary",
    "determinism",
    "floats",
    "generic",
    "immutability",
    "imports",
    "keytaint",
    "layering",
    "lockchain",
    "locking",
    "recursion",
    "vectorize",
]
