"""Substrate-immutability rule: frozen artifacts stay frozen.

Bit-identical solves (BioNav §IV/§V) and sound per-stage caching both
assume the :class:`~repro.core.cost_arrays.CostArrays` substrate and the
pipeline's frozen artifacts never change after construction: a cached
``NavTreeArtifact`` is shared by every session of a query, so one
in-place ``arrays.explore_mass += adjustment`` silently corrupts every
other session's solves — and numpy in-place ops bypass the frozen
dataclass machinery entirely.  PR 6 backs this with a runtime guarantee
(``writeable=False`` on every substrate array); this rule catches the
violations statically, including the ones that would only trip at
runtime in a cold-cache path no test exercises:

* assignment, augmented assignment, deletion, or subscript-store on a
  known substrate array field (``x.explore_mass = ...``,
  ``x.result_counts[i] = ...``, ``x.log_lt += ...``);
* in-place numpy mutation of one (``np.add.at(x.explore_mass, ...)``,
  ``np.copyto``, ``np.place``, ``np.putmask``) and mutating array
  methods (``.sort()``, ``.fill()``, ``.setflags()``, …);
* ``object.__setattr__`` anywhere outside the artifact-defining
  modules (the only way to write a frozen dataclass, so any appearance
  elsewhere is a bypass);
* attribute assignment on a receiver annotated as a pipeline artifact
  type (``nav: NavTreeArtifact`` … ``nav.query = ...``).  Subscript
  stores through artifact attributes are *not* flagged:
  ``nav.decisions[k] = v`` is the documented shared decision store.

Exempt: the builders — methods of ``CostArrays`` that construct the
arrays (``__init__``, ``_build_packed``, ``packed_results``) — and
``__init__`` methods assigning fresh arrays on ``self``.  Anything else
carries ``# repro: ignore[substrate-immutability]`` with a comment
explaining why the mutation is safe.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register
from tools.analyzer.project import annotation_name
from tools.analyzer.rules.vectorize import ARRAY_FIELDS

__all__ = ["SubstrateImmutabilityRule"]

#: Every CostArrays field backed by a (frozen) numpy array or scalar.
SUBSTRATE_FIELDS = ARRAY_FIELDS | {
    "normalizer",
    "universe_size",
    "content_key",
    "_count_log_count",
    "_packed",
}

#: Frozen pipeline artifact types (plus the substrate itself).
ARTIFACT_TYPES = frozenset(
    {
        "CostArrays",
        "HierarchySnapshot",
        "ResultSet",
        "NavTreeArtifact",
        "ActiveTreeArtifact",
        "CutPlan",
    }
)

#: ndarray methods that mutate in place.
_MUTATING_METHODS = frozenset(
    {"sort", "fill", "resize", "put", "itemset", "partition", "setflags", "byteswap"}
)

#: numpy module-level in-place writers: np.<name>(target, ...).
_NUMPY_INPLACE = frozenset({"copyto", "place", "putmask", "put"})

#: CostArrays methods allowed to build/mutate the substrate.
_BUILDER_METHODS = frozenset({"__init__", "_build_packed", "packed_results"})


def _substrate_attr(expr: ast.expr) -> Optional[str]:
    """The substrate field an expression addresses (through subscripts)."""
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in SUBSTRATE_FIELDS:
        return node.attr
    return None


def _is_self_rooted(expr: ast.expr) -> bool:
    """True when the store target is an attribute chain on ``self``."""
    node = expr
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


class _Walker(ast.NodeVisitor):
    """Tracks (class, method) context and flags mutation sites."""

    def __init__(self, rule: "SubstrateImmutabilityRule", module: ModuleInfo) -> None:
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []
        self.class_stack: List[str] = []
        self.func_stack: List[str] = []
        #: per-function stack of {name: annotated artifact type}
        self.artifact_vars: List[dict] = []

    # -- context bookkeeping -------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _enter_function(self, node) -> None:
        self.func_stack.append(node.name)
        scope = {}
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            name = annotation_name(arg.annotation)
            if name and name.rsplit(".", 1)[-1] in ARTIFACT_TYPES:
                scope[arg.arg] = name.rsplit(".", 1)[-1]
        self.artifact_vars.append(scope)
        for child in node.body:
            self.visit(child)
        self.artifact_vars.pop()
        self.func_stack.pop()

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function

    def _in_builder(self) -> bool:
        """Inside a CostArrays builder method (or any ``__init__``)."""
        if not self.func_stack:
            return False
        func = self.func_stack[-1]
        if self.class_stack and self.class_stack[-1] == "CostArrays":
            return func in _BUILDER_METHODS
        return func == "__init__"

    def _artifact_type_of(self, name: str) -> Optional[str]:
        for scope in reversed(self.artifact_vars):
            if name in scope:
                return scope[name]
        return None

    # -- flagged sites --------------------------------------------------
    def _flag(self, line: int, message: str) -> None:
        self.findings.append(self.rule.finding(self.module, line, message))

    def _check_store(self, target: ast.expr, line: int, verb: str) -> None:
        field = _substrate_attr(target)
        if field is not None and not (self._in_builder() and _is_self_rooted(target)):
            self._flag(
                line,
                "substrate array field '%s' %s outside its builder; "
                "CostArrays is immutable after construction" % (field, verb),
            )
            return
        # Direct attribute store on an annotated artifact receiver.
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and not self._in_builder()
        ):
            artifact = self._artifact_type_of(target.value.id)
            if artifact is not None:
                self._flag(
                    line,
                    "attribute '%s.%s' assigned on frozen artifact type %s"
                    % (target.value.id, target.attr, artifact),
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node.lineno, "assigned")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node.lineno, "mutated in place")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store(node.target, node.lineno, "assigned")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store(target, node.lineno, "deleted")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # object.__setattr__(x, ...) — the frozen-dataclass bypass.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
            and self.module.name != "artifacts.py"
        ):
            self._flag(
                node.lineno,
                "object.__setattr__ bypasses frozen-dataclass immutability",
            )
        # x.<field>.sort() and friends.
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            field = _substrate_attr(func.value)
            if field is not None and not (
                self._in_builder() and _is_self_rooted(func.value)
            ):
                self._flag(
                    node.lineno,
                    "mutating method '.%s()' called on substrate array "
                    "field '%s'" % (func.attr, field),
                )
        # np.add.at(x.<field>, ...) / np.copyto(x.<field>, ...).
        if isinstance(func, ast.Attribute) and node.args:
            field = _substrate_attr(node.args[0])
            if field is not None and not (
                self._in_builder() and _is_self_rooted(node.args[0])
            ):
                if func.attr == "at" or func.attr in _NUMPY_INPLACE:
                    self._flag(
                        node.lineno,
                        "in-place numpy write '%s' targets substrate array "
                        "field '%s'" % (func.attr, field),
                    )
        self.generic_visit(node)


@register
class SubstrateImmutabilityRule(Rule):
    """Frozen artifact / CostArrays mutation outside construction."""

    id = "substrate-immutability"
    severity = "error"
    lint_level = False
    interprocedural = True
    description = "frozen artifact or CostArrays field mutated after build"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        walker = _Walker(self, module)
        walker.visit(module.tree)
        return walker.findings
