"""Substrate boundary rule: storage internals stay behind the store API.

The corpus substrate refactor made :class:`repro.substrate.store.CorpusStore`
the one corpus interface every online layer consumes; the row-oriented
internals (``repro.storage.tables``, ``repro.storage.index``) are now an
implementation detail of the in-memory backend.  A direct
``from repro.storage.tables import AssociationTable`` in, say, the search
engine would silently pin that layer to the toy backend and break the
mmap path, so the convention is machine-checked:

* **Scope** — every semantic-rule target outside ``repro/storage`` (the
  owner), ``repro/substrate`` (the store layer wrapping it), and
  ``repro/corpus`` (the offline ingest side that feeds both).
* **Flagged** — ``import``/``from``-imports that name the
  ``repro.storage.tables`` or ``repro.storage.index`` *modules*, whether
  absolute, via the package (``from repro.storage import tables``), or
  relative (``from ..storage.index import ...``).
* **Not flagged** — the classes re-exported by ``repro.storage``
  (``InvertedIndex``, ``tokenize``, ...): those are the sanctioned public
  surface, and ``repro.storage.database`` / other storage modules remain
  importable everywhere.

Tests and examples are lint-only targets, so white-box unit tests of the
tables and index keep their direct imports.  Benchmarks are exempted
explicitly: storage micro-benches measure the internals by name.
"""

from __future__ import annotations

import ast
from typing import List

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register
from tools.analyzer.rules.layering import _absolutize

__all__ = ["SubstrateBoundaryRule", "RESTRICTED_STORAGE_MODULES"]

#: Storage-internal modules reachable only through the substrate boundary.
RESTRICTED_STORAGE_MODULES = frozenset(
    {"repro.storage.tables", "repro.storage.index"}
)


def _is_restricted(dotted: str) -> bool:
    """True when ``dotted`` is a restricted module or something inside one."""
    return dotted in RESTRICTED_STORAGE_MODULES or any(
        dotted.startswith(mod + ".") for mod in RESTRICTED_STORAGE_MODULES
    )


@register
class SubstrateBoundaryRule(Rule):
    """Storage-internal import outside storage/substrate/corpus."""

    id = "substrate-boundary"
    severity = "error"
    lint_level = False
    description = "storage table/index internals are reached via the store API"

    def applies_to(self, module: ModuleInfo) -> bool:
        for owner in ("storage", "substrate", "corpus"):
            if owner in module.parts:
                return False
        # Storage micro-benches measure the internals directly.
        return "benchmarks" not in module.parts

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _is_restricted(alias.name):
                        findings.append(self._flag(module, node.lineno, alias.name))
            elif isinstance(node, ast.ImportFrom):
                base = _absolutize(module, node.module or "", node.level)
                if _is_restricted(base):
                    findings.append(self._flag(module, node.lineno, base))
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    dotted = base + "." + alias.name if base else alias.name
                    if _is_restricted(dotted):
                        findings.append(self._flag(module, node.lineno, dotted))
        return findings

    def _flag(self, module: ModuleInfo, line: int, dotted: str) -> Finding:
        return self.finding(
            module,
            line,
            "storage internal '%s' imported across the substrate boundary; "
            "go through repro.storage re-exports or a CorpusStore" % dotted,
        )
