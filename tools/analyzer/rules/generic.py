"""Generic hygiene rules: mutable defaults, shadowed builtins, bare
``except``, and missing type hints on the public ``repro`` API."""

from __future__ import annotations

import ast
import builtins
from typing import List, Set

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register

__all__ = [
    "MutableDefaultRule",
    "ShadowedBuiltinRule",
    "BareExceptRule",
    "MissingHintsRule",
]

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _function_defs(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, _FunctionNode):
            yield node


@register
class MutableDefaultRule(Rule):
    """A mutable literal (or ``list``/``dict``/``set`` call) as a default.

    Default values are evaluated once at definition time and shared
    across every call — mutating one silently leaks state between calls.
    """

    id = "mutable-default"
    severity = "error"
    lint_level = True
    description = "mutable default argument shared across calls"

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"list", "dict", "set", "bytearray"}
        return False

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        findings = []
        for func in _function_defs(module.tree):
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    findings.append(
                        self.finding(
                            module,
                            default.lineno,
                            "mutable default argument in '%s'" % func.name,
                        )
                    )
        return findings


@register
class ShadowedBuiltinRule(Rule):
    """A parameter, assignment, or definition reusing a builtin name.

    Shadowing ``list``/``id``/``type`` makes later code in the scope
    subtly wrong and defeats readers' expectations.  Class attributes
    are exempt: ``Foo.id`` lives in the class namespace and does not
    shadow the builtin for any lookup outside the class body.
    """

    id = "shadowed-builtin"
    severity = "warning"
    lint_level = True
    description = "name shadows a Python builtin"

    # Only the builtins that realistically get shadowed by accident;
    # flagging every builtin (e.g. ``license``) would be noise.
    _WATCHED: Set[str] = {
        "list", "dict", "set", "tuple", "str", "int", "float", "bool",
        "bytes", "id", "type", "input", "filter", "map", "sum", "min",
        "max", "len", "hash", "next", "iter", "range", "all", "any",
        "object", "format", "vars", "sorted", "print", "open",
    }

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        findings: List[Finding] = []
        watched = self._WATCHED & set(dir(builtins))
        # Target Name nodes of direct class-body assignments (by identity):
        # those are class attributes, not scope shadows.
        class_attrs = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            class_attrs.add(id(target))
                elif isinstance(statement, ast.AnnAssign):
                    if isinstance(statement.target, ast.Name):
                        class_attrs.add(id(statement.target))
        for node in ast.walk(module.tree):
            if isinstance(node, _FunctionNode + (ast.ClassDef,)):
                if node.name in watched:
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            "definition '%s' shadows a builtin" % node.name,
                        )
                    )
                if isinstance(node, _FunctionNode):
                    args = node.args
                    every = (
                        args.posonlyargs + args.args + args.kwonlyargs
                        + ([args.vararg] if args.vararg else [])
                        + ([args.kwarg] if args.kwarg else [])
                    )
                    for arg in every:
                        if arg.arg in watched:
                            findings.append(
                                self.finding(
                                    module,
                                    arg.lineno,
                                    "parameter '%s' shadows a builtin" % arg.arg,
                                )
                            )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id in watched and id(node) not in class_attrs:
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            "assignment to '%s' shadows a builtin" % node.id,
                        )
                    )
        return findings


@register
class BareExceptRule(Rule):
    """``except:`` catches ``KeyboardInterrupt``/``SystemExit`` too.

    Catch ``Exception`` (or something narrower) so operator interrupts
    and deliberate exits still propagate.
    """

    id = "bare-except"
    severity = "error"
    lint_level = True
    description = "bare except swallows interrupts and exits"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        return [
            self.finding(module, node.lineno, "bare 'except:' clause")
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ExceptHandler) and node.type is None
        ]


@register
class MissingHintsRule(Rule):
    """Public ``repro`` API without complete type annotations.

    Applies to top-level functions listed in a module's ``__all__`` and
    the public methods of ``__all__``-exported classes: every parameter
    (self/cls aside) must be annotated, and — except ``__init__`` —
    so must the return type.  Typed signatures are what lets the other
    semantic rules (and readers) reason about set-typed values.
    """

    id = "missing-hints"
    severity = "warning"
    lint_level = False
    description = "public API function missing type hints"

    def applies_to(self, module: ModuleInfo) -> bool:
        return "repro" in module.parts

    def _check_signature(
        self, module: ModuleInfo, func, owner: str, skip_first: bool
    ) -> List[Finding]:
        findings = []
        args = func.args
        positional = args.posonlyargs + args.args
        if skip_first and positional:
            positional = positional[1:]
        for arg in positional + args.kwonlyargs:
            if arg.annotation is None:
                findings.append(
                    self.finding(
                        module,
                        func.lineno,
                        "parameter '%s' of %s lacks a type hint" % (arg.arg, owner),
                    )
                )
        if func.returns is None and func.name != "__init__":
            findings.append(
                self.finding(
                    module, func.lineno, "%s lacks a return type hint" % owner
                )
            )
        return findings

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        exported = module.exported_names()
        if not exported:
            return []
        findings: List[Finding] = []
        for node in module.tree.body:
            if isinstance(node, _FunctionNode) and node.name in exported:
                findings.extend(
                    self._check_signature(module, node, node.name, skip_first=False)
                )
            elif isinstance(node, ast.ClassDef) and node.name in exported:
                for member in node.body:
                    if not isinstance(member, _FunctionNode):
                        continue
                    if member.name.startswith("_") and member.name != "__init__":
                        continue
                    decorators = {
                        d.id for d in member.decorator_list if isinstance(d, ast.Name)
                    }
                    skip_first = "staticmethod" not in decorators
                    owner = "%s.%s" % (node.name, member.name)
                    if "property" in decorators and member.returns is None:
                        findings.append(
                            self.finding(
                                module,
                                member.lineno,
                                "%s lacks a return type hint" % owner,
                            )
                        )
                        continue
                    findings.extend(
                        self._check_signature(module, member, owner, skip_first)
                    )
        return findings
