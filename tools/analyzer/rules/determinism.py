"""Determinism rule: unordered set iteration on solver-facing paths.

The Opt-EdgeCut engines must be bit-identical to each other and
run-to-run reproducible; the cost model's optimality argument (and the
tree-search literature it builds on) assumes a fixed enumeration order.
Iterating a ``set``/``frozenset`` breaks that: CPython's set order is a
hashing accident, so any float summation, list construction, or memo
insertion driven by it can differ between equal inputs.  The fix is
``sorted(...)`` at the iteration site.

Scope: modules under ``core``/``complexity`` directories (the solver and
the complexity reductions).  Order-*insensitive* consumptions — feeding a
``set``/``frozenset``/``sorted``/``len``/``min``/``max``/``any``/``all``
— are not flagged; set- and dict-comprehensions are likewise exempt
because their results are themselves unordered or used as mappings.
Genuinely order-free loops (pure set unions, bitmask ORs) carry a
``# repro: ignore[determinism]`` suppression at the site.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register

__all__ = ["DeterminismRule"]

_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_ANNOTATIONS = {
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "AbstractSet",
    "MutableSet",
}
# Consuming a set through these builtins is order-insensitive.
_ORDER_FREE_CALLS = {"set", "frozenset", "sorted", "len", "min", "max", "any", "all"}
# These materialize or fold the iteration order into the result.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "sum", "enumerate"}


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    """True when an annotation names a set type (possibly subscripted)."""
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in _SET_ANNOTATIONS
    if isinstance(target, ast.Attribute):
        return target.attr in _SET_ANNOTATIONS
    if isinstance(target, ast.Constant) and isinstance(target.value, str):
        # Quoted annotation: "FrozenSet[int]" etc.
        head = target.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] in _SET_ANNOTATIONS
    return False


class _ScopeTracker(ast.NodeVisitor):
    """Walks the module tracking which local names are set-typed."""

    def __init__(self, rule: "DeterminismRule", module: ModuleInfo) -> None:
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []
        # Stack of per-scope sets of set-typed names; module scope first.
        self.scopes: List[Set[str]] = [set()]

    # -- scope bookkeeping ---------------------------------------------
    def _is_set_name(self, name: str) -> bool:
        return any(name in scope for scope in reversed(self.scopes))

    def _bind(self, name: str) -> None:
        self.scopes[-1].add(name)

    def _unbind(self, name: str) -> None:
        self.scopes[-1].discard(name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node) -> None:
        self.scopes.append(set())
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if _annotation_is_set(arg.annotation):
                self._bind(arg.arg)
        for child in node.body:
            self.visit(child)
        self.scopes.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        setlike = self._is_setlike(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if setlike:
                    self._bind(target.id)
                else:
                    self._unbind(target.id)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation) or (
                node.value is not None and self._is_setlike(node.value)
            ):
                self._bind(node.target.id)
            else:
                self._unbind(node.target.id)
        if node.value is not None:
            self.visit(node.value)

    # -- set-likeness --------------------------------------------------
    def _is_setlike(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in _SET_CONSTRUCTORS:
                return True
        if isinstance(node, ast.Name):
            return self._is_set_name(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_setlike(node.left) or self._is_setlike(node.right)
        return False

    # -- flagged contexts ----------------------------------------------
    def _flag(self, node: ast.expr, context: str) -> None:
        self.findings.append(
            self.rule.finding(
                self.module,
                node.lineno,
                "unordered set iteration feeds %s; wrap it in sorted(...)" % context,
            )
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_setlike(node.iter):
            self._flag(node.iter, "a for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node, context: str) -> None:
        for generator in node.generators:
            if self._is_setlike(generator.iter):
                self._flag(generator.iter, context)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "a list comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, "a generator expression")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # The result is itself unordered; only recurse for nested cases.
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        # Dict results are consumed as mappings here; key order unused.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        if func_name in _ORDER_FREE_CALLS:
            # sorted(s)/len(s)/... — skip the argument expressions
            # themselves, but still visit nested lambdas/keys.
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    # sorted(f(x) for x in s): result order is imposed by
                    # the wrapper, so the inner set iteration is fine.
                    continue
                self.visit(arg)
            for keyword in node.keywords:
                self.visit(keyword.value)
            return
        if func_name in _ORDER_SENSITIVE_CALLS:
            for arg in node.args:
                if self._is_setlike(arg):
                    self._flag(arg, "%s(...)" % func_name)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and self._is_setlike(node.args[0])
        ):
            self._flag(node.args[0], "str.join")
        self.generic_visit(node)


@register
class DeterminismRule(Rule):
    """Unordered set iteration on enumeration/memo/output paths."""

    id = "determinism"
    severity = "error"
    lint_level = False
    description = "set iteration order leaks into solver output"

    def applies_to(self, module: ModuleInfo) -> bool:
        return "core" in module.parts or "complexity" in module.parts

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        tracker = _ScopeTracker(self, module)
        tracker.visit(module.tree)
        return tracker.findings
