"""Cross-function lock discipline: ``_locked`` helpers need the lock.

The PR 3 ``lock-discipline`` rule is intra-method and syntactic: it
exempts ``_locked``-suffix helpers on the *documented* premise that
their callers hold the owning lock.  Nothing checked that premise —
a new method calling ``self._put_locked(...)`` bare compiles, passes
every single-threaded test, and corrupts the cache under load.  This
rule closes the loop across method (and module) boundaries: every call
site of a ``*_locked`` attribute must satisfy one of

* it is lexically inside a ``with`` whose context expression acquires a
  lock on the *same receiver* — a lock attribute (``with self._lock:``
  around ``self._put_locked(...)``, ``with cache._lock:`` around
  ``cache._put_locked(...)``) or an acquiring call
  (``with self._lock.acquire():``, ``with self.sessions.checkout(sid):``);
* the calling function itself ends in ``_locked`` (the lock obligation
  propagates to *its* callers, which this rule checks in turn) and the
  receiver is ``self``/``cls``;
* the caller is ``__init__`` with receiver ``self`` (the object is not
  shared during construction).

Scope: the lock-owning layers — ``serving``, ``web``, and ``pipeline``
modules.  Genuinely safe bare calls (single-threaded setup paths) carry
``# repro: ignore[lock-chain]`` at the call line.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register

__all__ = ["LockChainRule"]


def _receiver_root(expr: ast.expr) -> Optional[str]:
    """Root name of an attribute chain (``cache._x_locked`` → ``cache``)."""
    node = expr
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


#: with-item call attributes that acquire a lock on their receiver.
_ACQUIRE_METHODS = frozenset({"acquire", "checkout"})


def _lock_roots(item: ast.withitem) -> Optional[str]:
    """The receiver a ``with`` item locks, if it locks one.

    ``with self._lock:`` → ``self``; ``with cache._lock.acquire(...):``
    and ``with self.sessions.checkout(sid):`` → the chain root
    (``cache`` / ``self``); ``with lock:`` (a bare name containing
    "lock") → ``lock`` itself, which can only ever satisfy calls rooted
    at that same name.
    """
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
        if isinstance(expr, ast.Attribute) and expr.attr in _ACQUIRE_METHODS:
            return _receiver_root(expr)
    if isinstance(expr, ast.Attribute) and "lock" in expr.attr.lower():
        return _receiver_root(expr)
    if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
        return expr.id
    return None


class _CallWalker(ast.NodeVisitor):
    """Walks one function tracking which receivers hold a lock."""

    def __init__(
        self, rule: "LockChainRule", module: ModuleInfo, func_name: str
    ) -> None:
        self.rule = rule
        self.module = module
        self.func_name = func_name
        self.findings: List[Finding] = []
        self.held: List[str] = []  # stack of locked receiver roots

    def visit_With(self, node: ast.With) -> None:
        roots = [r for r in (_lock_roots(item) for item in node.items) if r]
        self.held.extend(roots)
        for child in node.body:
            self.visit(child)
        if roots:
            del self.held[-len(roots):]

    visit_AsyncWith = visit_With

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs get their own walk (with their own name/context);
        # descending here would double-report their call sites.
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr.endswith("_locked"):
            receiver = _receiver_root(func)
            if receiver is not None and not self._allowed(receiver):
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node.lineno,
                        "'%s.%s' called without '%s''s lock held; wrap the "
                        "call in `with %s._lock:` or call it from a "
                        "*_locked helper" % (receiver, func.attr, receiver, receiver),
                    )
                )
        self.generic_visit(node)

    def _allowed(self, receiver: str) -> bool:
        if receiver in self.held:
            return True
        if receiver in ("self", "cls"):
            if self.func_name.endswith("_locked") or self.func_name == "__init__":
                return True
        return False


@register
class LockChainRule(Rule):
    """``*_locked`` helper called without the owning lock held."""

    id = "lock-chain"
    severity = "error"
    lint_level = False
    interprocedural = True
    description = "caller of a *_locked helper does not hold the owning lock"

    def applies_to(self, module: ModuleInfo) -> bool:
        return (
            "serving" in module.parts
            or "web" in module.parts
            or "pipeline" in module.parts
            or "cluster" in module.parts
        )

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            walker = _CallWalker(self, module, node.name)
            for statement in node.body:
                walker.visit(statement)
            findings.extend(walker.findings)
        return findings
