"""Key-determinism rule: nondeterminism reachable from content keys.

The pipeline's caching story (PR 4) and the ROADMAP's sharded
multi-process serving both rest on one premise: a content key is a pure
function of its inputs.  Any ``time.time()`` or unseeded ``random``
call — even three stack frames below ``content_key`` — makes equal
inputs hash differently across processes, which turns the shared
StageCache into a cross-process cache-poisoning bug that no
single-process test can catch.

This rule runs the :mod:`~tools.analyzer.taint` analysis over the
whole-program call graph and reports, per module, every function that
is (a) reachable from a key root (``content_key``,
``component_digest``, ``params_key``, ``compute_key``/``_compute_key``,
or a ``*Stage.key`` method) and (b) directly touches a
nondeterministic source.  The finding lands on the source line (so a
``# repro: ignore[key-determinism]`` at the sink suppresses it) and the
message prints the call chain from the root, line-number-free so
baseline fingerprints survive unrelated edits.

Dynamic calls inside the closure (``handlers[kind]()``,
``getattr(...)()``) cannot be proven deterministic; they degrade to
warnings rather than errors, and never crash the analysis.
"""

from __future__ import annotations

from typing import List

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register
from tools.analyzer.taint import key_taint

__all__ = ["KeyDeterminismRule"]


@register
class KeyDeterminismRule(Rule):
    """Nondeterministic source reachable from a content-key computation."""

    id = "key-determinism"
    severity = "error"
    lint_level = False
    interprocedural = True
    description = "content-key computation reaches a nondeterministic source"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        result = key_taint(index.project())
        findings: List[Finding] = []
        for symbol, hit, chain in result.violations:
            if symbol.module.rel != module.rel:
                continue
            findings.append(
                self.finding(
                    module,
                    hit.line,
                    "%s reachable from content-key computation via %s"
                    % (hit.description, chain),
                )
            )
        for symbol, line, description in result.unprovable:
            if symbol.module.rel != module.rel:
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    path=module.rel,
                    line=line,
                    message=(
                        "%s in '%s' cannot be proven deterministic "
                        "(reachable from a content-key computation)"
                        % (description, symbol.display)
                    ),
                    severity="warning",
                )
            )
        return findings
