"""Vectorize rule: per-element Python loops over cost-model array fields.

The :mod:`repro.core.cost_arrays` substrate exists so that hot-path
aggregation over per-concept quantities runs as numpy kernels, not
Python loops.  A ``for`` loop (or comprehension) marching element by
element over one of the substrate's array fields silently reintroduces
the scalar bottleneck the arrays were built to remove — usually without
failing any test, since the values stay correct.

Scope: modules under ``core`` directories (the solver layer) plus the
cold-query path — ``substrate/store.py`` and ``core/navigation_tree.py``
— whose mmap columns and embedded-tree buffers are equally hot.  The
rule flags iteration whose source is an attribute access on one of the
known array-field names — directly, through ``.tolist()``, or wrapped
in ``enumerate``/``zip``/``reversed``/``iter``.  Deliberate sequential
loops (the scalar oracle's bit-parity summation order) carry a
``# repro: ignore[vectorize]`` suppression at the site.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register

__all__ = ["VectorizeRule"]

#: Attribute names of the CostArrays substrate whose element-wise
#: traversal is the anti-pattern this rule exists to catch.
ARRAY_FIELDS = {
    "result_counts",
    "explore_mass",
    "log_lt",
    "preorder_ids",
    "packed_results",
    "subtree_begin",
    "subtree_size",
}

#: Cold-path array columns: the mmap store's citation/concept/bitmap
#: tables and the navigation tree's embedded-preorder buffers.  A Python
#: loop over any of these puts per-element work back on the cold query
#: path the arrays exist to keep in numpy.
COLD_PATH_FIELDS = {
    # MmapStore mmap columns
    "_pmids",
    "_years",
    "_cit_offsets",
    "_cit_concepts",
    "_concept_offsets",
    "_concept_citations",
    "_concept_counts",
    "_concept_lt",
    "_bitmap_offsets",
    "_bitmap_blob",
    # NavigationTree embedded-tree arrays
    "_order",
    "_eparent",
    "_edepth",
    "_esize",
    "_child_off",
    "_child_val",
    "_res_off",
    "_res_val",
}

#: Extra files (beyond ``core`` solver modules) the rule applies to.
_COLD_PATH_SUFFIXES = (("substrate", "store.py"), ("core", "navigation_tree.py"))

# Iteration wrappers that preserve element-by-element consumption.
_PASSTHROUGH_CALLS = {"enumerate", "zip", "reversed", "iter"}

_ALL_FIELDS = ARRAY_FIELDS | COLD_PATH_FIELDS


def _array_field_of(node: ast.expr) -> Optional[str]:
    """The array-field name an iteration source resolves to, if any.

    Recognizes ``x.result_counts``, ``x.result_counts.tolist()``, and
    passthrough wrappers like ``enumerate(x.explore_mass)``.
    """
    if isinstance(node, ast.Attribute) and node.attr in _ALL_FIELDS:
        return node.attr
    if isinstance(node, ast.Call):
        func = node.func
        # x.<field>.tolist() — still a per-element Python traversal.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "tolist"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in _ALL_FIELDS
        ):
            return func.value.attr
        if isinstance(func, ast.Name) and func.id in _PASSTHROUGH_CALLS:
            for arg in node.args:
                found = _array_field_of(arg)
                if found is not None:
                    return found
    return None


class _LoopVisitor(ast.NodeVisitor):
    def __init__(self, rule: "VectorizeRule", module: ModuleInfo) -> None:
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []

    def _flag(self, node: ast.expr, field: str, context: str) -> None:
        self.findings.append(
            self.rule.finding(
                self.module,
                node.lineno,
                "per-element Python %s over array field '%s'; use a "
                "vectorized CostArrays kernel (or mark a deliberate "
                "sequential order with # repro: ignore[vectorize])"
                % (context, field),
            )
        )

    def visit_For(self, node: ast.For) -> None:
        field = _array_field_of(node.iter)
        if field is not None:
            self._flag(node.iter, field, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node, context: str) -> None:
        for generator in node.generators:
            field = _array_field_of(generator.iter)
            if field is not None:
                self._flag(generator.iter, field, context)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "list comprehension")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node, "set comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, "generator expression")


@register
class VectorizeRule(Rule):
    """Per-element Python loops over cost-model array fields."""

    id = "vectorize"
    severity = "warning"
    lint_level = False
    description = "Python loop over a CostArrays field defeats vectorization"

    def applies_to(self, module: ModuleInfo) -> bool:
        if "core" in module.parts:
            return True
        parts = module.parts
        return any(
            len(parts) >= len(suffix) and tuple(parts[-len(suffix):]) == suffix
            for suffix in _COLD_PATH_SUFFIXES
        )

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        visitor = _LoopVisitor(self, module)
        visitor.visit(module.tree)
        return visitor.findings
