"""No-recursion rule for the tree-traversal modules.

``NavigationTree`` deliberately has no recursion-limit guard: real MeSH
navigation trees nest thousands of levels deep, so every traversal in
the tree modules was rewritten iteratively (explicit stacks over the
precomputed preorder).  A future "cleaner" recursive helper would pass
unit tests on shallow fixtures and then blow the interpreter stack in
production — exactly the kind of regression a type checker cannot see.

Scope: ``navigation_tree.py``, ``active_tree.py`` and ``partition.py``.
Flagged: any function (including nested helpers) that calls itself,
directly (``f(...)`` inside ``def f``) or through ``self``/``cls``.
"""

from __future__ import annotations

import ast
from typing import List

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register

__all__ = ["NoRecursionRule"]

_TRAVERSAL_MODULES = {"navigation_tree.py", "active_tree.py", "partition.py"}


def _self_calls(func: ast.AST, name: str) -> List[int]:
    """Line numbers of calls to ``name`` anywhere inside ``func``'s body."""
    lines: List[int] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Name) and target.id == name:
            lines.append(node.lineno)
        elif (
            isinstance(target, ast.Attribute)
            and target.attr == name
            and isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
        ):
            lines.append(node.lineno)
    return lines


@register
class NoRecursionRule(Rule):
    """Self-recursive traversal in a module that must stay iterative."""

    id = "no-recursion"
    severity = "error"
    lint_level = False
    description = "recursive traversal in an iterative-only tree module"

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.name in _TRAVERSAL_MODULES

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for line in _self_calls(node, node.name):
                findings.append(
                    self.finding(
                        module,
                        line,
                        "'%s' calls itself; tree traversals here must be "
                        "iterative (deep trees overflow the stack)" % node.name,
                    )
                )
        return findings
