"""Layering rule: solvers are constructed through the registry only.

The staged pipeline collapsed six solver entry points behind
``repro.pipeline.registry.SolverRegistry``; every call site (facade,
CLI, serving runtime, workload harness) asks the registry by name and
receives an :class:`~repro.core.strategy.ExpansionStrategy`.  A direct
``from repro.core.heuristic import HeuristicReducedOpt`` outside the
core package re-creates the scattered wiring the refactor deleted and
bypasses the pipeline's cut cache and capability metadata, so this rule
makes the convention machine-checked:

* **Scope** — every semantic-rule target outside ``repro.core`` (solver
  modules may import each other) and outside the registry module itself,
  the single sanctioned importer.
* **Flagged** — ``import``/``from``-imports of a solver implementation
  module (``heuristic``, ``static_nav``, ``gopubmed``, ``paged_static``,
  ``opt_edgecut``, ``opt_edgecut_reference``, ``exact``), whether
  absolute (``repro.core.heuristic``), via the package
  (``from repro.core import heuristic``), or relative
  (``from .core.heuristic import ...``).
* **Not flagged** — importing solver *classes* re-exported by
  ``repro.core``/``repro`` (the public API surface), and non-solver core
  modules (``navigation_tree``, ``probabilities``, ...).

Tests and examples are lint-only targets, so they may still reach into
solver modules for white-box assertions.  Benchmarks receive the full
semantic set but are exempted *here* explicitly: the A/B benches
(``bench_opt_engine``, ``bench_opt_vs_heuristic``) deliberately compare
solver implementations side by side, which requires naming them.
"""

from __future__ import annotations

import ast
from typing import List

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register

__all__ = ["SolverViaRegistryRule", "SOLVER_MODULES"]

#: Dotted paths of the solver implementation modules the registry owns.
SOLVER_MODULES = frozenset(
    "repro.core." + name
    for name in (
        "heuristic",
        "static_nav",
        "gopubmed",
        "paged_static",
        "opt_edgecut",
        "opt_edgecut_reference",
        "exact",
    )
)


def _is_solver_module(dotted: str) -> bool:
    """True when ``dotted`` is a solver module or something inside one."""
    return dotted in SOLVER_MODULES or any(
        dotted.startswith(mod + ".") for mod in SOLVER_MODULES
    )


def _absolutize(module: ModuleInfo, dotted: str, level: int) -> str:
    """Resolve a (possibly relative) import target to a dotted path.

    Only ``src/repro`` files can reach the solvers relatively; for them
    the package path is derived from the repo-relative file path.
    """
    if level == 0:
        return dotted
    parts = list(module.parts)
    try:
        anchor = parts.index("repro")
    except ValueError:
        return dotted
    package = parts[anchor:-1]
    if module.name != "__init__.py":
        package.append(module.name[:-3])
    base = package[: len(package) - level] if level <= len(package) else []
    return ".".join(base + ([dotted] if dotted else []))


@register
class SolverViaRegistryRule(Rule):
    """Direct solver-module import outside ``repro.core`` and the registry."""

    id = "solver-via-registry"
    severity = "error"
    lint_level = False
    description = "solver modules are imported only by core and the registry"

    def applies_to(self, module: ModuleInfo) -> bool:
        if "core" in module.parts:
            return False
        # White-box A/B benchmarks compare solver implementations
        # directly; the registry indirection would defeat their purpose.
        if "benchmarks" in module.parts:
            return False
        return not module.rel.endswith("pipeline/registry.py")

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _is_solver_module(alias.name):
                        findings.append(self._flag(module, node.lineno, alias.name))
            elif isinstance(node, ast.ImportFrom):
                base = _absolutize(module, node.module or "", node.level)
                if _is_solver_module(base):
                    findings.append(self._flag(module, node.lineno, base))
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    dotted = base + "." + alias.name if base else alias.name
                    if _is_solver_module(dotted):
                        findings.append(self._flag(module, node.lineno, dotted))
        return findings

    def _flag(self, module: ModuleInfo, line: int, dotted: str) -> Finding:
        return self.finding(
            module,
            line,
            "solver module '%s' imported directly; build solvers via "
            "repro.pipeline.registry" % dotted,
        )
