"""Float-discipline rule: no ``==``/``!=`` on float-valued expressions.

The solver's prune (`OptEdgeCut._search_cuts`) is exact only because
cost comparisons use strict ``<`` with first-minimum tie-breaking, and
costs are accumulated in one canonical order.  Equality tests on floats
undermine that: two mathematically equal costs computed along different
association orders can differ in the last ulp, so ``==`` silently picks
sides.  Comparisons belong in the sanctioned helpers
(:func:`repro.core.cost_model.costs_equal` /
:func:`repro.core.cost_model.cost_improves`) or must be rewritten as
inequalities (``x <= 0.0`` for non-negative masses).

Scope: the cost model and every module that compares solver costs
(``cost_model.py``, ``probabilities.py``, ``opt_edgecut.py``,
``opt_edgecut_reference.py``, ``heuristic.py``, ``evaluation.py``,
``montecarlo.py``).  The helpers themselves are recognized by name and
exempt.
"""

from __future__ import annotations

import ast
from typing import List

from tools.analyzer.core import Finding, ModuleInfo, ProjectIndex, Rule, register

__all__ = ["FloatEqualityRule"]

_SOLVER_MODULES = {
    "cost_model.py",
    "probabilities.py",
    "opt_edgecut.py",
    "opt_edgecut_reference.py",
    "heuristic.py",
    "evaluation.py",
    "montecarlo.py",
}

# Functions allowed to contain float comparisons: the tolerance/tie-break
# helpers themselves.
_SANCTIONED_FUNCTIONS = {"costs_equal", "cost_improves"}

_ARITHMETIC_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.Mod)


def _is_floatish(node: ast.expr) -> bool:
    """Conservatively: does this expression look float-valued?

    Float constants, true division, ``float(...)`` casts, arithmetic over
    anything float-ish, and ``math.log``/``exp``/``sqrt`` calls qualify.
    Plain names do not — the rule prefers missing a disguised float to
    drowning integer comparisons in noise.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division always yields a float
        if isinstance(node.op, _ARITHMETIC_OPS):
            return _is_floatish(node.left) or _is_floatish(node.right)
        return False
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "log",
            "log2",
            "exp",
            "sqrt",
        ):
            return True
    return False


@register
class FloatEqualityRule(Rule):
    """``==``/``!=`` between float expressions in solver modules."""

    id = "float-equality"
    severity = "error"
    lint_level = False
    description = "float ==/!= outside the sanctioned tie-break helpers"

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.name in _SOLVER_MODULES

    def check(self, module: ModuleInfo, index: ProjectIndex) -> List[Finding]:
        if module.tree is None:
            return []
        findings: List[Finding] = []
        sanctioned_spans: List[range] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in _SANCTIONED_FUNCTIONS:
                    end = getattr(node, "end_lineno", node.lineno)
                    sanctioned_spans.append(range(node.lineno, end + 1))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if not (_is_floatish(left) or _is_floatish(right)):
                    continue
                if any(node.lineno in span for span in sanctioned_spans):
                    continue
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        "float equality comparison; use "
                        "cost_model.costs_equal/cost_improves or an inequality",
                    )
                )
        return findings
