"""``python -m tools.analyzer`` — run the static-analysis gate."""

from __future__ import annotations

import sys

from tools.analyzer.runner import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
