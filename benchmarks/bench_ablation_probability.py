"""§IV ablation — what the IDF term in the EXPLORE probability buys.

The paper weights a concept by |L(n)| / log LT(n): concepts that are
ubiquitous across MEDLINE (high LT) are discounted as undiscriminating
"inspired by the inverse document frequency measure in Information
Retrieval".  This ablation re-runs the Fig. 8 comparison with the IDF
denominator removed (pE ∝ |L(n)| alone) and reports the cost difference —
quantifying a design choice the paper motivates but never measures.
"""

from __future__ import annotations

import pytest

from repro.core.probabilities import ProbabilityModel
from repro.core.simulator import navigate_to_target
from repro.pipeline.registry import default_registry


def navigate(workload, prepared, use_idf: bool):
    probs = ProbabilityModel(
        prepared.tree, workload.database.medline_count, use_idf=use_idf
    )
    strategy = default_registry().create("heuristic", prepared.tree, probs)
    return navigate_to_target(
        prepared.tree, strategy, prepared.target_node, show_results=False
    )


def test_ablation_explore_idf(workload, prepared_queries, report, benchmark):
    def sweep():
        return {
            keyword: (navigate(workload, p, True), navigate(workload, p, False))
            for keyword, p in prepared_queries.items()
        }

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 76,
        "ABLATION — EXPLORE probability with vs without the IDF discount",
        "=" * 76,
        "%-26s %12s %14s" % ("keyword", "with IDF", "without IDF"),
        "-" * 76,
    ]
    with_total = 0.0
    without_total = 0.0
    for keyword, (with_idf, without_idf) in outcomes.items():
        assert with_idf.reached and without_idf.reached
        lines.append(
            "%-26s %12.0f %14.0f"
            % (keyword, with_idf.navigation_cost, without_idf.navigation_cost)
        )
        with_total += with_idf.navigation_cost
        without_total += without_idf.navigation_cost
    lines.append("-" * 76)
    lines.append(
        "totals: with IDF %.0f, without %.0f (ratio %.2f)"
        % (with_total, without_total, with_total / max(without_total, 1))
    )
    report("\n".join(lines))
    # Both variants navigate successfully; the IDF variant must not be
    # substantially worse overall (it is the paper's recommended form).
    assert with_total <= 1.5 * without_total


@pytest.mark.parametrize("use_idf", [True, False])
def test_bench_navigation_by_probability_variant(
    benchmark, workload, prepared_queries, use_idf
):
    prepared = prepared_queries["prothymosin"]
    outcome = benchmark.pedantic(
        navigate, args=(workload, prepared, use_idf), rounds=2, iterations=1
    )
    assert outcome.reached
