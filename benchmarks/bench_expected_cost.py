"""Model-expected cost comparison — strategies under the paper's own model.

The Fig. 8 experiment measures the cost a *targeted* user pays.  This
companion evaluates strategies under the probabilistic TOPDOWN cost model
itself (§III): Heuristic-ReducedOpt directly minimizes this objective, so
it must dominate both static variants under it — a sanity check that the
simulated-user wins are not an artifact of the user model.
"""

from __future__ import annotations

import pytest

from conftest import make_solver
from repro.core.evaluation import expected_strategy_cost

KEYWORDS = ("LbetaT2", "prothymosin", "vardenafil")


def test_expected_cost_comparison(prepared_queries, report, benchmark):
    def sweep():
        results = {}
        for keyword in KEYWORDS:
            prepared = prepared_queries[keyword]
            results[keyword] = {
                "static": expected_strategy_cost(
                    prepared.tree, prepared.probs, make_solver(prepared, "static_nav")
                ),
                "paged": expected_strategy_cost(
                    prepared.tree,
                    prepared.probs,
                    make_solver(prepared, "paged_static", page_size=5),
                ),
                "bionav": expected_strategy_cost(
                    prepared.tree,
                    prepared.probs,
                    make_solver(prepared, "heuristic"),
                ),
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 76,
        "EXPECTED COST — strategies under the paper's probabilistic TOPDOWN model",
        "=" * 76,
        "%-20s %12s %12s %12s" % ("keyword", "static", "paged(5)", "bionav"),
        "-" * 76,
    ]
    for keyword, costs in results.items():
        lines.append(
            "%-20s %12.1f %12.1f %12.1f"
            % (keyword, costs["static"], costs["paged"], costs["bionav"])
        )
        # The heuristic optimizes this objective; it must win under it.
        assert costs["bionav"] <= costs["static"] + 1e-6, keyword
        assert costs["bionav"] <= costs["paged"] + 1e-6, keyword
    lines.append("-" * 76)
    report("\n".join(lines))


@pytest.mark.parametrize("keyword", ["LbetaT2"])
def test_bench_expected_cost_evaluation(benchmark, prepared_queries, keyword):
    prepared = prepared_queries[keyword]

    def evaluate():
        return expected_strategy_cost(
            prepared.tree,
            prepared.probs,
            make_solver(prepared, "heuristic"),
        )

    cost = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    assert cost > 0
