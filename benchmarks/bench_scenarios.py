"""Robustness — the headline comparison under stress corpus regimes.

Runs BioNav vs static navigation in each of the stress scenarios of
:mod:`repro.workload.scenarios` (deep hierarchy, heavy duplication,
near-zero target selectivity, tiny result set), asserting the paper's
qualitative claim — BioNav never navigates worse than static, and wins
clearly whenever the result set is large enough to make expansion
worthwhile.
"""

from __future__ import annotations

import pytest

from conftest import make_solver
from repro.core.simulator import navigate_to_target
from repro.workload.scenarios import build_scenario, scenario_names


def run_scenario(name: str):
    workload = build_scenario(name)
    built = workload.queries[0]
    prepared = workload.prepare(built.spec.keyword)
    static = navigate_to_target(
        prepared.tree,
        make_solver(prepared, "static_nav"),
        prepared.target_node,
        show_results=False,
    )
    bionav = navigate_to_target(
        prepared.tree,
        make_solver(prepared, "heuristic"),
        prepared.target_node,
        show_results=False,
    )
    return prepared, static, bionav


def test_stress_scenarios(report, benchmark):
    def sweep():
        return {name: run_scenario(name) for name in scenario_names()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 84,
        "ROBUSTNESS — BioNav vs static under stress corpus regimes",
        "=" * 84,
        "%-20s %7s %7s %9s %9s %9s"
        % ("scenario", "cites", "tree", "static", "bionav", "improv"),
        "-" * 84,
    ]
    for name, (prepared, static, bionav) in results.items():
        assert static.reached and bionav.reached, name
        improvement = 1 - bionav.navigation_cost / static.navigation_cost
        lines.append(
            "%-20s %7d %7d %9.0f %9.0f %8.0f%%"
            % (
                name,
                len(prepared.pmids),
                prepared.tree.size(),
                static.navigation_cost,
                bionav.navigation_cost,
                100 * improvement,
            )
        )
        # BioNav never loses; on non-tiny regimes it wins decisively.
        assert bionav.navigation_cost <= static.navigation_cost, name
        if len(prepared.pmids) > 50:
            assert improvement >= 0.4, name
    lines.append("-" * 84)
    report("\n".join(lines))


@pytest.mark.parametrize("name", ["deep_hierarchy", "high_duplication"])
def test_bench_scenario_navigation(benchmark, name):
    prepared, _, bionav = benchmark.pedantic(
        run_scenario, args=(name,), rounds=1, iterations=1
    )
    assert bionav.reached
