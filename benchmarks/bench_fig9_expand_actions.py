"""Figure 9 — number of EXPAND actions: BioNav vs static navigation.

The paper observes that EXPAND counts are *relatively close* between the
two methods (so the dramatic Fig. 8 differences come from BioNav revealing
few descendants per EXPAND, not from fewer clicks), with BioNav needing
*more* EXPANDs in the worst case — "ice nucleation", 8 vs 3 — because its
target sits high in the hierarchy with a very low EXPLORE probability.

Shape assertions:
  * static expand counts stay small (tree-height bounded);
  * BioNav needs at least as many EXPANDs as static on the
    low-selectivity "ice nucleation" query;
  * BioNav's counts stay within a small multiple of static's.

The benchmark times one full static navigation for comparison with the
heuristic timing in bench_fig8.
"""

from __future__ import annotations

from conftest import run_heuristic, run_static


def test_fig9_expand_actions(prepared_queries, report, benchmark):
    def sweep():
        return {
            keyword: (run_static(p), run_heuristic(p))
            for keyword, p in prepared_queries.items()
        }

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 70,
        "FIGURE 9 — # of EXPAND actions",
        "=" * 70,
        "%-26s %10s %10s" % ("keyword", "static", "bionav"),
        "-" * 70,
    ]
    ratios = []
    for keyword, (static, bionav) in outcomes.items():
        lines.append(
            "%-26s %10d %10d" % (keyword, static.expand_actions, bionav.expand_actions)
        )
        ratios.append(bionav.expand_actions / max(static.expand_actions, 1))
        # Static expansion count equals the target's visible path length,
        # bounded by the tree height.
        assert static.expand_actions <= prepared_queries[keyword].tree.height()
    lines.append("-" * 70)
    lines.append(
        "bionav/static expand ratio: min %.1f  mean %.1f  max %.1f   (paper: ~1-3x)"
        % (min(ratios), sum(ratios) / len(ratios), max(ratios))
    )
    report("\n".join(lines))

    # Worst case in the paper is the low-selectivity target: BioNav needs
    # at least as many EXPANDs as static there.
    ice_static, ice_bionav = outcomes["ice nucleation"]
    assert ice_bionav.expand_actions >= ice_static.expand_actions


def test_bench_full_static_navigation(benchmark, prepared_queries):
    prepared = prepared_queries["prothymosin"]
    outcome = benchmark(run_static, prepared)
    assert outcome.reached
