"""Figure 11 — per-EXPAND execution time for the "prothymosin" query.

The paper breaks the prothymosin navigation down into its 5 EXPAND actions
and shows, for each, the Heuristic-ReducedOpt latency together with the
reduced-tree size (8, 7, 8, 10, 6 partitions in their run).  Two effects:
latency grows with the partition count, and later EXPANDs run on narrower
trees so they can be faster than earlier ones at equal partition counts
(the MeSH hierarchy is wider near the top).

Shape assertions:
  * every per-EXPAND reduced tree stays within the N=10 cap;
  * every step runs at interactive speed;
  * steps with the largest reduced trees are not the fastest ones.

The benchmark times the full per-step navigation (all EXPANDs).
"""

from __future__ import annotations

from conftest import run_heuristic


def test_fig11_per_expand_breakdown(prepared_queries, report, benchmark):
    prepared = prepared_queries["prothymosin"]
    outcome = benchmark.pedantic(run_heuristic, args=(prepared,), rounds=1, iterations=1)
    lines = [
        "",
        "=" * 74,
        "FIGURE 11 — Heuristic-ReducedOpt per-EXPAND breakdown (prothymosin)",
        "=" * 74,
        "%-10s %14s %12s %10s" % ("EXPAND#", "partitions", "time (ms)", "revealed"),
        "-" * 74,
    ]
    for record in outcome.expands:
        lines.append(
            "%-10d %14d %12.2f %10d"
            % (record.step, record.reduced_size, record.elapsed_seconds * 1000, record.revealed)
        )
        assert record.reduced_size <= 10  # the paper's N = 10 cap
        assert record.elapsed_seconds < 1.0
    lines.append("-" * 74)
    lines.append("(paper run: 5 EXPANDs with 8, 7, 8, 10, 6 partitions)")
    report("\n".join(lines))
    assert outcome.reached
    assert len(outcome.expands) >= 2


def test_fig11_largest_reduced_tree_not_fastest(prepared_queries, benchmark):
    prepared = prepared_queries["prothymosin"]
    outcome = benchmark.pedantic(run_heuristic, args=(prepared,), rounds=1, iterations=1)
    records = list(outcome.expands)
    if len(records) < 2:
        return
    biggest = max(records, key=lambda r: r.reduced_size)
    fastest = min(records, key=lambda r: r.elapsed_seconds)
    if biggest.reduced_size == min(r.reduced_size for r in records):
        return  # all equal: nothing to compare
    assert biggest.step != fastest.step or biggest.reduced_size <= 4


def test_bench_prothymosin_navigation(benchmark, prepared_queries):
    prepared = prepared_queries["prothymosin"]
    outcome = benchmark(run_heuristic, prepared)
    assert outcome.reached
