"""System bench — end-to-end request latency of the web interface.

The paper reports per-EXPAND optimizer latency (Figs. 10/11); the user
actually experiences the *request* latency: routing + session lookup +
EXPAND + visualization + rendering.  This bench measures the three hot
endpoints of the WSGI app — search (cold and tree-cached), expand, and
results — asserting interactive-time behaviour end to end.
"""

from __future__ import annotations

import json
from urllib.parse import urlencode

import pytest

from repro.bionav import BioNav
from repro.web.app import BioNavWebApp


@pytest.fixture(scope="module")
def app(workload) -> BioNavWebApp:
    return BioNavWebApp(BioNav(workload.database, workload.entrez))


def get(app, path, query=None):
    environ = {
        "REQUEST_METHOD": "GET",
        "PATH_INFO": path,
        "QUERY_STRING": urlencode(query or {}),
    }
    captured = []
    body = b"".join(app(environ, lambda s, h: captured.append(s))).decode()
    assert captured[0].startswith("200"), (captured[0], path)
    return body


def test_bench_search_request_tree_cached(benchmark, app):
    get(app, "/api/search", {"q": "prothymosin"})  # warm the tree cache

    def search():
        return get(app, "/api/search", {"q": "prothymosin"})

    body = benchmark(search)
    assert json.loads(body)["count"] == 313


def test_bench_expand_request(benchmark, app):
    body = get(app, "/api/search", {"q": "prothymosin"})
    sid = json.loads(body)["session"]
    state = json.loads(get(app, "/api/nav/%s" % sid))
    root = state["rows"][0]["node"]

    def expand_and_backtrack():
        get(app, "/api/nav/%s/expand" % sid, {"node": str(root)})
        return get(app, "/api/nav/%s/backtrack" % sid)

    body = benchmark(expand_and_backtrack)
    assert json.loads(body)["cost"]["expands"] >= 1


def test_bench_results_request(benchmark, app):
    body = get(app, "/api/search", {"q": "varenicline"})
    sid = json.loads(body)["session"]
    state = json.loads(get(app, "/api/nav/%s" % sid))
    root = state["rows"][0]["node"]

    def results():
        return get(app, "/nav/%s/results" % sid, {"node": str(root)})

    page = benchmark(results)
    assert "citations under" in page


def test_interactive_latency_budget(app, report, benchmark):
    """Every endpoint answers well under a second (the §VIII-B bar)."""
    import time

    def measure():
        timings = {}
        started = time.perf_counter()
        body = get(app, "/api/search", {"q": "follistatin"})
        timings["search (cold)"] = time.perf_counter() - started
        sid = json.loads(body)["session"]
        state = json.loads(get(app, "/api/nav/%s" % sid))
        root = state["rows"][0]["node"]
        started = time.perf_counter()
        get(app, "/api/nav/%s/expand" % sid, {"node": str(root)})
        timings["expand"] = time.perf_counter() - started
        started = time.perf_counter()
        get(app, "/nav/%s" % sid)
        timings["render"] = time.perf_counter() - started
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["", "WEB LATENCY — end-to-end request times"]
    for name, seconds in timings.items():
        lines.append("  %-16s %8.1f ms" % (name, seconds * 1000))
        assert seconds < 2.0, name
    report("\n".join(lines))
