"""Figure 8 — overall navigation cost: BioNav vs static navigation.

The paper's headline result: for every Table I query, a targeted TOPDOWN
navigation to the target concept costs far fewer examined concepts +
EXPAND clicks under Heuristic-ReducedOpt than under the static
show-all-children baseline.

Paper numbers to match in *shape*:
  * BioNav wins on every query, often by an order of magnitude;
  * the average improvement is 85% (paper); we assert >= 60% and report
    the measured value;
  * the smallest improvement belongs to the low-selectivity target
    ("ice nucleation" = 67% in the paper).

The benchmark times one full heuristic navigation (prothymosin).
"""

from __future__ import annotations

from conftest import run_heuristic, run_static


def test_fig8_navigation_cost(prepared_queries, report, benchmark):
    def sweep():
        return {
            keyword: (run_static(p), run_heuristic(p))
            for keyword, p in prepared_queries.items()
        }

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 86,
        "FIGURE 8 — Overall navigation cost (# concepts revealed + # EXPAND actions)",
        "=" * 86,
        "%-26s %10s %10s %13s %14s"
        % ("keyword", "static", "bionav", "improvement", "paper avg 85%"),
        "-" * 86,
    ]
    improvements = []
    for keyword, (static, bionav) in outcomes.items():
        assert static.reached and bionav.reached
        improvement = 1.0 - bionav.navigation_cost / static.navigation_cost
        improvements.append(improvement)
        lines.append(
            "%-26s %10.0f %10.0f %12.0f%%"
            % (keyword, static.navigation_cost, bionav.navigation_cost, improvement * 100)
        )
        # Shape: BioNav wins on every query.
        assert bionav.navigation_cost < static.navigation_cost, keyword
    average = sum(improvements) / len(improvements)
    lines.append("-" * 86)
    lines.append("%-26s %33.0f%%   (paper: 85%%)" % ("AVERAGE", average * 100))
    # Significance treatment the paper omits: paired tests over the
    # 10-query workload.
    from repro.analysis.significance import summarize_improvements

    summary = summarize_improvements(
        [s.navigation_cost for s, _ in outcomes.values()],
        [b.navigation_cost for _, b in outcomes.values()],
    )
    lines.append(
        "95%% bootstrap CI on the mean improvement: [%.0f%%, %.0f%%];"
        " Wilcoxon p = %.4f; sign-test p = %.4f"
        % (
            100 * summary.ci_low,
            100 * summary.ci_high,
            summary.wilcoxon_p,
            summary.sign_p,
        )
    )
    report("\n".join(lines))
    assert average >= 0.60
    assert summary.ci_low >= 0.5
    assert summary.sign_p < 0.01


def test_bench_full_heuristic_navigation(benchmark, prepared_queries):
    prepared = prepared_queries["prothymosin"]
    outcome = benchmark(run_heuristic, prepared)
    assert outcome.reached
