"""Scaling sweep — the improvement holds across scales (paper §VIII-A).

The paper stresses that BioNav's improvement is high "regardless of the
navigation tree characteristics ... and regardless of the number of
citations in the query result".  This bench sweeps (a) the query result
size at a fixed hierarchy and (b) the hierarchy size at a fixed result
size, asserting that BioNav's relative improvement over static navigation
persists across the sweep.
"""

from __future__ import annotations

from conftest import make_solver
from repro.core.simulator import navigate_to_target
from repro.workload.builder import build_workload
from repro.workload.queries import WorkloadQuery


def make_query(n_citations: int) -> WorkloadQuery:
    return WorkloadQuery(
        keyword="scaling probe",
        n_citations=n_citations,
        target_label="Scaling Target Concept",
        target_depth=4,
        n_topics=3,
        target_share=0.3,
        seed=500 + n_citations,
    )


def improvement_for(hierarchy_size: int, n_citations: int) -> tuple:
    workload = build_workload(
        hierarchy_size=hierarchy_size,
        seed=11,
        queries=[make_query(n_citations)],
        background_citations=40,
    )
    prepared = workload.prepare("scaling probe")
    static = navigate_to_target(
        prepared.tree, make_solver(prepared, "static_nav"), prepared.target_node,
        show_results=False,
    )
    bionav = navigate_to_target(
        prepared.tree,
        make_solver(prepared, "heuristic"),
        prepared.target_node,
        show_results=False,
    )
    assert static.reached and bionav.reached
    return (
        prepared.tree.size(),
        static.navigation_cost,
        bionav.navigation_cost,
        1 - bionav.navigation_cost / static.navigation_cost,
    )


def test_scaling_with_result_size(report, benchmark):
    def sweep():
        return [(n, improvement_for(1500, n)) for n in (50, 150, 300, 600)]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 78,
        "SCALING — improvement vs query result size (hierarchy fixed at 1500)",
        "=" * 78,
        "%-12s %10s %10s %10s %10s" % ("citations", "tree", "static", "bionav", "improv"),
        "-" * 78,
    ]
    for n, (tree_size, static_cost, bionav_cost, improvement) in results:
        lines.append(
            "%-12d %10d %10.0f %10.0f %9.0f%%"
            % (n, tree_size, static_cost, bionav_cost, improvement * 100)
        )
        # The paper's claim: improvement is high at every result size.
        assert improvement >= 0.4, n
    lines.append("-" * 78)
    report("\n".join(lines))


def test_scaling_with_hierarchy_size(report, benchmark):
    def sweep():
        return [(h, improvement_for(h, 250)) for h in (800, 1600, 3200)]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 78,
        "SCALING — improvement vs hierarchy size (result fixed at 250 citations)",
        "=" * 78,
        "%-12s %10s %10s %10s %10s" % ("hierarchy", "tree", "static", "bionav", "improv"),
        "-" * 78,
    ]
    for h, (tree_size, static_cost, bionav_cost, improvement) in results:
        lines.append(
            "%-12d %10d %10.0f %10.0f %9.0f%%"
            % (h, tree_size, static_cost, bionav_cost, improvement * 100)
        )
        assert improvement >= 0.4, h
    lines.append("-" * 78)
    report("\n".join(lines))
