"""§VI ablation — Opt-EdgeCut vs Heuristic-ReducedOpt.

The paper could not evaluate Opt-EdgeCut beyond tiny trees ("its execution
times are prohibiting even for relatively small (e.g., 30 nodes) navigation
trees") and uses it only inside the heuristic.  This bench quantifies both
halves of that design decision on small random navigation trees:

  * quality: the heuristic's expected cost is close to optimal
    (identical when the component fits within N; bounded degradation when
    reduction kicks in), and
  * cost: Opt-EdgeCut runtime grows explosively with tree size, which is
    exactly why reduction is required.
"""

from __future__ import annotations

import time

import pytest

from repro.core.heuristic import HeuristicReducedOpt
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import CutTree, OptEdgeCut
from repro.core.probabilities import ProbabilityModel
from repro.hierarchy.generator import generate_hierarchy


def random_navigation_tree(n_nodes: int, seed: int) -> NavigationTree:
    hierarchy = generate_hierarchy(target_size=n_nodes * 3, seed=seed)
    annotations = {}
    count = 0
    for node in hierarchy.iter_dfs():
        if node == hierarchy.root:
            continue
        annotations[node] = set(range(count * 3, count * 3 + 4 + (count % 5)))
        count += 1
        if count >= n_nodes - 1:
            break
    return NavigationTree.build(hierarchy, annotations)


def test_heuristic_quality_vs_optimal(report, benchmark):
    def sweep():
        results = []
        for seed in range(5):
            for n_nodes in (8, 10, 12):
                tree = random_navigation_tree(n_nodes, seed=seed + 50)
                if tree.size() < 4:
                    continue
                probs = ProbabilityModel(tree, lambda n: 200)
                component = frozenset(tree.iter_dfs())
                cut_tree = CutTree.from_component(tree, probs, component, tree.root)
                optimal = OptEdgeCut(cut_tree, probs).solve()
                heuristic = HeuristicReducedOpt(tree, probs, max_reduced_nodes=6)
                decision = heuristic.best_cut(component, tree.root)
                results.append((tree.size(), seed, optimal, decision))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 78,
        "ABLATION — Heuristic-ReducedOpt (N=6) expected cost vs Opt-EdgeCut optimum",
        "=" * 78,
        "%-8s %8s %14s %14s %10s" % ("nodes", "seed", "optimal", "heuristic", "ratio"),
        "-" * 78,
    ]
    ratios = []
    for size, seed, optimal, decision in results:
        assert decision.expected_cost is not None
        ratio = decision.expected_cost / max(optimal.expected_cost, 1e-9)
        ratios.append(ratio)
        lines.append(
            "%-8d %8d %14.3f %14.3f %10.2f"
            % (size, seed, optimal.expected_cost, decision.expected_cost, ratio)
        )
        # The heuristic can never beat the optimum it approximates.
        assert ratio >= 1.0 - 1e-9
    lines.append("-" * 78)
    lines.append("mean ratio: %.3f (1.0 = optimal)" % (sum(ratios) / len(ratios)))
    report("\n".join(lines))
    # Quality bound: within 2x of optimal on these small trees.
    assert sum(ratios) / len(ratios) < 2.0


def test_opt_edgecut_runtime_explodes(report, benchmark):
    """Why the heuristic exists: Opt-EdgeCut runtime vs component size."""
    lines = [
        "",
        "ABLATION — Opt-EdgeCut runtime growth (exponential in tree size)",
        "%-8s %14s" % ("nodes", "time (ms)"),
    ]

    def sweep():
        timings = []
        for n_nodes in (6, 9, 12, 15):
            tree = random_navigation_tree(n_nodes, seed=99)
            probs = ProbabilityModel(tree, lambda n: 200)
            component = frozenset(tree.iter_dfs())
            cut_tree = CutTree.from_component(tree, probs, component, tree.root)
            started = time.perf_counter()
            OptEdgeCut(cut_tree, probs, max_nodes=16).solve()
            elapsed = time.perf_counter() - started
            timings.append((tree.size(), elapsed))
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, elapsed in timings:
        lines.append("%-8d %14.3f" % (size, elapsed * 1000))
    report("\n".join(lines))
    # Largest tree costs more than the smallest (growth is monotone-ish).
    assert timings[-1][1] > timings[0][1]


@pytest.mark.parametrize("n_nodes", [8, 12])
def test_bench_opt_edgecut(benchmark, n_nodes):
    tree = random_navigation_tree(n_nodes, seed=7)
    probs = ProbabilityModel(tree, lambda n: 200)
    component = frozenset(tree.iter_dfs())
    cut_tree = CutTree.from_component(tree, probs, component, tree.root)

    def solve():
        return OptEdgeCut(cut_tree, probs, max_nodes=16).solve()

    best = benchmark(solve)
    assert best.expected_cost >= 0


def test_bench_heuristic_on_small_tree(benchmark):
    tree = random_navigation_tree(12, seed=7)
    probs = ProbabilityModel(tree, lambda n: 200)
    component = frozenset(tree.iter_dfs())

    def solve():
        return HeuristicReducedOpt(tree, probs, max_reduced_nodes=6).best_cut(
            component, tree.root
        )

    decision = benchmark(solve)
    assert decision.cut
