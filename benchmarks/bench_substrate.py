"""Substrate bench — offline build footprint + cold online latency.

The paper's offline pre-processing pass populated an Oracle MEDLINE
snapshot over ~20 days; the reproduction's substrate builder must do its
scaled-down equivalent in bounded memory and hand the online phase a
store it can answer from cold.  The bench runs the build CLI twice in
subprocesses (so each build's peak RSS is its own) and gates:

* **determinism** — two same-seed builds produce byte-identical
  manifest digests;
* **bounded memory** — build peak RSS stays under ``4x`` the final
  on-disk size plus a fixed interpreter baseline (a builder that
  materializes the corpus as Python objects fails this by an order of
  magnitude at 1M citations);
* **cold latency** — a fresh process opening the directory answers a
  two-concept boolean-AND and builds the navigation tree for the
  result inside the budgets below.

``SUBSTRATE_BENCH_SMOKE=1`` runs the same gates at 20k citations over a
2k-concept hierarchy for CI; the full run (1M citations over the
~48k-concept MeSH-2008 preset) writes ``BENCH_substrate.json`` at the
repository root so the measured margins are versioned with the code.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.navigation_tree import NavigationTree
from repro.substrate import MmapStore

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_substrate.json"

SMOKE = os.environ.get("SUBSTRATE_BENCH_SMOKE") == "1"

CITATIONS = 20_000 if SMOKE else 1_000_000
HIERARCHY_SIZE = 2_000 if SMOKE else 0  # 0 = the paper-scale MeSH preset
SEED = 2008

#: RSS gate: build peak < RSS_FACTOR * on-disk bytes + baseline.  The
#: baseline covers the bare interpreter + numpy, which dominates at
#: smoke scale where the directory itself is only a few MB.
RSS_FACTOR = 4.0
RSS_BASELINE_BYTES = 256 * 1024 * 1024

#: Cold-path budgets (fresh MmapStore, untouched page cache).  Set to
#: measured-plus-headroom over the array-native cold path (PR 10) —
#: ~5x the observed full-scale numbers — so a regression back toward
#: per-node Python construction actually fails, instead of hiding
#: under the old placeholder 2s/15s ceilings.
BOOLEAN_AND_BUDGET_S = 0.2
NAV_TREE_BUDGET_S = 1.0
RESULT_CAP = 5_000


def run_build(out_dir: Path) -> dict:
    """One CLI build in a subprocess; returns its JSON report."""
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.substrate.build",
            "--out",
            str(out_dir),
            "--citations",
            str(CITATIONS),
            "--seed",
            str(SEED),
            "--hierarchy-size",
            str(HIERARCHY_SIZE),
        ],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        cwd=str(REPO_ROOT),
    )
    return json.loads(result.stdout)


def pick_query_concepts(out_dir: Path) -> list:
    """Two popular concepts — the selective-AND shape users issue."""
    counts = np.load(out_dir / "concept_counts.npy", mmap_mode="r")
    order = np.argsort(np.asarray(counts))
    return [int(order[-1]), int(order[-3])]


def measure_cold_online(out_dir: Path) -> dict:
    """Open the store fresh and time the first-query path."""
    started = time.perf_counter()
    store = MmapStore(str(out_dir))
    open_s = time.perf_counter() - started

    started = time.perf_counter()
    hierarchy = store.hierarchy()
    hierarchy_load_s = time.perf_counter() - started

    concepts = pick_query_concepts(out_dir)
    started = time.perf_counter()
    pmids = store.boolean_and(concepts)
    boolean_and_s = time.perf_counter() - started

    result = [int(p) for p in pmids[:RESULT_CAP]]
    started = time.perf_counter()
    tree = NavigationTree.from_store(hierarchy, store, result)
    nav_tree_s = time.perf_counter() - started

    return {
        "open_s": open_s,
        "hierarchy_load_s": hierarchy_load_s,
        "query_concepts": concepts,
        "result_size": int(pmids.size),
        "tree_size": tree.size(),
        "boolean_and_s": boolean_and_s,
        "nav_tree_s": nav_tree_s,
    }


def test_substrate_build_and_cold_query(tmp_path_factory, report, benchmark):
    base = tmp_path_factory.mktemp("substrate-bench")

    def measure():
        first = run_build(base / "a")
        second = run_build(base / "b")
        online = measure_cold_online(base / "a")
        return first, second, online

    first, second, online = benchmark.pedantic(measure, rounds=1, iterations=1)

    rss_ceiling = RSS_FACTOR * first["disk_bytes"] + RSS_BASELINE_BYTES
    rows = {
        "benchmark": "substrate",
        "smoke": SMOKE,
        "citations": first["citations"],
        "pairs": first["pairs"],
        "concepts": first["concepts"],
        "digest": first["digest"],
        "digest_second_build": second["digest"],
        "build_elapsed_s": first["elapsed_s"],
        "build_max_rss_bytes": first["max_rss_bytes"],
        "disk_bytes": first["disk_bytes"],
        "rss_factor": RSS_FACTOR,
        "rss_baseline_bytes": RSS_BASELINE_BYTES,
        "rss_ceiling_bytes": int(rss_ceiling),
        "cold": online,
        "budgets": {
            "boolean_and_s": BOOLEAN_AND_BUDGET_S,
            "nav_tree_s": NAV_TREE_BUDGET_S,
        },
    }

    report(
        "\n"
        + "=" * 78
        + "\nSUBSTRATE — streaming build + cold mmap query (%s citations)"
        % format(first["citations"], ",")
        + "\n"
        + "=" * 78
        + "\n%-34s %12.1f s" % ("offline build", first["elapsed_s"])
        + "\n%-34s %9.1f MB  (disk %0.1f MB, ceiling %0.1f MB)"
        % (
            "build peak RSS",
            first["max_rss_bytes"] / 1e6,
            first["disk_bytes"] / 1e6,
            rss_ceiling / 1e6,
        )
        + "\n%-34s %12s" % ("same-seed digests equal", first["digest"] == second["digest"])
        + "\n%-34s %12.3f s" % ("cold store open", online["open_s"])
        + "\n%-34s %12.3f s" % ("cold hierarchy load", online["hierarchy_load_s"])
        + "\n%-34s %12.3f s  (%d hits)"
        % ("cold boolean-AND", online["boolean_and_s"], online["result_size"])
        + "\n%-34s %12.3f s  (%d nodes)"
        % ("cold navigation tree", online["nav_tree_s"], online["tree_size"])
        + "\n"
        + "=" * 78
    )

    # Determinism gate: byte-identical manifests across same-seed builds.
    assert first["digest"] == second["digest"]
    # Bounded-memory gate.
    assert first["max_rss_bytes"] < rss_ceiling, (
        "build RSS %.1f MB exceeds %.1f MB ceiling"
        % (first["max_rss_bytes"] / 1e6, rss_ceiling / 1e6)
    )
    # Cold-latency gates.
    assert online["boolean_and_s"] < BOOLEAN_AND_BUDGET_S
    assert online["nav_tree_s"] < NAV_TREE_BUDGET_S
    assert online["result_size"] > 0 and online["tree_size"] > 1

    if not SMOKE:
        OUTPUT.write_text(json.dumps(rows, indent=2) + "\n")
