"""Staged-pipeline cache benchmark: cold builds vs warm stage hits.

The refactor's performance claim is that the expensive navigation-tree
stage runs once per query and every later session is a cache hit: a
``nav_tree()`` call on a warm pipeline must cost at least
``HIT_SPEEDUP_FLOOR``× less than the cold build it replaces (in
practice the gap is orders of magnitude — a hit is a locked dict
lookup).  The gate measures the whole Table I workload on the
benchmark-scale hierarchy, so the cold side includes annotation
harvesting, tree embedding, and probability estimation.

Results are written to ``BENCH_pipeline.json`` at the repository root so
the measured margin is versioned alongside the code it certifies.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.pipeline.pipeline import NavigationPipeline

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

WARM_REPEATS = 5
HIT_SPEEDUP_FLOOR = 2.0


def measure(workload):
    pipeline = NavigationPipeline(workload.database, workload.entrez)
    keywords = [built.spec.keyword for built in workload.queries]
    rows = []
    for keyword in keywords:
        started = time.perf_counter()
        cold_artifact = pipeline.nav_tree(keyword)
        cold_s = time.perf_counter() - started
        warm_best = float("inf")
        for _ in range(WARM_REPEATS):
            started = time.perf_counter()
            warm_artifact = pipeline.nav_tree(keyword)
            warm_best = min(warm_best, time.perf_counter() - started)
        assert warm_artifact is cold_artifact, "warm hit must reuse the artifact"
        rows.append(
            {
                "query": keyword,
                "tree_nodes": cold_artifact.tree.size(),
                "cold_ms": cold_s * 1000.0,
                "warm_ms": warm_best * 1000.0,
                "speedup": cold_s / warm_best if warm_best > 0 else float("inf"),
            }
        )
    stats = pipeline.stage_stats()
    return rows, stats


def test_pipeline_tree_stage_cache_speedup(workload, report, benchmark):
    rows, stats = benchmark.pedantic(
        lambda: measure(workload), rounds=1, iterations=1
    )
    cold_total = sum(row["cold_ms"] for row in rows)
    warm_total = sum(row["warm_ms"] for row in rows)
    overall = cold_total / warm_total if warm_total > 0 else float("inf")
    lines = [
        "",
        "=" * 72,
        "STAGED PIPELINE — nav-tree stage: cold build vs warm cache hit",
        "=" * 72,
        "%-22s %8s %12s %12s %10s"
        % ("query", "nodes", "cold ms", "warm ms", "speedup"),
        "-" * 72,
    ]
    for row in rows:
        lines.append(
            "%-22s %8d %12.3f %12.4f %9.0fx"
            % (
                row["query"],
                row["tree_nodes"],
                row["cold_ms"],
                row["warm_ms"],
                row["speedup"],
            )
        )
    lines.append("-" * 72)
    lines.append(
        "total: cold %.2f ms, warm %.4f ms, overall %.0fx (floor %.1fx)"
        % (cold_total, warm_total, overall, HIT_SPEEDUP_FLOOR)
    )
    report("\n".join(lines))

    nav_stats = stats["nav_tree"]
    OUTPUT.write_text(
        json.dumps(
            {
                "benchmark": "pipeline",
                "hit_speedup_floor": HIT_SPEEDUP_FLOOR,
                "warm_repeats": WARM_REPEATS,
                "cold_ms_total": cold_total,
                "warm_ms_total": warm_total,
                "overall_speedup": overall,
                "nav_tree_stage": {
                    "builds": nav_stats["builds"],
                    "hits": nav_stats["hits"],
                    "misses": nav_stats["misses"],
                    "build_ms_avg": nav_stats["build_ms_avg"],
                },
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )

    assert nav_stats["builds"] == len(rows), "each query builds exactly once"
    assert nav_stats["hits"] == len(rows) * WARM_REPEATS
    assert overall >= HIT_SPEEDUP_FLOOR, (
        "warm nav-tree hits must be at least %.1fx faster than cold builds "
        "(measured %.1fx)" % (HIT_SPEEDUP_FLOOR, overall)
    )
