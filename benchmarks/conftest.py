"""Shared benchmark fixtures.

The workload is materialized once per session at a larger scale than the
unit-test fixture (hierarchy of 2,500 concepts) so the navigation trees are
big enough for the paper's effects to show, while every benchmark file
still runs in seconds.

Each bench prints a paper-vs-measured table through the ``report`` fixture
(bypassing pytest's capture so the tables land in the terminal/tee output)
and drives its hot loop through pytest-benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict

import pytest

from repro.core.simulator import NavigationOutcome, navigate_to_target
from repro.pipeline.registry import default_registry
from repro.workload.builder import PreparedQuery, Workload, build_workload

BENCH_HIERARCHY_SIZE = 2500
BENCH_SEED = 7


@pytest.fixture(scope="session")
def workload() -> Workload:
    return build_workload(hierarchy_size=BENCH_HIERARCHY_SIZE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def prepared_queries(workload) -> Dict[str, PreparedQuery]:
    """keyword → prepared query (online phase run once per query)."""
    return {p.spec.keyword: p for p in workload.prepare_all()}


@pytest.fixture()
def report(capsys) -> Callable[[str], None]:
    """Print a results table bypassing pytest's output capture."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _report


def make_solver(prepared: PreparedQuery, name: str, params=None, **options) -> object:
    """Registry-build a bare solver for one prepared query's tree.

    Benchmarks construct solvers fresh per measured iteration (no
    pipeline cut cache) so the timings cover the actual solve.
    """
    return default_registry().create(
        name, prepared.tree, prepared.probs, params=params, **options
    )


def run_solver(
    prepared: PreparedQuery, name: str, **options
) -> NavigationOutcome:
    return navigate_to_target(
        prepared.tree,
        make_solver(prepared, name, **options),
        prepared.target_node,
        show_results=False,
    )


def run_static(prepared: PreparedQuery) -> NavigationOutcome:
    return run_solver(prepared, "static_nav")


def run_heuristic(
    prepared: PreparedQuery, max_reduced_nodes: int = 10
) -> NavigationOutcome:
    return run_solver(prepared, "heuristic", max_reduced_nodes=max_reduced_nodes)
