"""Serving bench — closed-loop load generation against ServingRuntime.

A fleet of client threads drives the mixed interactive workload the
paper's deployment serves (search, view, EXPAND/BACKTRACK, SHOWRESULTS)
with Zipf-skewed popularity over the Table I keywords — a few hot
queries dominate, exactly the regime the single-flight tree cache and
the shared decision cache exist for.  The runtime simulates the
deployed system's per-request Entrez round-trip (``backend_latency``),
so request handling is I/O-bound and a larger worker pool overlaps the
waits; the bench runs the identical workload at 1 worker and 4 workers
and gates:

* throughput scaling ≥ 2.5x from 1 → 4 workers on the cached-query
  mixed workload;
* zero lost sessions — every session id handed out still answers at
  the end of the run;
* zero shed requests (the queue is sized for the offered load).

``SERVE_BENCH_SMOKE=1`` runs a reduced load for CI smoke (asserts the
no-shed/no-lost invariants only; does not gate scaling or rewrite the
JSON).  The full run writes ``BENCH_serving.json`` at the repository
root so the measured margin is versioned alongside the code.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from pathlib import Path

from repro.bionav import BioNav
from repro.serving import ServingRuntime

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

SMOKE = os.environ.get("SERVE_BENCH_SMOKE") == "1"

CLIENTS = 4 if SMOKE else 8
ITERATIONS = 4 if SMOKE else 40
WORKER_COUNTS = (2,) if SMOKE else (1, 4)
BACKEND_LATENCY = 0.004
SCALING_FLOOR = 2.5
ZIPF_EXPONENT = 1.1
SEED = 7


def zipf_keywords(keywords, count: int, seed: int):
    """``count`` keyword picks, popularity ~ 1/rank^s (deterministic)."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(len(keywords))]
    return rng.choices(list(keywords), weights=weights, k=count)


class ClientStats:
    """One client thread's tally (written single-threaded, read after join)."""

    def __init__(self) -> None:
        self.ops = 0
        self.sessions = []
        self.errors = []


def run_client(runtime: ServingRuntime, keywords, stats: ClientStats, start):
    """Closed loop: search, view, EXPAND, BACKTRACK, periodic SHOWRESULTS."""
    start.wait()
    for turn, keyword in enumerate(keywords):
        try:
            opened = runtime.search(keyword)
            stats.sessions.append(opened.session)
            stats.ops += 1
            view = runtime.view(opened.session)
            stats.ops += 1
            root = view.rows[0].node
            runtime.expand(opened.session, root)
            runtime.backtrack(opened.session)
            stats.ops += 2
            if turn % 4 == 0:
                runtime.results(opened.session, root)
                stats.ops += 1
        except Exception as exc:  # noqa: BLE001 - tallied, then failed loudly
            stats.errors.append(repr(exc))
            return


def run_load(
    bionav: BioNav,
    workers: int,
    keywords,
    backend_latency: float = BACKEND_LATENCY,
) -> dict:
    """One closed-loop run; returns the measured row."""
    runtime = ServingRuntime(
        bionav,
        tree_cache_size=32,
        max_sessions=CLIENTS * ITERATIONS + 8,
        workers=workers,
        max_queue=4 * CLIENTS * len(WORKER_COUNTS) + 64,
        backend_latency=backend_latency,
    )
    try:
        for keyword in keywords:  # warm trees: the cached-query regime
            runtime.search(keyword)
        plans = [
            zipf_keywords(keywords, ITERATIONS, SEED + 100 * workers + c)
            for c in range(CLIENTS)
        ]
        stats = [ClientStats() for _ in range(CLIENTS)]
        start = threading.Event()
        threads = [
            threading.Thread(
                target=run_client, args=(runtime, plans[c], stats[c], start)
            )
            for c in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        started = time.perf_counter()
        start.set()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        errors = [e for s in stats for e in s.errors]
        assert not errors, "client requests failed: %s" % errors[:3]
        sessions = [sid for s in stats for sid in s.sessions]
        lost = [sid for sid in sessions if not _answers(runtime, sid)]
        snapshot = runtime.stats()
        ops = sum(s.ops for s in stats)
        return {
            "workers": workers,
            "backend_latency_s": backend_latency,
            "clients": CLIENTS,
            "iterations": ITERATIONS,
            "ops": ops,
            "seconds": elapsed,
            "throughput_rps": ops / elapsed,
            "sessions_opened": len(sessions),
            "sessions_lost": len(lost),
            "shed": snapshot["serving"]["shed"]["total"],
            "cache_hit_ratio": snapshot["query_cache"]["hit_ratio"],
            "single_flight_coalesced": snapshot["query_cache"][
                "single_flight_coalesced"
            ],
        }
    finally:
        runtime.close()


def _answers(runtime: ServingRuntime, sid: str) -> bool:
    try:
        runtime.view(sid)
        return True
    except KeyError:
        return False


def test_serving_throughput_scaling(workload, report, benchmark):
    bionav = BioNav(workload.database, workload.entrez)
    keywords = [built.spec.keyword for built in workload.queries]

    def measure():
        return [run_load(bionav, workers, keywords) for workers in WORKER_COUNTS]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 78,
        "SERVING — closed-loop mixed workload (%d clients, Zipf queries)" % CLIENTS,
        "=" * 78,
        "%8s %8s %10s %12s %8s %8s %10s"
        % ("workers", "ops", "seconds", "rps", "shed", "lost", "hit ratio"),
        "-" * 78,
    ]
    for row in rows:
        lines.append(
            "%8d %8d %10.2f %12.1f %8d %8d %9.1f%%"
            % (
                row["workers"],
                row["ops"],
                row["seconds"],
                row["throughput_rps"],
                row["shed"],
                row["sessions_lost"],
                100.0 * row["cache_hit_ratio"],
            )
        )
    lines.append("-" * 78)
    for row in rows:
        assert row["shed"] == 0, "requests shed at %d workers" % row["workers"]
        assert row["sessions_lost"] == 0, (
            "%d sessions lost at %d workers"
            % (row["sessions_lost"], row["workers"])
        )
    if SMOKE:
        report("\n".join(lines + ["(smoke run: scaling gate skipped)"]))
        return
    by_workers = {row["workers"]: row for row in rows}
    scaling = by_workers[4]["throughput_rps"] / by_workers[1]["throughput_rps"]
    lines.append("scaling 1 -> 4 workers: %.2fx (floor %.1fx)" % (scaling, SCALING_FLOOR))
    # The same load with zero backend latency: request handling becomes
    # pure CPU, so the thread pool scales only as far as the GIL lets it.
    # Recorded (not gated) — this ceiling is what the multiprocess
    # cluster (benchmarks/bench_cluster.py) exists to break.
    cpu_rows = [
        run_load(bionav, workers, keywords, backend_latency=0.0)
        for workers in WORKER_COUNTS
    ]
    cpu_by_workers = {row["workers"]: row for row in cpu_rows}
    cpu_scaling = (
        cpu_by_workers[4]["throughput_rps"] / cpu_by_workers[1]["throughput_rps"]
    )
    lines.append(
        "CPU-bound (backend_latency=0) scaling 1 -> 4 workers: %.2fx"
        " (GIL ceiling; not gated)" % cpu_scaling
    )
    report("\n".join(lines))
    OUTPUT.write_text(
        json.dumps(
            {
                "benchmark": "serving",
                "scaling_floor": SCALING_FLOOR,
                "backend_latency_s": BACKEND_LATENCY,
                "scaling": scaling,
                "rows": rows,
                "cpu_bound": {
                    "backend_latency_s": 0.0,
                    "scaling": cpu_scaling,
                    "rows": cpu_rows,
                },
            },
            indent=2,
        )
        + "\n"
    )
    assert scaling >= SCALING_FLOOR, (
        "throughput scaling %.2fx below the %.1fx floor" % (scaling, SCALING_FLOOR)
    )
    for row in cpu_rows:
        assert row["shed"] == 0 and row["sessions_lost"] == 0, (
            "CPU-bound run shed or lost sessions at %d workers" % row["workers"]
        )
