"""Figure 10 — average Heuristic-ReducedOpt execution time per EXPAND.

The paper reports the mean per-EXPAND latency of Heuristic-ReducedOpt for
each query (tens to hundreds of milliseconds on 2008 hardware), dominated
by the exponential Opt-EdgeCut on the ≤10-supernode reduced tree: queries
whose reduced trees hit the N=10 cap run slowest ("vardenafil" in the
paper), and narrow reduced trees run fast even when large.

Shape assertions:
  * every EXPAND completes at interactive speed (well under a second);
  * queries whose expansions build larger reduced trees spend more time
    per EXPAND than those with smaller ones (rank correlation, loose).

The benchmark times a single root EXPAND decision for each of three
representative queries.
"""

from __future__ import annotations

import pytest

from conftest import make_solver, run_heuristic


def test_fig10_average_expand_time(prepared_queries, report, benchmark):
    def sweep():
        return {k: run_heuristic(p) for k, p in prepared_queries.items()}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 78,
        "FIGURE 10 — Heuristic-ReducedOpt: average execution time per EXPAND",
        "=" * 78,
        "%-26s %10s %12s %14s" % ("keyword", "expands", "avg ms", "avg |T_R|"),
        "-" * 78,
    ]
    rows = []
    for keyword, outcome in outcomes.items():
        avg_ms = outcome.average_expand_seconds * 1000
        avg_reduced = (
            sum(r.reduced_size for r in outcome.expands) / max(len(outcome.expands), 1)
        )
        rows.append((keyword, len(outcome.expands), avg_ms, avg_reduced))
        lines.append("%-26s %10d %12.2f %14.1f" % (keyword, len(outcome.expands), avg_ms, avg_reduced))
        # Interactive-time requirement from §VIII-B.
        assert avg_ms < 1000.0
    lines.append("-" * 78)
    report("\n".join(lines))


def test_fig10_time_tracks_reduced_tree_size(prepared_queries, benchmark):
    """Larger reduced trees should cost more optimizer time on average."""

    def sweep():
        return [run_heuristic(p) for p in prepared_queries.values()]

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    small_times = []
    large_times = []
    for outcome in outcomes:
        for record in outcome.expands:
            if record.reduced_size <= 4:
                small_times.append(record.elapsed_seconds)
            elif record.reduced_size >= 8:
                large_times.append(record.elapsed_seconds)
    if not small_times or not large_times:
        pytest.skip("workload did not produce both small and large reduced trees")
    assert sum(large_times) / len(large_times) > sum(small_times) / len(small_times)


@pytest.mark.parametrize("keyword", ["prothymosin", "vardenafil", "ice nucleation"])
def test_bench_root_expand_decision(benchmark, prepared_queries, keyword):
    """Time one Heuristic-ReducedOpt decision on the full root component."""
    prepared = prepared_queries[keyword]
    component = frozenset(prepared.tree.iter_dfs())

    def decide():
        strategy = make_solver(prepared, "heuristic")
        return strategy.best_cut(component, prepared.tree.root)

    decision = benchmark(decide)
    assert decision.cut
