"""Footnote 2 ablation — the "more button" variant of static navigation.

The paper dismisses paged static navigation in a footnote: "Even if we
show a few children at a time and display a 'more' button, the navigation
cost does not considerably change, given that executing more incurs
additional cost."  This bench makes the claim quantitative — and records a
reproduction nuance: under the §VIII-A *targeted* user (who expands the
right node at every step), count-ranked paging saves more than the
footnote suggests, because the target's branch usually surfaces in an
early page.  The footnote's reading matches a user who must scan all
children.  Either way BioNav dominates the paged baseline on aggregate.
"""

from __future__ import annotations

import pytest

from conftest import make_solver, run_heuristic, run_static
from repro.core.simulator import navigate_to_target


def run_paged(prepared, page_size: int):
    strategy = make_solver(prepared, "paged_static", page_size=page_size)
    return navigate_to_target(
        prepared.tree, strategy, prepared.target_node, show_results=False
    )


def test_footnote2_paged_static(prepared_queries, report, benchmark):
    def sweep():
        return {
            keyword: (
                run_static(p),
                run_paged(p, 5),
                run_paged(p, 10),
                run_heuristic(p),
            )
            for keyword, p in prepared_queries.items()
        }

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 88,
        "FOOTNOTE 2 — static vs paged static ('more' button) vs BioNav (nav cost)",
        "=" * 88,
        "%-26s %10s %12s %12s %10s"
        % ("keyword", "static", "paged(5)", "paged(10)", "bionav"),
        "-" * 88,
    ]
    paged_vs_static = []
    for keyword, (static, paged5, paged10, bionav) in outcomes.items():
        assert static.reached and paged5.reached and paged10.reached and bionav.reached
        lines.append(
            "%-26s %10.0f %12.0f %12.0f %10.0f"
            % (
                keyword,
                static.navigation_cost,
                paged5.navigation_cost,
                paged10.navigation_cost,
                bionav.navigation_cost,
            )
        )
        paged_vs_static.append(paged5.navigation_cost / static.navigation_cost)
        # Paging trades reveals for clicks: more EXPANDs, fewer or equal
        # reveals than static.
        assert paged5.expand_actions >= static.expand_actions
        assert paged5.concepts_revealed <= static.concepts_revealed
        # BioNav always beats plain static.
        assert bionav.navigation_cost < static.navigation_cost
    # BioNav beats the paged variant on aggregate (a lucky target under the
    # heaviest branch can let paging tie an individual query).
    bionav_total = sum(o[3].navigation_cost for o in outcomes.values())
    paged_total = sum(o[1].navigation_cost for o in outcomes.values())
    assert bionav_total < paged_total
    mean_ratio = sum(paged_vs_static) / len(paged_vs_static)
    lines.append("-" * 88)
    lines.append(
        "paged(5)/static cost ratio: mean %.2f  (paper footnote expects ~1; see note)"
        % mean_ratio
    )
    lines.append(
        "NOTE: under the *targeted* user of §VIII-A, count-ranked paging saves far"
    )
    lines.append(
        "more than the footnote suggests — the claim presumes a user who must scan"
    )
    lines.append(
        "children pages; BioNav still dominates on aggregate (see EXPERIMENTS.md)."
    )
    report("\n".join(lines))
    # In our user model paging can only reveal fewer concepts than static.
    assert mean_ratio <= 1.0


@pytest.mark.parametrize("page_size", [5, 10])
def test_bench_paged_navigation(benchmark, prepared_queries, page_size):
    prepared = prepared_queries["prothymosin"]
    outcome = benchmark(run_paged, prepared, page_size)
    assert outcome.reached
