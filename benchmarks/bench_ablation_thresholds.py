"""§IV ablation — the EXPAND-probability thresholds.

BioNav sets the EXPAND probability to 1 above 50 result citations and to 0
below 10, with the normalized-entropy estimate in between.  This bench
sweeps the (upper, lower) pair to show the estimator is robust around the
paper's operating point: navigation still reaches every target at similar
cost, while degenerate settings (everything forced to SHOWRESULTS) shift
the cut structure.
"""

from __future__ import annotations

import pytest

from repro.core.probabilities import ProbabilityModel
from repro.core.simulator import navigate_to_target
from repro.pipeline.registry import default_registry

SWEEP = [
    (50, 10),   # paper default
    (25, 5),
    (100, 20),
    (200, 100),  # expansion almost never certain
    (10, 0),     # expansion almost always certain
]


def navigate_with_thresholds(workload, prepared, upper, lower):
    probs = ProbabilityModel(
        prepared.tree,
        workload.database.medline_count,
        upper_threshold=upper,
        lower_threshold=lower,
    )
    strategy = default_registry().create("heuristic", prepared.tree, probs)
    return navigate_to_target(
        prepared.tree, strategy, prepared.target_node, show_results=False
    )


def test_ablation_thresholds(workload, prepared_queries, report, benchmark):
    prepared = prepared_queries["prothymosin"]

    def run_sweep():
        return [
            (upper, lower, navigate_with_thresholds(workload, prepared, upper, lower))
            for upper, lower in SWEEP
        ]

    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 72,
        "ABLATION — EXPAND-probability thresholds (prothymosin)",
        "=" * 72,
        "%-20s %12s %12s" % ("(upper, lower)", "nav cost", "expands"),
        "-" * 72,
    ]
    costs = {}
    for upper, lower, outcome in outcomes:
        assert outcome.reached, (upper, lower)
        costs[(upper, lower)] = outcome.navigation_cost
        lines.append(
            "%-20s %12.0f %12d"
            % ("(%d, %d)" % (upper, lower), outcome.navigation_cost, outcome.expand_actions)
        )
    lines.append("-" * 72)
    report("\n".join(lines))
    # Robustness: moderate threshold changes stay within 3x of the default.
    default = costs[(50, 10)]
    assert costs[(25, 5)] <= 3 * default
    assert costs[(100, 20)] <= 3 * default


def test_every_query_reaches_target_at_default_thresholds(
    workload, prepared_queries, benchmark
):
    def sweep():
        return [
            (p.spec.keyword, navigate_with_thresholds(workload, p, 50, 10))
            for p in prepared_queries.values()
        ]

    for keyword, outcome in benchmark.pedantic(sweep, rounds=1, iterations=1):
        assert outcome.reached, keyword


@pytest.mark.parametrize("upper,lower", [(50, 10), (200, 100)])
def test_bench_navigation_by_thresholds(benchmark, workload, prepared_queries, upper, lower):
    prepared = prepared_queries["prothymosin"]
    outcome = benchmark(navigate_with_thresholds, workload, prepared, upper, lower)
    assert outcome.reached
