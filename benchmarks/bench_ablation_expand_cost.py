"""§III ablation — the EXPAND-action cost constant.

The paper notes: "by changing the cost assigned to executing an EXPAND
action (which we set to 1 above) we affect the number of revealed concepts
after each EXPAND.  In particular, increasing this cost leads to more
concepts revealed for each EXPAND."

This bench sweeps the EXPAND cost over {1, 2, 4, 8} on the prothymosin
query and reports concepts revealed per EXPAND plus the resulting
targeted-navigation cost, asserting the paper's monotonicity claim (more
cost per click → chunkier cuts → fewer clicks needed).
"""

from __future__ import annotations

import pytest

from conftest import make_solver
from repro.core.cost_model import CostParams
from repro.core.simulator import navigate_to_target


def sweep(prepared, expand_cost: float):
    params = CostParams(expand_cost=expand_cost)
    strategy = make_solver(prepared, "heuristic", params=params)
    return navigate_to_target(
        prepared.tree, strategy, prepared.target_node, params=params, show_results=False
    )


def test_ablation_expand_cost(prepared_queries, report, benchmark):
    prepared = prepared_queries["prothymosin"]

    def run_sweep():
        return [(cost, sweep(prepared, cost)) for cost in (1.0, 2.0, 4.0, 8.0)]

    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 78,
        "ABLATION — EXPAND-action cost vs concepts revealed per EXPAND (prothymosin)",
        "=" * 78,
        "%-14s %10s %12s %18s" % ("expand_cost", "expands", "revealed", "revealed/expand"),
        "-" * 78,
    ]
    per_expand = []
    expand_counts = []
    for cost, outcome in outcomes:
        assert outcome.reached
        rate = outcome.concepts_revealed / max(outcome.expand_actions, 1)
        per_expand.append(rate)
        expand_counts.append(outcome.expand_actions)
        lines.append(
            "%-14.1f %10d %12d %18.2f"
            % (cost, outcome.expand_actions, outcome.concepts_revealed, rate)
        )
    lines.append("-" * 78)
    report("\n".join(lines))
    # Paper claim: a pricier EXPAND reveals more concepts per action.
    assert per_expand[-1] >= per_expand[0]
    # And correspondingly needs no more EXPAND actions.
    assert expand_counts[-1] <= expand_counts[0]


@pytest.mark.parametrize("expand_cost", [1.0, 8.0])
def test_bench_navigation_under_expand_cost(benchmark, prepared_queries, expand_cost):
    prepared = prepared_queries["prothymosin"]
    outcome = benchmark(sweep, prepared, expand_cost)
    assert outcome.reached
