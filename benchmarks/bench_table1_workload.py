"""Table I — the query workload and its navigation-tree characteristics.

Regenerates the paper's Table I columns for all ten queries: citations in
the query result, navigation tree size / maximum width / height, citations
with duplicates, the target concept's MeSH level, L(n) and LT(n).

Paper reference points (the source table is OCR-garbled; the prose states
the prothymosin result has 313 citations attached to 3,940 concept nodes
with ~30,895 total attachments, and vardenafil has 486 citations on a
smaller tree): the *shape* to check is that result sizes match the specs
exactly, trees are an order of magnitude larger than the result count in
node terms, and duplicates multiply the attachment count several-fold.

The benchmark times the online navigation-tree construction (ESearch →
associations → maximum embedding), the per-query setup cost of BioNav.
"""

from __future__ import annotations

from repro.core.navigation_tree import NavigationTree


def test_table1_workload_statistics(workload, prepared_queries, report, benchmark):
    def measure():
        return [
            (
                built,
                prepared_queries[built.spec.keyword],
                prepared_queries[built.spec.keyword].tree,
            )
            for built in workload.queries
        ]

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 100,
        "TABLE I — Query workload (measured on the simulated substrate)",
        "=" * 100,
        "%-26s %6s %6s %6s %7s %8s %5s %5s %9s"
        % ("keyword", "cites", "tree", "width", "height", "w/dups", "lvl", "L(t)", "LT(t)"),
        "-" * 100,
    ]
    for built, prepared, tree in measured:
        target = prepared.target_node
        lines.append(
            "%-26s %6d %6d %6d %7d %8d %5d %5d %9d"
            % (
                built.spec.keyword,
                len(prepared.pmids),
                tree.size(),
                tree.max_width(),
                tree.height(),
                tree.citations_with_duplicates(),
                workload.hierarchy.depth(target),
                len(tree.results(target)),
                workload.database.medline_count(target),
            )
        )
        # Exact agreement with the spec'd result sizes (the two counts the
        # paper states in prose are honored exactly by the specs).
        assert len(prepared.pmids) == built.spec.n_citations
        # Duplicates multiply attachments well beyond the citation count.
        assert tree.citations_with_duplicates() > 3 * len(prepared.pmids)
        # The navigation tree is much bigger than the citation count
        # (the paper's motivation for dynamic navigation).
        assert tree.size() > len(prepared.pmids)
    lines.append("-" * 100)
    report("\n".join(lines))


def test_bench_navigation_tree_construction(benchmark, workload):
    """Time the per-query online setup (the paper's 'done once per query')."""
    pmids = workload.entrez.esearch_all("prothymosin")
    annotations = workload.database.annotations_for_result(pmids)

    def build():
        return NavigationTree.build(workload.hierarchy, annotations)

    tree = benchmark(build)
    assert tree.size() > 100
