"""Cluster bench — closed-loop Zipf load against the multiprocess fleet.

The single-process serving bench scales only because its simulated
Entrez latency is I/O: with ``backend_latency=0`` the GIL caps a
thread-pool runtime near 1x no matter how many workers it has (the
CPU-bound rows in ``BENCH_serving.json`` record that ceiling).  This
bench drives the same mixed interactive workload (search, view,
EXPAND/BACKTRACK, periodic SHOWRESULTS; Zipf-skewed keyword popularity)
against :class:`repro.cluster.BioNavCluster` — worker *processes*, one
``ServingRuntime`` each, sharing stage artifacts through the
file-backed L2 — and gates what the GIL forbids in-process:

* throughput scaling ≥ 2.5x from 1 → 4 worker processes on CPU-bound
  (zero backend-latency) load;
* zero lost sessions — every cluster session id handed out still
  answers at the end of the run — and zero shed requests;
* a warm cross-worker L2 hit: a navigation tree built by worker 0 is
  fetched, not rebuilt, by worker 1 (pipeline ledger deltas prove it).

``CLUSTER_BENCH_SMOKE=1`` runs a reduced 2-worker load for CI smoke
(asserts the no-shed/no-lost and L2 invariants only; does not gate
scaling or rewrite the JSON).  The full run writes ``BENCH_cluster.json``
at the repository root so the measured margin is versioned with the code.

The scaling *gate* is enforced only on machines with >= 4 CPU cores:
1 -> 4 process scaling needs 4 cores to exist, and on a smaller box the
processes time-slice one core, so the measured ratio reflects L2 file
I/O overlap rather than the CPU parallelism under test.  The rows and
ratio are measured and recorded either way, with ``cpu_count`` and
``scaling_gate_enforced`` in the JSON, so the committed trajectory is
honest about the environment it came from.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.bionav import BioNav
from repro.cluster import BioNavCluster, ClusterConfig
from repro.serving.sessions import SessionExpired

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

SMOKE = os.environ.get("CLUSTER_BENCH_SMOKE") == "1"

CLIENTS = 4 if SMOKE else 8
ITERATIONS = 3 if SMOKE else 25
WORKER_COUNTS = (2,) if SMOKE else (1, 4)
SCALING_FLOOR = 2.5
#: Cores needed for the 1 -> 4 process scaling gate to be physically
#: meaningful (see the module docstring).
SCALING_GATE_MIN_CORES = 4
ZIPF_EXPONENT = 1.1
SEED = 7

#: Minimal per-stage L1 so alternating queries miss in-process and every
#: search exercises rebuild-or-L2-fetch work in the workers (~10-15ms of
#: CPU each at the bench hierarchy size — the work the cluster exists to
#: parallelize), not just in-memory cache reads.
TREE_CACHE_SIZE = 1


def zipf_keywords(keywords, count: int, seed: int):
    """``count`` keyword picks, popularity ~ 1/rank^s (deterministic)."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(len(keywords))]
    return rng.choices(list(keywords), weights=weights, k=count)


class ClientStats:
    """One client thread's tally (written single-threaded, read after join)."""

    def __init__(self) -> None:
        self.ops = 0
        self.sessions = []
        self.errors = []


def run_client(cluster: BioNavCluster, keywords, stats: ClientStats, start):
    """Closed loop: search, view, EXPAND, BACKTRACK, periodic SHOWRESULTS."""
    start.wait()
    for turn, keyword in enumerate(keywords):
        try:
            opened = cluster.search(keyword)
            stats.sessions.append(opened.session)
            stats.ops += 1
            view = cluster.view(opened.session)
            stats.ops += 1
            root = view.rows[0].node
            cluster.expand(opened.session, root)
            cluster.backtrack(opened.session)
            stats.ops += 2
            if turn % 4 == 0:
                cluster.results(opened.session, root)
                stats.ops += 1
        except Exception as exc:  # noqa: BLE001 - tallied, then failed loudly
            stats.errors.append(repr(exc))
            return


def demo_cross_worker_l2(cluster: BioNavCluster, keyword: str) -> dict:
    """Prove the warm cross-worker hit on a cold fleet.

    Drive the same query through worker 0 then worker 1 directly and
    read worker 1's pipeline ledger: its navigation tree must arrive
    via L2 fetch (``l2_hits`` grows) with zero local ``builds``.
    """
    before = cluster._supervisor.call(1, "stats")["pipeline"]["nav_tree"]
    cluster._supervisor.call(0, "search", {"query": keyword})
    cluster._supervisor.call(1, "search", {"query": keyword})
    after = cluster._supervisor.call(1, "stats")["pipeline"]["nav_tree"]
    return {
        "keyword": keyword,
        "l2_hits_delta": after["l2_hits"] - before["l2_hits"],
        "builds_delta": after["builds"] - before["builds"],
    }


def run_load(bionav: BioNav, workers: int, keywords) -> dict:
    """One closed-loop run against a fresh fleet; returns the measured row."""
    cache_dir = tempfile.mkdtemp(prefix="bionav-bench-l2-")
    config = ClusterConfig(
        workers=workers,
        cache_dir=cache_dir,
        runtime={
            "tree_cache_size": TREE_CACHE_SIZE,
            "max_sessions": CLIENTS * ITERATIONS + 8,
            "workers": 2,
            "max_queue": 8 * CLIENTS + 64,
            "backend_latency": 0.0,
        },
    )
    cluster = BioNavCluster(bionav, config)
    try:
        l2_demo = (
            demo_cross_worker_l2(cluster, keywords[0]) if workers >= 2 else None
        )
        for keyword in keywords:  # warm the shared L2 store
            cluster.search(keyword)
        plans = [
            zipf_keywords(keywords, ITERATIONS, SEED + 100 * workers + c)
            for c in range(CLIENTS)
        ]
        stats = [ClientStats() for _ in range(CLIENTS)]
        start = threading.Event()
        threads = [
            threading.Thread(
                target=run_client, args=(cluster, plans[c], stats[c], start)
            )
            for c in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        started = time.perf_counter()
        start.set()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        errors = [e for s in stats for e in s.errors]
        assert not errors, "client requests failed: %s" % errors[:3]
        sessions = [sid for s in stats for sid in s.sessions]
        lost = [sid for sid in sessions if not _answers(cluster, sid)]
        snapshot = cluster.stats()
        ops = sum(s.ops for s in stats)
        row = {
            "workers": workers,
            "clients": CLIENTS,
            "iterations": ITERATIONS,
            "ops": ops,
            "seconds": elapsed,
            "throughput_rps": ops / elapsed,
            "sessions_opened": len(sessions),
            "sessions_lost": len(lost),
            "shed": snapshot["cluster"]["shed_total"],
            "crashes": snapshot["cluster"]["crashes"],
            "l2_hits": snapshot["l2"]["hits"],
            "l2_publishes": snapshot["l2"]["publishes"],
        }
        if l2_demo is not None:
            row["l2_cross_worker"] = l2_demo
        return row
    finally:
        cluster.close()
        shutil.rmtree(cache_dir, ignore_errors=True)


def _answers(cluster: BioNavCluster, sid: str) -> bool:
    try:
        cluster.view(sid)
        return True
    except (KeyError, SessionExpired):
        return False


def test_cluster_throughput_scaling(workload, report, benchmark):
    bionav = BioNav(workload.database, workload.entrez)
    keywords = [built.spec.keyword for built in workload.queries]

    def measure():
        return [run_load(bionav, workers, keywords) for workers in WORKER_COUNTS]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 78,
        "CLUSTER — closed-loop mixed workload, CPU-bound (%d clients, Zipf)"
        % CLIENTS,
        "=" * 78,
        "%8s %8s %10s %12s %8s %8s %10s"
        % ("procs", "ops", "seconds", "rps", "shed", "lost", "l2 hits"),
        "-" * 78,
    ]
    for row in rows:
        lines.append(
            "%8d %8d %10.2f %12.1f %8d %8d %10d"
            % (
                row["workers"],
                row["ops"],
                row["seconds"],
                row["throughput_rps"],
                row["shed"],
                row["sessions_lost"],
                row["l2_hits"],
            )
        )
    lines.append("-" * 78)
    for row in rows:
        assert row["shed"] == 0, "requests shed at %d workers" % row["workers"]
        assert row["sessions_lost"] == 0, (
            "%d sessions lost at %d workers"
            % (row["sessions_lost"], row["workers"])
        )
        assert row["crashes"] == 0, "workers crashed under load"
        demo = row.get("l2_cross_worker")
        if demo is not None:
            assert demo["l2_hits_delta"] >= 1, "no cross-worker L2 fetch"
            assert demo["builds_delta"] == 0, "worker 1 rebuilt a shared tree"
    if SMOKE:
        report("\n".join(lines + ["(smoke run: scaling gate skipped)"]))
        return
    cores = os.cpu_count() or 1
    gate = cores >= SCALING_GATE_MIN_CORES
    by_workers = {row["workers"]: row for row in rows}
    scaling = by_workers[4]["throughput_rps"] / by_workers[1]["throughput_rps"]
    lines.append(
        "scaling 1 -> 4 processes: %.2fx (floor %.1fx, %d cores%s)"
        % (
            scaling,
            SCALING_FLOOR,
            cores,
            "" if gate else "; gate skipped, needs %d" % SCALING_GATE_MIN_CORES,
        )
    )
    report("\n".join(lines))
    OUTPUT.write_text(
        json.dumps(
            {
                "benchmark": "cluster",
                "scaling_floor": SCALING_FLOOR,
                "backend_latency_s": 0.0,
                "scaling": scaling,
                "cpu_count": cores,
                "scaling_gate_enforced": gate,
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )
    if gate:
        assert scaling >= SCALING_FLOOR, (
            "throughput scaling %.2fx below the %.1fx floor"
            % (scaling, SCALING_FLOOR)
        )
