"""Extension experiment — robustness to user error (BACKTRACK model).

The paper's evaluation assumes an omniscient targeted user; its general
navigation model nevertheless includes BACKTRACK for recovering from
wrong turns (§III).  This bench sweeps the user's wrong-turn probability
and measures both strategies' navigation costs with mistakes included,
showing BioNav's advantage is robust to imperfect users — a question the
paper leaves open.
"""

from __future__ import annotations

import random

import pytest

from conftest import make_solver
from repro.core.imperfect import navigate_with_errors

ERROR_RATES = (0.0, 0.2, 0.4)
TRIALS = 5


def mean_cost(prepared, make_strategy, error_rate: float) -> float:
    costs = []
    for trial in range(TRIALS):
        outcome = navigate_with_errors(
            prepared.tree,
            make_strategy(prepared),
            prepared.target_node,
            error_rate=error_rate,
            rng=random.Random(1000 + trial),
        )
        assert outcome.reached
        costs.append(outcome.navigation_cost)
    return sum(costs) / len(costs)


def test_imperfect_user_sweep(prepared_queries, report, benchmark):
    keywords = ("LbetaT2", "prothymosin")

    def sweep():
        results = {}
        for keyword in keywords:
            prepared = prepared_queries[keyword]
            rows = []
            for rate in ERROR_RATES:
                static = mean_cost(
                    prepared, lambda p: make_solver(p, "static_nav"), rate
                )
                bionav = mean_cost(
                    prepared,
                    lambda p: make_solver(p, "heuristic"),
                    rate,
                )
                rows.append((rate, static, bionav))
            results[keyword] = rows
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 78,
        "EXTENSION — navigation cost under user error (mean of %d trials)" % TRIALS,
        "=" * 78,
        "%-20s %12s %12s %12s %10s"
        % ("keyword", "error rate", "static", "bionav", "improv"),
        "-" * 78,
    ]
    for keyword, rows in results.items():
        for rate, static, bionav in rows:
            improvement = 1 - bionav / static
            lines.append(
                "%-20s %12.1f %12.1f %12.1f %9.0f%%"
                % (keyword, rate, static, bionav, 100 * improvement)
            )
            # BioNav keeps a decisive advantage at every error level.
            assert bionav < static, (keyword, rate)
        # Errors cost extra for both (monotone-ish; allow sampling noise
        # by comparing the extremes only).
        assert rows[-1][1] >= rows[0][1] * 0.8
        lines.append("-" * 78)
    report("\n".join(lines))


@pytest.mark.parametrize("error_rate", [0.0, 0.4])
def test_bench_imperfect_navigation(benchmark, prepared_queries, error_rate):
    prepared = prepared_queries["LbetaT2"]

    def run():
        return navigate_with_errors(
            prepared.tree,
            make_solver(prepared, "heuristic"),
            prepared.target_node,
            error_rate=error_rate,
            rng=random.Random(7),
        )

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.reached
