"""§VI-B ablation — the reduced-tree size N.

N is the largest tree Opt-EdgeCut ever sees inside Heuristic-ReducedOpt
(the paper fixes N = 10 as "the maximum tree size on which Opt-EdgeCut can
operate in real-time").  The trade-off: a larger N approximates the
component more faithfully (better cuts) but the exponential optimizer
costs more per EXPAND.

This bench sweeps N over {4, 6, 8, 10, 12} on two queries and reports
navigation cost and per-EXPAND latency, asserting that latency grows with
N while navigation cost does not degrade.
"""

from __future__ import annotations

import pytest

from conftest import run_heuristic


def test_ablation_reduced_tree_size(prepared_queries, report, benchmark):
    def run_sweep():
        return {
            keyword: [
                (n, run_heuristic(prepared_queries[keyword], max_reduced_nodes=n))
                for n in (4, 6, 8, 10, 12)
            ]
            for keyword in ("prothymosin", "follistatin")
        }

    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 86,
        "ABLATION — reduced-tree size N: navigation cost vs per-EXPAND latency",
        "=" * 86,
        "%-20s %6s %12s %12s %14s" % ("keyword", "N", "nav cost", "expands", "avg ms/EXPAND"),
        "-" * 86,
    ]
    for keyword, swept in outcomes.items():
        latencies = []
        costs = []
        for n, outcome in swept:
            assert outcome.reached
            latencies.append(outcome.average_expand_seconds)
            costs.append(outcome.navigation_cost)
            lines.append(
                "%-20s %6d %12.0f %12d %14.2f"
                % (
                    keyword,
                    n,
                    outcome.navigation_cost,
                    outcome.expand_actions,
                    outcome.average_expand_seconds * 1000,
                )
            )
        lines.append("-" * 86)
        # Latency grows with N (exponential optimizer on a bigger tree).
        assert latencies[-1] > latencies[0]
        # Bigger N never blows up the navigation cost badly (within 2.5x of
        # the best observed).
        assert costs[-1] <= 2.5 * min(costs)
    report("\n".join(lines))


@pytest.mark.parametrize("n", [4, 10])
def test_bench_navigation_by_reduced_size(benchmark, prepared_queries, n):
    prepared = prepared_queries["prothymosin"]
    outcome = benchmark(run_heuristic, prepared, n)
    assert outcome.reached
