"""Opt-EdgeCut bitmask engine vs the retained exhaustive reference.

The bitmask engine (`repro.core.opt_edgecut.OptEdgeCut`) must be a pure
perf win: identical `BestCut` output (same cut edges, same expected cost,
bit for bit) at a fraction of the runtime.  This bench pits it against
`repro.core.opt_edgecut_reference.ReferenceOptEdgeCut` on seeded random
navigation-tree components at 8, 10 and 12 nodes (realistic citation-set
sizes, real EXPLORE mass), asserts exact agreement at every size, and
gates the speedup (≥3× on the full 12-node solve — the size class
Heuristic-ReducedOpt actually runs near the N=10 cap).

Results are written to ``BENCH_opt_engine.json`` at the repository root so
the measured margin is versioned alongside the code it certifies.
"""

import json
import random
import time
from pathlib import Path

from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import CutTree, OptEdgeCut
from repro.core.opt_edgecut_reference import ReferenceOptEdgeCut
from repro.core.probabilities import ProbabilityModel
from repro.hierarchy.concept import ConceptHierarchy

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_opt_engine.json"

SIZES = (8, 10, 12)
TREES_PER_SIZE = 3
REPEATS = 3
SPEEDUP_FLOOR = 3.0
GATED_SIZE = 12


def random_scenario(size: int, seed: int):
    """A random navigation-tree component lifted into a CutTree.

    Built the way production components are (random hierarchy, dense
    citation annotations, real EXPLORE mass) so the engines face
    realistic result-set sizes, not toy ones.
    """
    rng = random.Random(seed)
    h = ConceptHierarchy(root_label="r")
    nodes = [0]
    for i in range(size - 1):
        nodes.append(h.add_child(rng.choice(nodes), "c%d" % i))
    annotations = {
        n: set(rng.sample(range(300), rng.randint(5, 40))) for n in nodes
    }
    tree = NavigationTree.build(h, annotations)
    probs = ProbabilityModel(tree, lambda n: 500)
    component = frozenset(tree.iter_dfs())
    return CutTree.from_component(tree, probs, component, tree.root), probs


def _solve_time(solver_cls, tree: CutTree, probs, params) -> float:
    """Best-of-REPEATS wall time for one cold full solve."""
    best = float("inf")
    for _ in range(REPEATS):
        solver = solver_cls(tree, probs, params)
        started = time.perf_counter()
        solver.solve()
        best = min(best, time.perf_counter() - started)
    return best


def measure():
    params = CostParams()
    rows = []
    for size in SIZES:
        scenarios = [
            random_scenario(size, 1000 * size + i) for i in range(TREES_PER_SIZE)
        ]
        for tree, probs in scenarios:
            new = OptEdgeCut(tree, probs, params).solve()
            old = ReferenceOptEdgeCut(tree, probs, params).solve()
            assert new == old, "engines disagree at size %d: %r vs %r" % (
                size,
                new,
                old,
            )
        reference_s = sum(
            _solve_time(ReferenceOptEdgeCut, t, p, params) for t, p in scenarios
        )
        bitmask_s = sum(
            _solve_time(OptEdgeCut, t, p, params) for t, p in scenarios
        )
        rows.append(
            {
                "size": size,
                "trees": TREES_PER_SIZE,
                "reference_ms": reference_s * 1000.0,
                "bitmask_ms": bitmask_s * 1000.0,
                "speedup": reference_s / bitmask_s if bitmask_s > 0 else float("inf"),
            }
        )
    return rows


def test_opt_engine_speedup(report, benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 70,
        "OPT-EDGECUT ENGINE — bitmask vs exhaustive reference (full solve)",
        "=" * 70,
        "%8s %8s %14s %14s %10s"
        % ("|T|", "trees", "reference ms", "bitmask ms", "speedup"),
        "-" * 70,
    ]
    for row in rows:
        lines.append(
            "%8d %8d %14.2f %14.2f %9.1fx"
            % (
                row["size"],
                row["trees"],
                row["reference_ms"],
                row["bitmask_ms"],
                row["speedup"],
            )
        )
    lines.append("-" * 70)
    # No-silent-caps convention: only GATED_SIZE is asserted, but any
    # size running under the floor is called out explicitly instead of
    # scrolling past as an ordinary row.
    below_floor = [row for row in rows if row["speedup"] < SPEEDUP_FLOOR]
    for row in below_floor:
        lines.append(
            "BELOW FLOOR: size %d speedup %.2fx < %.1fx (gate only asserts size %d)"
            % (row["size"], row["speedup"], SPEEDUP_FLOOR, GATED_SIZE)
        )
    report("\n".join(lines))
    OUTPUT.write_text(
        json.dumps(
            {
                "benchmark": "opt_engine",
                "speedup_floor": SPEEDUP_FLOOR,
                "gated_size": GATED_SIZE,
                "below_floor_sizes": [row["size"] for row in below_floor],
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )
    gated = [row for row in rows if row["size"] == GATED_SIZE]
    assert gated, "gated size missing from measurement"
    assert gated[0]["speedup"] >= SPEEDUP_FLOOR, (
        "bitmask engine speedup %.2fx below the %.1fx floor at %d nodes"
        % (gated[0]["speedup"], SPEEDUP_FLOOR, GATED_SIZE)
    )
