"""EXPAND hot path — batched cost-model evaluation and warm-serving p99.

Two closed-loop measurements of the §IV cost model's hot path, gated
and written to ``BENCH_expand_hotpath.json`` at the repository root:

1. **Batch vs scalar cost-model evaluation.**  For seeded random
   navigation trees at 8/10/12 nodes, every candidate component an
   EdgeCut evaluation touches (each node's subtree plus each upper
   component left by cutting one child edge) is scored twice: once with
   the scalar :class:`~repro.core.probabilities.ProbabilityModel` loops
   (one component at a time) and once with the vectorized
   :class:`~repro.core.cost_arrays.CostArrays` kernels (the whole batch
   in one shot).  Gate: ≥ 3x batch speedup at 12-node trees — the size
   class Heuristic-ReducedOpt actually runs near the N=10 cap.  Per the
   no-silent-caps convention, sub-floor speedups at non-gated sizes are
   logged explicitly instead of scrolling past.

2. **Warm EXPAND p99 under closed-loop serving load.**  After a warm-up
   pass populates the pipeline's cut-stage cache of a
   :class:`~repro.serving.ServingRuntime` (bench_serving's shape, zero
   simulated backend latency so the measurement is the compute path),
   two phases run:

   * a concurrent client fleet drives search/EXPAND/BACKTRACK loops.
     Gate: the cut stage records **zero new misses** — every EXPAND of
     the storm is answered from the cache, i.e. the runtime actually
     serves warm under load.  Client-observed request latency is
     reported for context only: it adds view rendering, queue waits and
     GIL preemption across the worker pool (at the default 5 ms switch
     interval a 0.2 ms decision can be descheduled for tens of
     milliseconds under 4 CPU-bound threads), none of which is the path
     this PR optimizes.
   * a solo probe client then replays warm EXPANDs with the pool idle.
     The runtime's :class:`~repro.serving.concurrency.AtomicSolverProfile`
     records one timing per EXPAND decision; the records appended during
     the probe are exactly its warm decisions.  Gate: warm per-EXPAND
     decision p99 below one millisecond — the §IV cost-model path the
     arrays substrate serves.
"""

from __future__ import annotations

import gc
import json
import random
import threading
import time
from pathlib import Path

from repro.bionav import BioNav
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.hierarchy.concept import ConceptHierarchy
from repro.serving import ServingRuntime

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_expand_hotpath.json"

SIZES = (8, 10, 12)
TREES_PER_SIZE = 4
BATCH_REPEATS = 5
BATCH_FLOOR = 3.0
GATED_SIZE = 12

CLIENTS = 4
ITERATIONS = 25
PROBE_EXPANDS = 300
P99_FLOOR_MS = 1.0


# ----------------------------------------------------------------------
# Part 1 — batch vs scalar cost-model evaluation
# ----------------------------------------------------------------------
def random_tree(size: int, seed: int):
    """A seeded random navigation tree at paper-scale citation density.

    The §VI queries return thousands of citations, so component scoring
    at MEDLINE scale unions result sets in the hundreds per concept —
    that density (not toy tens) is what the scalar set unions pay for
    and the packed bitmaps shrug off.
    """
    rng = random.Random(seed)
    h = ConceptHierarchy(root_label="r")
    nodes = [0]
    for i in range(size - 1):
        nodes.append(h.add_child(rng.choice(nodes), "c%d" % i))
    annotations = {
        n: set(rng.sample(range(2000), rng.randint(25, 200))) for n in nodes
    }
    tree = NavigationTree.build(h, annotations)
    probs = ProbabilityModel(tree, lambda n: 5000)
    return tree, probs


def candidate_components(tree: NavigationTree):
    """The components an EdgeCut evaluation scores for one tree.

    Every node's subtree, plus every upper component produced by
    severing one child edge — the same population the cut search walks.
    """
    components = []
    for node in tree.iter_dfs():
        subtree = tree.subtree_nodes(node)
        components.append(sorted(subtree))
        for child in tree.children(node):
            upper = subtree - tree.subtree_nodes(child)
            components.append(sorted(upper))
    return components


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def measure_batch_speedup():
    rows = []
    for size in SIZES:
        scenarios = [random_tree(size, 9000 + 100 * size + i) for i in range(TREES_PER_SIZE)]
        batches = [
            (probs, candidate_components(tree)) for tree, probs in scenarios
        ]
        component_count = sum(len(comps) for _, comps in batches)

        def scalar_pass():
            for probs, comps in batches:
                for comp in comps:
                    probs.explore(comp)
                    probs.expand(frozenset(comp), comp[0])

        def batch_pass():
            for probs, comps in batches:
                probs.explore_batch(comps)
                probs.expand_batch(comps)

        # Equivalence spot-check before timing: the batch kernels must
        # agree with the scalar oracle on every candidate component.
        for probs, comps in batches:
            explore = probs.explore_batch(comps)
            expand = probs.expand_batch(comps)
            for comp, pe, px in zip(comps, explore, expand):
                se = probs.explore(comp)
                sx = probs.expand(frozenset(comp), comp[0])
                assert abs(pe - se) <= 1e-9 * max(1.0, abs(se))
                assert abs(px - sx) <= 1e-9 * max(1.0, abs(sx))

        scalar_s = _best_of(scalar_pass, BATCH_REPEATS)
        batch_s = _best_of(batch_pass, BATCH_REPEATS)
        rows.append(
            {
                "size": size,
                "trees": TREES_PER_SIZE,
                "components": component_count,
                "scalar_ms": scalar_s * 1000.0,
                "batch_ms": batch_s * 1000.0,
                "speedup": scalar_s / batch_s if batch_s > 0 else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Part 2 — warm EXPAND p99 under closed-loop serving load
# ----------------------------------------------------------------------
def run_serving_measurement(workload) -> dict:
    bionav = BioNav(workload.database, workload.entrez)
    keywords = [built.spec.keyword for built in workload.queries]
    runtime = ServingRuntime(
        bionav,
        tree_cache_size=32,
        max_sessions=CLIENTS * ITERATIONS + PROBE_EXPANDS + len(keywords) + 16,
        workers=CLIENTS,
        max_queue=8 * CLIENTS + 64,
        backend_latency=0.0,
    )
    try:
        # Warm-up: build every tree and populate the cut-stage cache for
        # the root expansion every client below replays.
        for keyword in keywords:
            opened = runtime.search(keyword)
            view = runtime.view(opened.session)
            root = view.rows[0].node
            runtime.expand(opened.session, root)
            runtime.backtrack(opened.session)
        warm_misses = runtime.stats()["pipeline"]["cut"]["misses"]

        # Phase A — concurrent fleet: prove the cut cache serves the
        # whole storm (zero new misses) and report what clients observe.
        latencies = [[] for _ in range(CLIENTS)]
        errors = []

        def client(index: int) -> None:
            rng = random.Random(4000 + index)
            try:
                for _ in range(ITERATIONS):
                    keyword = rng.choice(keywords)
                    opened = runtime.search(keyword)
                    view = runtime.view(opened.session)
                    root = view.rows[0].node
                    started = time.perf_counter()
                    runtime.expand(opened.session, root)
                    latencies[index].append(time.perf_counter() - started)
                    runtime.backtrack(opened.session)
            except Exception as exc:  # noqa: BLE001 - tallied, failed loudly
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, "client requests failed: %s" % errors[:3]
        fleet_misses = (
            runtime.stats()["pipeline"]["cut"]["misses"] - warm_misses
        )

        requests = sorted(value for batch in latencies for value in batch)
        assert requests, "no EXPAND latencies recorded"

        # Phase B — solo probe: warm per-EXPAND decision latency with the
        # pool idle.  Every profile record appended during the probe is a
        # warm, cut-cache-served decision.  The cyclic collector is
        # paused for the probe (standard latency-bench hygiene): a GC
        # pause landing inside the timed decision would charge the
        # allocator, not the §IV evaluation path this gate certifies.
        probe_mark = len(runtime.profile)
        rng = random.Random(4999)
        gc.collect()
        gc.disable()
        try:
            for _ in range(PROBE_EXPANDS):
                keyword = rng.choice(keywords)
                opened = runtime.search(keyword)
                view = runtime.view(opened.session)
                runtime.expand(opened.session, view.rows[0].node)
                runtime.backtrack(opened.session)
        finally:
            gc.enable()
        decisions = sorted(
            timing.seconds for timing in runtime.profile.records()[probe_mark:]
        )
        assert len(decisions) == PROBE_EXPANDS, (
            "profile recorded %d decisions for %d probe EXPANDs"
            % (len(decisions), PROBE_EXPANDS)
        )

        def percentile(series, q: float) -> float:
            rank = int(round((q / 100.0) * (len(series) - 1)))
            return series[rank]

        return {
            "clients": CLIENTS,
            "iterations": ITERATIONS,
            "fleet_expands": len(requests),
            "fleet_new_cut_misses": fleet_misses,
            "request_p50_ms": percentile(requests, 50) * 1000.0,
            "request_p99_ms": percentile(requests, 99) * 1000.0,
            "probe_expands": PROBE_EXPANDS,
            "warm_decision_p50_ms": percentile(decisions, 50) * 1000.0,
            "warm_decision_p95_ms": percentile(decisions, 95) * 1000.0,
            "warm_decision_p99_ms": percentile(decisions, 99) * 1000.0,
            "warm_decision_max_ms": decisions[-1] * 1000.0,
            "p99_floor_ms": P99_FLOOR_MS,
        }
    finally:
        runtime.close()


# ----------------------------------------------------------------------
def test_expand_hotpath(workload, report, benchmark):
    def measure():
        return measure_batch_speedup(), run_serving_measurement(workload)

    batch_rows, serving = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 74,
        "EXPAND HOT PATH — batched cost model + warm serving p99",
        "=" * 74,
        "%8s %8s %12s %12s %12s %10s"
        % ("|T|", "trees", "components", "scalar ms", "batch ms", "speedup"),
        "-" * 74,
    ]
    for row in batch_rows:
        lines.append(
            "%8d %8d %12d %12.3f %12.3f %9.1fx"
            % (
                row["size"],
                row["trees"],
                row["components"],
                row["scalar_ms"],
                row["batch_ms"],
                row["speedup"],
            )
        )
    lines.append("-" * 74)
    below_floor = [row for row in batch_rows if row["speedup"] < BATCH_FLOOR]
    for row in below_floor:
        lines.append(
            "BELOW FLOOR: size %d speedup %.2fx < %.1fx (gate only asserts size %d)"
            % (row["size"], row["speedup"], BATCH_FLOOR, GATED_SIZE)
        )
    lines.append(
        "fleet (%d clients x %d iters): %d EXPANDs, %d new cut misses "
        "(gated zero); request p50 %.3f ms / p99 %.3f ms (view render + "
        "queueing + GIL, context only)"
        % (
            serving["clients"],
            serving["iterations"],
            serving["fleet_expands"],
            serving["fleet_new_cut_misses"],
            serving["request_p50_ms"],
            serving["request_p99_ms"],
        )
    )
    lines.append(
        "warm EXPAND decision (solo probe, %d expands): p50 %.3f ms  "
        "p95 %.3f ms  p99 %.3f ms  max %.3f ms (floor %.1f ms)"
        % (
            serving["probe_expands"],
            serving["warm_decision_p50_ms"],
            serving["warm_decision_p95_ms"],
            serving["warm_decision_p99_ms"],
            serving["warm_decision_max_ms"],
            serving["p99_floor_ms"],
        )
    )
    report("\n".join(lines))
    OUTPUT.write_text(
        json.dumps(
            {
                "benchmark": "expand_hotpath",
                "batch_floor": BATCH_FLOOR,
                "gated_size": GATED_SIZE,
                "below_floor_sizes": [row["size"] for row in below_floor],
                "batch_rows": batch_rows,
                "serving": serving,
            },
            indent=2,
        )
        + "\n"
    )
    gated = [row for row in batch_rows if row["size"] == GATED_SIZE]
    assert gated, "gated size missing from measurement"
    assert gated[0]["speedup"] >= BATCH_FLOOR, (
        "batched cost-model evaluation %.2fx below the %.1fx floor at %d nodes"
        % (gated[0]["speedup"], BATCH_FLOOR, GATED_SIZE)
    )
    assert serving["fleet_new_cut_misses"] == 0, (
        "%d cut-stage misses during the warm fleet phase — the storm was "
        "not served from cache" % serving["fleet_new_cut_misses"]
    )
    assert serving["warm_decision_p99_ms"] < P99_FLOOR_MS, (
        "warm EXPAND decision p99 %.3f ms at or above the %.1f ms floor"
        % (serving["warm_decision_p99_ms"], P99_FLOOR_MS)
    )
