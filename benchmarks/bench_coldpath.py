"""Cold-path bench — array-native first-query latency vs the legacy path.

A *cold* query is the paper's worst case: a fresh process opens the
substrate directory, loads the hierarchy, answers a conjunctive
boolean-AND, and builds the navigation tree for the result (§II, §VII).
PR 9 ran that path through per-node Python: ~190ms rebuilding the
~48k-concept hierarchy from ``hierarchy.jsonl``, full roaring-bitmap
deserialization per AND operand, and a dict-per-node tree build.  PR 10
made every stage array-native; this bench measures both paths on the
same directory and gates the speedups:

* **hierarchy open** — mmapping the persisted ``hier_*.npy`` arrays
  must beat the jsonl rebuild >= ``HIERARCHY_SPEEDUP_MIN``x (full scale);
* **AND + tree build** — the serialized-blob roaring kernel plus the
  vectorized maximum embedding must beat full deserialization plus the
  dict-based reference build >= ``COMBINED_SPEEDUP_MIN``x (full scale);
* **bit-identity** — the array-native tree matches the retained
  :class:`ReferenceNavigationTree` oracle node for node (preorder,
  parents, per-node results) and produces the identical CostArrays
  content key (hence identical navigation costs) on **both** store
  backends, at every scale.

``COLDPATH_BENCH_SMOKE=1`` runs the same identity gates at 20k
citations over a 2k-concept hierarchy for CI (speedup gates are only
meaningful at scale); the full run (1M citations over the paper-scale
MeSH-2008 preset) writes ``BENCH_coldpath.json`` at the repository
root.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.cost_arrays import CostArrays
from repro.core.navigation_tree import NavigationTree
from repro.core.navigation_tree_reference import ReferenceNavigationTree
from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.concept import ConceptHierarchy
from repro.hierarchy.generator import generate_hierarchy
from repro.substrate import InMemoryStore, MmapStore
from repro.substrate.roaring import RoaringBitmap

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_coldpath.json"

SMOKE = os.environ.get("COLDPATH_BENCH_SMOKE") == "1"

CITATIONS = 20_000 if SMOKE else 1_000_000
HIERARCHY_SIZE = 2_000 if SMOKE else 0  # 0 = the paper-scale MeSH preset
SEED = 2008
RESULT_CAP = 5_000

#: Identity cross-check corpus for the InMemoryStore backend (the full
#: 1M corpus as Python citation objects would defeat the point of the
#: substrate; identity is scale-independent).
IDENTITY_CITATIONS = 4_000
IDENTITY_HIERARCHY = 600

#: Full-scale speedup gates (ISSUE 10 acceptance: 286ms -> <=70ms
#: combined, 190ms -> <=19ms hierarchy open).
COMBINED_SPEEDUP_MIN = 4.0
HIERARCHY_SPEEDUP_MIN = 10.0


def run_build(out_dir: Path) -> dict:
    """One CLI build in a subprocess; returns its JSON report."""
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.substrate.build",
            "--out",
            str(out_dir),
            "--citations",
            str(CITATIONS),
            "--seed",
            str(SEED),
            "--hierarchy-size",
            str(HIERARCHY_SIZE),
        ],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        cwd=str(REPO_ROOT),
    )
    return json.loads(result.stdout)


# ---------------------------------------------------------------------------
# Legacy-path reimplementations (what PR 9 executed)
# ---------------------------------------------------------------------------
def hierarchy_from_jsonl(out_dir: Path) -> ConceptHierarchy:
    """The pre-arrays hierarchy open: rebuild every node from jsonl."""
    records = []
    with open(out_dir / "hierarchy.jsonl") as handle:
        for line in handle:
            if line.strip():
                uid, label, parent = json.loads(line)
                records.append((uid, label, parent))
    return ConceptHierarchy.from_records(records)


def boolean_and_reference(store: MmapStore, concepts) -> np.ndarray:
    """The pre-kernel AND: fully deserialize every operand bitmap."""
    bitmaps = [store.concept_bitmap(c) for c in concepts]
    ordinals = RoaringBitmap.intersect_many(bitmaps).to_array()
    return np.asarray(store._pmids[ordinals.astype(np.int64)], dtype=np.int64)


def trees_identical(tree: NavigationTree, ref: ReferenceNavigationTree) -> bool:
    """Node-for-node equality: preorder, parents, per-node results."""
    if list(tree.iter_dfs()) != list(ref.iter_dfs()):
        return False
    for node in ref.nodes():
        if tree.parent(node) != ref.parent(node):
            return False
        if tuple(tree.children(node)) != tuple(ref.children(node)):
            return False
        if tree.results(node) != ref.results(node):
            return False
    return True


def cost_keys_identical(store, tree, ref) -> bool:
    """Same CostArrays content key => identical navigation costs."""
    new_key = CostArrays(tree, store.medline_count).content_key
    ref_key = CostArrays(ref, store.medline_count).content_key
    return new_key == ref_key


# ---------------------------------------------------------------------------
# Measurements
# ---------------------------------------------------------------------------
def pick_query_concepts(out_dir: Path) -> list:
    """Two popular concepts — the selective-AND shape users issue."""
    counts = np.load(out_dir / "concept_counts.npy", mmap_mode="r")
    order = np.argsort(np.asarray(counts))
    return [int(order[-1]), int(order[-3])]


def measure_cold_paths(out_dir: Path) -> dict:
    """Time legacy vs array-native stages on a fresh store."""
    # Hierarchy open: jsonl rebuild (legacy) vs mmapped arrays (new).
    started = time.perf_counter()
    hierarchy_from_jsonl(out_dir)
    hierarchy_jsonl_s = time.perf_counter() - started

    store = MmapStore(str(out_dir))
    started = time.perf_counter()
    hierarchy = store.hierarchy()
    hierarchy_arrays_s = time.perf_counter() - started

    concepts = pick_query_concepts(out_dir)

    # Boolean AND: full per-concept deserialization vs the blob kernel.
    started = time.perf_counter()
    pmids_ref = boolean_and_reference(store, concepts)
    boolean_and_ref_s = time.perf_counter() - started

    started = time.perf_counter()
    pmids_new = store.boolean_and(concepts)
    boolean_and_new_s = time.perf_counter() - started
    assert np.array_equal(pmids_ref, pmids_new)

    # Navigation tree: dict-based oracle vs vectorized embedding.
    result = [int(p) for p in pmids_new[:RESULT_CAP]]
    started = time.perf_counter()
    ref_tree = ReferenceNavigationTree.from_store(hierarchy, store, result)
    nav_tree_ref_s = time.perf_counter() - started

    started = time.perf_counter()
    tree = NavigationTree.from_store(hierarchy, store, result)
    nav_tree_new_s = time.perf_counter() - started

    return {
        "query_concepts": concepts,
        "result_size": int(pmids_new.size),
        "tree_size": tree.size(),
        "hierarchy_jsonl_s": hierarchy_jsonl_s,
        "hierarchy_arrays_s": hierarchy_arrays_s,
        "boolean_and_ref_s": boolean_and_ref_s,
        "boolean_and_new_s": boolean_and_new_s,
        "nav_tree_ref_s": nav_tree_ref_s,
        "nav_tree_new_s": nav_tree_new_s,
        "mmap_identical": trees_identical(tree, ref_tree),
        "mmap_costs_identical": cost_keys_identical(store, tree, ref_tree),
    }


def check_inmemory_identity() -> dict:
    """Bit-identity on the InMemoryStore backend (scale-independent)."""
    hierarchy = generate_hierarchy(target_size=IDENTITY_HIERARCHY, seed=SEED)
    rng = np.random.default_rng(SEED)
    medline = MedlineDatabase(
        background_counts={c: 120 + 2 * c for c in range(len(hierarchy))}
    )
    for i in range(IDENTITY_CITATIONS):
        concepts = tuple(
            sorted(
                set(rng.integers(1, len(hierarchy), size=rng.integers(1, 10)).tolist())
            )
        )
        medline.add(
            Citation(
                pmid=50_000_000 + i,
                title="Cold-path identity citation %d" % i,
                year=int(1990 + (i % 20)),
                index_concepts=concepts,
            )
        )
    store = InMemoryStore(medline, hierarchy=hierarchy)
    pmids = store.boolean_and(pick_busiest(store))[:RESULT_CAP]
    result = [int(p) for p in pmids]
    tree = NavigationTree.from_store(hierarchy, store, result)
    ref = ReferenceNavigationTree.from_store(hierarchy, store, result)
    return {
        "citations": IDENTITY_CITATIONS,
        "result_size": len(result),
        "tree_size": tree.size(),
        "identical": trees_identical(tree, ref),
        "costs_identical": cost_keys_identical(store, tree, ref),
    }


def pick_busiest(store, k: int = 2) -> list:
    counts = [(store.result_count(c), c) for c in range(store.num_concepts)]
    return [c for _, c in sorted(counts, reverse=True)[:k]]


# ---------------------------------------------------------------------------
# The bench
# ---------------------------------------------------------------------------
def test_coldpath_speedup_and_identity(tmp_path_factory, report, benchmark):
    base = tmp_path_factory.mktemp("coldpath-bench")

    def measure():
        build = run_build(base / "substrate")
        cold = measure_cold_paths(base / "substrate")
        inmemory = check_inmemory_identity()
        return build, cold, inmemory

    build, cold, inmemory = benchmark.pedantic(measure, rounds=1, iterations=1)

    combined_ref = cold["boolean_and_ref_s"] + cold["nav_tree_ref_s"]
    combined_new = cold["boolean_and_new_s"] + cold["nav_tree_new_s"]
    combined_speedup = combined_ref / combined_new
    hierarchy_speedup = cold["hierarchy_jsonl_s"] / cold["hierarchy_arrays_s"]

    rows = {
        "benchmark": "coldpath",
        "smoke": SMOKE,
        "citations": build["citations"],
        "concepts": build["concepts"],
        "digest": build["digest"],
        "cold": cold,
        "inmemory_identity": inmemory,
        "combined_ref_s": combined_ref,
        "combined_new_s": combined_new,
        "combined_speedup": combined_speedup,
        "hierarchy_speedup": hierarchy_speedup,
        "gates": {
            "combined_speedup_min": COMBINED_SPEEDUP_MIN,
            "hierarchy_speedup_min": HIERARCHY_SPEEDUP_MIN,
        },
    }

    report(
        "\n"
        + "=" * 78
        + "\nCOLD PATH — legacy vs array-native (%s citations x %s concepts)"
        % (format(build["citations"], ","), format(build["concepts"], ","))
        + "\n"
        + "=" * 78
        + "\n%-38s %9.1f ms -> %7.1f ms  (%.1fx)"
        % (
            "hierarchy open (jsonl -> arrays)",
            cold["hierarchy_jsonl_s"] * 1e3,
            cold["hierarchy_arrays_s"] * 1e3,
            hierarchy_speedup,
        )
        + "\n%-38s %9.1f ms -> %7.1f ms  (%.1fx)"
        % (
            "boolean AND (inflate -> kernel)",
            cold["boolean_and_ref_s"] * 1e3,
            cold["boolean_and_new_s"] * 1e3,
            cold["boolean_and_ref_s"] / cold["boolean_and_new_s"],
        )
        + "\n%-38s %9.1f ms -> %7.1f ms  (%.1fx)"
        % (
            "navigation tree (dicts -> arrays)",
            cold["nav_tree_ref_s"] * 1e3,
            cold["nav_tree_new_s"] * 1e3,
            cold["nav_tree_ref_s"] / cold["nav_tree_new_s"],
        )
        + "\n%-38s %9.1f ms -> %7.1f ms  (%.1fx, gate >= %.1fx at full scale)"
        % (
            "AND + tree combined",
            combined_ref * 1e3,
            combined_new * 1e3,
            combined_speedup,
            COMBINED_SPEEDUP_MIN,
        )
        + "\n%-38s %12s / %s"
        % (
            "bit-identity (mmap / in-memory)",
            cold["mmap_identical"] and cold["mmap_costs_identical"],
            inmemory["identical"] and inmemory["costs_identical"],
        )
        + "\n"
        + "=" * 78
    )

    # Identity gates hold at every scale, on both backends.
    assert cold["mmap_identical"] and cold["mmap_costs_identical"]
    assert inmemory["identical"] and inmemory["costs_identical"]
    assert cold["result_size"] > 0 and cold["tree_size"] > 1

    # Speedup gates are only meaningful at full scale: at smoke size the
    # legacy path is already a few milliseconds and the ratio is noise.
    if not SMOKE:
        assert combined_speedup >= COMBINED_SPEEDUP_MIN, (
            "cold AND+tree %.1f ms is only %.1fx faster than the legacy "
            "%.1f ms (gate %.1fx)"
            % (
                combined_new * 1e3,
                combined_speedup,
                combined_ref * 1e3,
                COMBINED_SPEEDUP_MIN,
            )
        )
        assert hierarchy_speedup >= HIERARCHY_SPEEDUP_MIN, (
            "cold hierarchy open %.1f ms is only %.1fx faster than the "
            "jsonl rebuild %.1f ms (gate %.1fx)"
            % (
                cold["hierarchy_arrays_s"] * 1e3,
                hierarchy_speedup,
                cold["hierarchy_jsonl_s"] * 1e3,
                HIERARCHY_SPEEDUP_MIN,
            )
        )
        OUTPUT.write_text(json.dumps(rows, indent=2) + "\n")
