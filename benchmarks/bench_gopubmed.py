"""§IX comparison — the GoPubMed-style baseline.

The paper could not compare against GoPubMed directly (it indexes
citations differently than PubMed) and states that its static baseline
"very closely approximates the behaviour and the navigation cost of using
GoPubMed".  Having implemented GoPubMed's actual policy — a fixed
top-level category bar plus top-10 children per expansion — we can test
that approximation claim: GoPubMed-style navigation should cost roughly
what static (or paged static) costs, and BioNav should beat it by the
same order of magnitude.
"""

from __future__ import annotations

import pytest

from conftest import make_solver, run_heuristic, run_static
from repro.core.simulator import navigate_to_target


def run_gopubmed(prepared, top_k: int = 10):
    strategy = make_solver(prepared, "gopubmed", top_k=top_k)
    return navigate_to_target(
        prepared.tree, strategy, prepared.target_node, show_results=False
    )


def test_gopubmed_comparison(prepared_queries, report, benchmark):
    def sweep():
        return {
            keyword: (run_static(p), run_gopubmed(p), run_heuristic(p))
            for keyword, p in prepared_queries.items()
        }

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 80,
        "§IX — GoPubMed-style baseline vs static vs BioNav (navigation cost)",
        "=" * 80,
        "%-26s %10s %12s %10s" % ("keyword", "static", "gopubmed", "bionav"),
        "-" * 80,
    ]
    improvements = []
    for keyword, (static, gopubmed, bionav) in outcomes.items():
        assert static.reached and gopubmed.reached and bionav.reached
        lines.append(
            "%-26s %10.0f %12.0f %10.0f"
            % (
                keyword,
                static.navigation_cost,
                gopubmed.navigation_cost,
                bionav.navigation_cost,
            )
        )
        improvements.append(1 - bionav.navigation_cost / gopubmed.navigation_cost)
        # GoPubMed is a static-family policy: same order of magnitude as
        # static, never better than BioNav by much.
        assert gopubmed.navigation_cost <= static.navigation_cost * 1.5
    mean_improvement = sum(improvements) / len(improvements)
    lines.append("-" * 80)
    lines.append(
        "BioNav improvement over GoPubMed-style: %.0f%% on average"
        % (100 * mean_improvement)
    )
    report("\n".join(lines))
    assert mean_improvement >= 0.3


@pytest.mark.parametrize("top_k", [5, 10])
def test_bench_gopubmed_navigation(benchmark, prepared_queries, top_k):
    prepared = prepared_queries["prothymosin"]
    outcome = benchmark(run_gopubmed, prepared, top_k)
    assert outcome.reached
