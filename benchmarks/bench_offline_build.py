"""System bench — the off-line pre-processing pipeline (paper §VII).

The paper's off-line phase took ~20 days against live PubMed; on the
simulated substrate the same pipeline runs in seconds.  This bench times
its stages — corpus generation, database build (association extraction +
denormalization + index), JSON persistence, reload — and verifies the
harvest-vs-direct equivalence at bench scale.
"""

from __future__ import annotations

import os

import pytest

from repro.corpus.generator import CorpusGenerator, TopicSpec
from repro.corpus.medline import MedlineDatabase
from repro.eutils.client import EntrezClient
from repro.hierarchy.generator import generate_hierarchy
from repro.search.evaluator import FieldedEngineAdapter, FieldedSearchEngine
from repro.storage.database import BioNavDatabase
from repro.storage.harvest import ConceptHarvester


@pytest.fixture(scope="module")
def offline_inputs():
    hierarchy = generate_hierarchy(target_size=1200, seed=17)
    generator = CorpusGenerator(hierarchy, seed=17)
    medline = MedlineDatabase(background_counts=generator.background_counts())
    anchor = hierarchy.children(hierarchy.root)[0]
    other = hierarchy.children(hierarchy.root)[1]
    medline.add_all(
        generator.generate_topic(
            TopicSpec(
                keyword="offline probe",
                n_citations=250,
                anchors=((anchor, 1.0), (other, 0.4)),
            )
        )
    )
    medline.add_all(generator.generate_background(100))
    return hierarchy, medline


def test_bench_corpus_generation(benchmark):
    hierarchy = generate_hierarchy(target_size=1200, seed=18)

    def generate():
        generator = CorpusGenerator(hierarchy, seed=18)
        anchor = hierarchy.children(hierarchy.root)[0]
        return generator.generate_topic(
            TopicSpec(keyword="gen probe", n_citations=200, anchors=((anchor, 1.0),))
        )

    citations = benchmark(generate)
    assert len(citations) == 200


def test_bench_database_build(benchmark, offline_inputs):
    hierarchy, medline = offline_inputs
    database = benchmark(BioNavDatabase.build, hierarchy, medline)
    assert len(database.associations) > 1000


def test_bench_database_save_load(benchmark, offline_inputs, tmp_path):
    hierarchy, medline = offline_inputs
    database = BioNavDatabase.build(hierarchy, medline)
    path = str(tmp_path / "db.json")

    def round_trip():
        database.save(path)
        return BioNavDatabase.load(path, medline=medline)

    loaded = benchmark(round_trip)
    assert len(loaded.associations) == len(database.associations)
    assert os.path.getsize(path) > 0


def test_bench_harvest_slice(benchmark, offline_inputs):
    hierarchy, medline = offline_inputs
    fielded = FieldedSearchEngine(medline, hierarchy)
    harvester = ConceptHarvester(
        hierarchy, EntrezClient(medline, engine=FieldedEngineAdapter(fielded))
    )
    concepts = list(range(1, 80))

    result = benchmark.pedantic(
        harvester.harvest, kwargs={"concepts": concepts}, rounds=2, iterations=1
    )
    direct = BioNavDatabase.build(hierarchy, medline)
    for concept in concepts:
        assert result.associations.citations_for(concept) == (
            direct.associations.citations_for(concept)
        )
