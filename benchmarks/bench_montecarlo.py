"""Model validation — Monte-Carlo walks vs the analytic cost recursion.

The §III cost model is stated as a recursion; this bench verifies, on real
workload trees, that the recursion equals the expectation of the user
process it describes (sampled by :mod:`repro.core.montecarlo`), and that
the heuristic's dominance over static navigation holds under sampling —
closing the loop between the formula, the optimizer, and the simulated
user population.
"""

from __future__ import annotations

from conftest import make_solver
from repro.core.evaluation import expected_strategy_cost
from repro.core.montecarlo import estimate_expected_cost

KEYWORDS = ("LbetaT2", "varenicline")
N_WALKS = 120


def test_monte_carlo_agreement(prepared_queries, report, benchmark):
    def sweep():
        results = []
        for keyword in KEYWORDS:
            prepared = prepared_queries[keyword]
            for solver in ("static_nav", "heuristic"):
                make = lambda p, s=solver: make_solver(p, s)
                strategy = make(prepared)
                analytic = expected_strategy_cost(
                    prepared.tree, prepared.probs, make(prepared)
                )
                mean, stderr = estimate_expected_cost(
                    prepared.tree,
                    prepared.probs,
                    strategy,
                    n_walks=N_WALKS,
                    seed=101,
                )
                results.append((keyword, strategy.name, analytic, mean, stderr))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "",
        "=" * 84,
        "MODEL VALIDATION — analytic expected cost vs Monte-Carlo (%d walks)" % N_WALKS,
        "=" * 84,
        "%-16s %-24s %10s %12s %10s"
        % ("keyword", "strategy", "analytic", "MC mean", "MC stderr"),
        "-" * 84,
    ]
    for keyword, name, analytic, mean, stderr in results:
        lines.append(
            "%-16s %-24s %10.2f %12.2f %10.2f" % (keyword, name, analytic, mean, stderr)
        )
        # Agreement within sampling noise (or 10% for tiny costs).
        assert abs(mean - analytic) <= max(6 * stderr, 0.10 * analytic), (
            keyword,
            name,
        )
    lines.append("-" * 84)
    report("\n".join(lines))

    # Dominance also holds under sampling, per keyword.
    by_query = {}
    for keyword, name, _, mean, _ in results:
        by_query.setdefault(keyword, {})[name] = mean
    for keyword, means in by_query.items():
        assert means["heuristic-reducedopt"] < means["static"], keyword


def test_bench_one_walk(benchmark, prepared_queries):
    import random

    from repro.core.montecarlo import sample_walk

    prepared = prepared_queries["LbetaT2"]
    strategy = make_solver(prepared, "heuristic")
    rng = random.Random(1)

    outcome = benchmark(
        sample_walk, prepared.tree, prepared.probs, strategy, rng
    )
    assert outcome.cost >= 0
