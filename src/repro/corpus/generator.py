"""Synthetic MEDLINE corpus generation.

The paper evaluates against live MEDLINE (18M citations, PubMed indexing
associating ~90 MeSH concepts per citation).  Offline, we generate a corpus
with the same structural properties the algorithms depend on:

* query results cluster around a handful of *topic anchor* concepts (a
  prothymosin-style query touches cancer, apoptosis, chromatin, ...),
* each citation carries ~20 direct MeSH annotations and a wider ~90-concept
  PubMed-index association set (a superset),
* concept/citation associations are heavily skewed (Zipf), producing the
  duplicate-rich navigation trees that make optimal EdgeCut selection
  NP-hard, and
* every concept also has a MEDLINE-wide *background count* (``LT(n)``)
  skewed by its height in the hierarchy, so the IDF-style EXPLORE
  probability behaves as in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.citation import Citation
from repro.hierarchy.concept import ConceptHierarchy

__all__ = ["TopicSpec", "CorpusGenerator"]

_ABSTRACT_VOCAB = [
    "expression", "regulation", "signaling", "binding", "activation",
    "inhibition", "mutation", "transcription", "translation", "phosphorylation",
    "pathway", "receptor", "ligand", "kinase", "substrate", "membrane",
    "nucleus", "cytoplasm", "apoptosis", "proliferation", "differentiation",
    "metabolism", "transport", "secretion", "localization", "interaction",
    "complex", "domain", "residue", "isoform", "homolog", "ortholog",
    "in vivo", "in vitro", "knockout", "overexpression", "assay", "cohort",
]

_AUTHOR_SURNAMES = [
    "Smith", "Chen", "Garcia", "Kim", "Patel", "Mueller", "Tanaka", "Rossi",
    "Novak", "Silva", "Kowalski", "Okafor", "Haddad", "Larsen", "Dubois",
]


@dataclass(frozen=True)
class TopicSpec:
    """Declarative description of one query topic.

    Attributes:
        keyword: the query keyword; embedded in every topic citation's title
            so the simulated ESearch retrieves exactly this result set.
        n_citations: number of citations in the query result.
        anchors: (concept node id, weight) pairs; citations draw their
            associations from the subtrees of these anchors, proportionally
            to the weights.  Higher weight on an anchor concentrates the
            result set under it (controls L(target)).
        annotations_per_citation: mean direct MEDLINE annotations (~20).
        index_per_citation: mean PubMed-index associations (~90 in the
            paper; scaled down by default to keep trees laptop-sized while
            preserving heavy duplication).
        background_fraction: fraction of associations drawn from the global
            background distribution rather than the anchor pools, creating
            the uninteresting high-LT concepts the EXPLORE probability must
            discount.
    """

    keyword: str
    n_citations: int
    anchors: Tuple[Tuple[int, float], ...]
    annotations_per_citation: int = 12
    index_per_citation: int = 30
    background_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.n_citations <= 0:
            raise ValueError("n_citations must be positive")
        if not self.anchors:
            raise ValueError("a topic needs at least one anchor concept")
        if self.index_per_citation < self.annotations_per_citation:
            raise ValueError("index set must be at least as large as annotations")
        if not 0.0 <= self.background_fraction < 1.0:
            raise ValueError("background_fraction must be in [0, 1)")


class CorpusGenerator:
    """Reproducible generator of topic-clustered MEDLINE-like corpora."""

    def __init__(self, hierarchy: ConceptHierarchy, seed: int = 0):
        self.hierarchy = hierarchy
        self._rng = random.Random(seed)
        self._next_pmid = 10_000_001
        # Background sampling pool: all non-root concepts, Zipf-weighted by
        # a shuffled rank so the skew is not correlated with node id order.
        nodes = [n for n in range(1, len(hierarchy))]
        self._rng.shuffle(nodes)
        self._background_pool = nodes
        self._background_weights = [1.0 / (rank + 1) for rank in range(len(nodes))]

    # ------------------------------------------------------------------
    # Background MEDLINE-wide counts (LT)
    # ------------------------------------------------------------------
    def background_counts(self, scale: int = 200_000) -> Dict[int, int]:
        """Simulated MEDLINE-wide citation counts per concept.

        Broad (shallow, big-subtree) concepts receive large counts, specific
        leaves small ones, mirroring real MeSH statistics.  ``scale`` is the
        count assigned to the largest top-level category.
        """
        hierarchy = self.hierarchy
        sizes = {n: hierarchy.subtree_size(n) for n in range(len(hierarchy))}
        max_size = max(sizes[c] for c in hierarchy.children(hierarchy.root)) if len(
            hierarchy
        ) > 1 else 1
        counts: Dict[int, int] = {}
        for node in range(1, len(hierarchy)):
            base = scale * sizes[node] / max_size
            jitter = self._rng.uniform(0.5, 1.5)
            counts[node] = max(1, int(base * jitter))
        return counts

    # ------------------------------------------------------------------
    # Topic and background citations
    # ------------------------------------------------------------------
    def generate_topic(self, spec: TopicSpec) -> List[Citation]:
        """Materialize the query-result citations for one topic."""
        pool, weights = self._anchor_pool(spec.anchors)
        citations = []
        for _ in range(spec.n_citations):
            citations.append(self._make_citation(spec, pool, weights))
        return citations

    def generate_background(self, n_citations: int) -> List[Citation]:
        """Citations unrelated to any topic keyword (search-noise filler)."""
        citations = []
        for _ in range(n_citations):
            n_concepts = max(3, int(self._rng.gauss(12, 3)))
            concepts = self._sample_background(n_concepts)
            annotations = tuple(sorted(concepts[: max(2, n_concepts // 3)]))
            title = "Background study of %s in %s" % (
                self._rng.choice(_ABSTRACT_VOCAB),
                self._rng.choice(_ABSTRACT_VOCAB),
            )
            citations.append(
                Citation(
                    pmid=self._take_pmid(),
                    title=title,
                    abstract=self._make_abstract(None),
                    authors=self._make_authors(),
                    year=self._rng.randrange(1990, 2009),
                    mesh_annotations=annotations,
                    index_concepts=tuple(sorted(set(concepts) | set(annotations))),
                )
            )
        return citations

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _anchor_pool(
        self, anchors: Sequence[Tuple[int, float]]
    ) -> Tuple[List[int], List[float]]:
        """Focus-concept pool and sampling weights induced by topic anchors.

        Each anchor contributes its whole subtree, mildly favoring
        shallower members, plus its root-path ancestors with small weight
        (creating the cross-branch duplicates of real MeSH indexing).
        Citations do not sample these concepts independently — they pick a
        few *focus* concepts from this pool and annotate tight clusters
        around each (see :meth:`_make_citation`), reproducing the locality
        of real MeSH indexing.
        """
        hierarchy = self.hierarchy
        weight_of: Dict[int, float] = {}
        for anchor, anchor_weight in anchors:
            if anchor_weight <= 0:
                raise ValueError("anchor weights must be positive")
            base_depth = hierarchy.depth(anchor)
            for node in hierarchy.iter_dfs(anchor):
                below = hierarchy.depth(node) - base_depth
                w = anchor_weight * (0.9 ** below)
                weight_of[node] = weight_of.get(node, 0.0) + w
            for node in hierarchy.path_to_root(anchor)[1:]:
                if node == hierarchy.root:
                    continue
                weight_of[node] = weight_of.get(node, 0.0) + anchor_weight * 0.05
        pool = sorted(weight_of)
        weights = [weight_of[n] for n in pool]
        return pool, weights

    def _make_citation(
        self, spec: TopicSpec, pool: List[int], weights: List[float]
    ) -> Citation:
        rng = self._rng
        n_index = max(4, int(rng.gauss(spec.index_per_citation, 4)))
        n_background = int(n_index * spec.background_fraction)
        n_topic = n_index - n_background
        # Real MeSH indexing is *local*: a citation's concepts cluster
        # around the specific topics it discusses.  Pick a handful of focus
        # concepts from the anchor pools and annotate a tight neighborhood
        # around each, rather than sampling the pool independently.
        n_foci = rng.randrange(2, 5)
        foci = self._sample_weighted(pool, weights, min(n_foci, len(pool)))
        concepts: set = set()
        per_focus = max(2, n_topic // max(len(foci), 1))
        for focus in foci:
            concepts.update(self._focus_cluster(focus, per_focus))
        concepts.update(self._sample_background(n_background))
        index_concepts = tuple(sorted(concepts))
        n_annotations = min(
            len(index_concepts), max(3, int(rng.gauss(spec.annotations_per_citation, 2)))
        )
        annotations = tuple(sorted(rng.sample(index_concepts, n_annotations)))
        title = "%s: %s and %s in %s" % (
            spec.keyword,
            rng.choice(_ABSTRACT_VOCAB),
            rng.choice(_ABSTRACT_VOCAB),
            rng.choice(_ABSTRACT_VOCAB),
        )
        return Citation(
            pmid=self._take_pmid(),
            title=title,
            abstract=self._make_abstract(spec.keyword),
            authors=self._make_authors(),
            year=rng.randrange(1990, 2009),
            mesh_annotations=annotations,
            index_concepts=index_concepts,
        )

    def _focus_cluster(self, focus: int, size: int) -> List[int]:
        """A tight annotation cluster around one focus concept.

        The cluster is the focus itself, a biased random expansion into its
        descendants, and (with some probability) its parent — the shape of
        a real citation's MeSH terms around its main subject heading.
        """
        hierarchy = self.hierarchy
        members = [focus]
        frontier = list(hierarchy.children(focus))
        self._rng.shuffle(frontier)
        while len(members) < size and frontier:
            node = frontier.pop()
            members.append(node)
            if self._rng.random() < 0.5:
                frontier.extend(hierarchy.children(node))
        parent = hierarchy.parent(focus)
        if len(members) < size and parent > 0 and self._rng.random() < 0.6:
            members.append(parent)
        return members[:size]

    def _sample_weighted(
        self, pool: List[int], weights: List[float], count: int
    ) -> List[int]:
        """Sample ``count`` distinct concepts proportionally to ``weights``."""
        if count >= len(pool):
            return list(pool)
        chosen: set = set()
        # random.choices with rejection keeps this O(count) in expectation
        # while honoring the weights; the pool is much larger than count.
        attempts = 0
        while len(chosen) < count and attempts < count * 20:
            picks = self._rng.choices(pool, weights=weights, k=count - len(chosen))
            chosen.update(picks)
            attempts += 1
        if len(chosen) < count:
            remaining = [n for n in pool if n not in chosen]
            chosen.update(self._rng.sample(remaining, count - len(chosen)))
        return list(chosen)

    def _sample_background(self, count: int) -> List[int]:
        if count <= 0:
            return []
        count = min(count, len(self._background_pool))
        return self._sample_weighted(
            self._background_pool, self._background_weights, count
        )

    def _make_abstract(self, keyword: Optional[str]) -> str:
        words = self._rng.choices(_ABSTRACT_VOCAB, k=25)
        if keyword is not None and self._rng.random() < 0.8:
            words.insert(self._rng.randrange(len(words)), keyword)
        return "We report that %s." % " ".join(words)

    def _make_authors(self) -> Tuple[str, ...]:
        n = self._rng.randrange(1, 6)
        return tuple(
            "%s %s." % (self._rng.choice(_AUTHOR_SURNAMES), chr(ord("A") + self._rng.randrange(26)))
            for _ in range(n)
        )

    def _take_pmid(self) -> int:
        pmid = self._next_pmid
        self._next_pmid += 1
        return pmid
