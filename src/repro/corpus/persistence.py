"""JSONL persistence for the simulated MEDLINE corpus.

The BioNav database has JSON persistence (``BioNavDatabase.save``); the
corpus itself gets the same treatment here — one JSON object per citation
(the JSONL convention), plus a header object carrying the background LT
counts.  The primary interface is streaming: :func:`write_citations_jsonl`
consumes any citation iterable and :func:`read_citations_jsonl` yields
citations lazily, so a MEDLINE-scale corpus flows through in constant
memory (this is the interchange path between the substrate builder and
standard JSONL tooling).  The original whole-database functions
(:func:`save_medline_jsonl` / :func:`load_medline_jsonl`) remain as
deprecation shims over the streaming core and write byte-identical output.
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, Iterable, Iterator, Mapping, Optional, TextIO, Tuple

from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase

__all__ = [
    "write_citations_jsonl",
    "read_citations_jsonl",
    "save_medline_jsonl",
    "load_medline_jsonl",
]

_HEADER_KIND = "medline-header"
_CITATION_KIND = "citation"
_FORMAT_VERSION = 1


def write_citations_jsonl(
    citations: Iterable[Citation],
    handle: TextIO,
    background_counts: Optional[Mapping[int, int]] = None,
) -> int:
    """Stream citations as JSON lines; returns citations written.

    The first line is a header with the format version and the simulated
    background counts; each further line is one citation.  ``citations``
    may be any iterable (including a generator such as
    :func:`repro.corpus.loader.stream_medline_text`) — records are written
    as they arrive, one in memory at a time.
    """
    background = {
        str(concept): count for concept, count in (background_counts or {}).items()
    }
    header = {
        "kind": _HEADER_KIND,
        "version": _FORMAT_VERSION,
        "background_counts": background,
    }
    handle.write(json.dumps(header) + "\n")
    written = 0
    for citation in citations:
        record = {
            "kind": _CITATION_KIND,
            "pmid": citation.pmid,
            "title": citation.title,
            "abstract": citation.abstract,
            "authors": list(citation.authors),
            "year": citation.year,
            "mesh_annotations": list(citation.mesh_annotations),
            "index_concepts": list(citation.index_concepts),
        }
        handle.write(json.dumps(record) + "\n")
        written += 1
    return written


def read_citations_jsonl(
    handle: TextIO,
) -> Tuple[Dict[int, int], Iterator[Citation]]:
    """Open a JSONL corpus: ``(background_counts, lazy citation iterator)``.

    The header is validated eagerly; citations stream from the returned
    iterator one at a time, so the file never has to fit in memory.  The
    iterator borrows ``handle`` — keep it open until iteration finishes.

    Raises:
        ValueError: missing/invalid header or unsupported version;
            iterating raises on an unknown record kind.
    """
    first = handle.readline()
    if not first.strip():
        raise ValueError("empty file: expected a medline-header line")
    header = json.loads(first)
    if header.get("kind") != _HEADER_KIND:
        raise ValueError("first line is not a medline-header record")
    if header.get("version") != _FORMAT_VERSION:
        raise ValueError("unsupported format version %r" % header.get("version"))
    background = {
        int(concept): count
        for concept, count in header.get("background_counts", {}).items()
    }
    return background, _iter_citation_lines(handle)


def _iter_citation_lines(handle: TextIO) -> Iterator[Citation]:
    for line in handle:
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("kind") != _CITATION_KIND:
            raise ValueError("unexpected record kind %r" % record.get("kind"))
        yield Citation(
            pmid=record["pmid"],
            title=record["title"],
            abstract=record.get("abstract", ""),
            authors=tuple(record.get("authors", ())),
            year=record.get("year", 2008),
            mesh_annotations=tuple(record.get("mesh_annotations", ())),
            index_concepts=tuple(record.get("index_concepts", ())),
        )


def save_medline_jsonl(medline: MedlineDatabase, handle: TextIO) -> int:
    """Write the database as JSON lines; returns citations written.

    .. deprecated::
        Shim over :func:`write_citations_jsonl`, which streams from any
        iterable instead of requiring a materialized database.  Output is
        byte-identical.
    """
    warnings.warn(
        "save_medline_jsonl is deprecated; use write_citations_jsonl",
        DeprecationWarning,
        stacklevel=2,
    )
    return write_citations_jsonl(
        (medline.get(pmid) for pmid in medline.pmids()),
        handle,
        medline.background_counts(),
    )


def load_medline_jsonl(handle: TextIO) -> MedlineDatabase:
    """Rebuild a database written by :func:`save_medline_jsonl`.

    .. deprecated::
        Shim over :func:`read_citations_jsonl`, which yields citations
        lazily instead of materializing a database.

    Raises:
        ValueError: missing/invalid header, unsupported version, or an
            unknown record kind.
    """
    warnings.warn(
        "load_medline_jsonl is deprecated; use read_citations_jsonl",
        DeprecationWarning,
        stacklevel=2,
    )
    background, citations = read_citations_jsonl(handle)
    medline = MedlineDatabase(background_counts=background)
    for citation in citations:
        medline.add(citation)
    return medline
