"""JSONL persistence for the simulated MEDLINE database.

The BioNav database has JSON persistence (``BioNavDatabase.save``); the
corpus itself gets the same treatment here so a generated workload can be
frozen to disk and shared — one JSON object per citation (the JSONL
convention), plus a header object carrying the background LT counts.
"""

from __future__ import annotations

import json
from typing import TextIO

from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase

__all__ = ["save_medline_jsonl", "load_medline_jsonl"]

_HEADER_KIND = "medline-header"
_CITATION_KIND = "citation"
_FORMAT_VERSION = 1


def save_medline_jsonl(medline: MedlineDatabase, handle: TextIO) -> int:
    """Write the database as JSON lines; returns citations written.

    The first line is a header with the format version and the simulated
    background counts; each further line is one citation.
    """
    background = {
        str(concept): count for concept, count in medline.background_counts().items()
    }
    header = {
        "kind": _HEADER_KIND,
        "version": _FORMAT_VERSION,
        "background_counts": background,
    }
    handle.write(json.dumps(header) + "\n")
    written = 0
    for pmid in medline.pmids():
        citation = medline.get(pmid)
        record = {
            "kind": _CITATION_KIND,
            "pmid": citation.pmid,
            "title": citation.title,
            "abstract": citation.abstract,
            "authors": list(citation.authors),
            "year": citation.year,
            "mesh_annotations": list(citation.mesh_annotations),
            "index_concepts": list(citation.index_concepts),
        }
        handle.write(json.dumps(record) + "\n")
        written += 1
    return written


def load_medline_jsonl(handle: TextIO) -> MedlineDatabase:
    """Rebuild a database written by :func:`save_medline_jsonl`.

    Raises:
        ValueError: missing/invalid header, unsupported version, or an
            unknown record kind.
    """
    first = handle.readline()
    if not first.strip():
        raise ValueError("empty file: expected a medline-header line")
    header = json.loads(first)
    if header.get("kind") != _HEADER_KIND:
        raise ValueError("first line is not a medline-header record")
    if header.get("version") != _FORMAT_VERSION:
        raise ValueError("unsupported format version %r" % header.get("version"))
    background = {
        int(concept): count
        for concept, count in header.get("background_counts", {}).items()
    }
    medline = MedlineDatabase(background_counts=background)
    for line in handle:
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("kind") != _CITATION_KIND:
            raise ValueError("unexpected record kind %r" % record.get("kind"))
        medline.add(
            Citation(
                pmid=record["pmid"],
                title=record["title"],
                abstract=record.get("abstract", ""),
                authors=tuple(record.get("authors", ())),
                year=record.get("year", 2008),
                mesh_annotations=tuple(record.get("mesh_annotations", ())),
                index_concepts=tuple(record.get("index_concepts", ())),
            )
        )
    return medline
