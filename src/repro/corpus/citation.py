"""MEDLINE-like citation records.

A :class:`Citation` mirrors the fields BioNav's online phase consumes from
PubMed: the PMID, the title/abstract text the keyword index runs over, the
author list shown by ESummary, and the list of associated MeSH concepts
(node ids into the active :class:`~repro.hierarchy.concept.ConceptHierarchy`).

Per the paper (§VII), PubMed's own indexing associates each citation with
~90 concepts on average, of which ~20 are the explicit MEDLINE annotations.
We keep the two sets separate so either association mode can drive the
navigation tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Citation", "DocSummary"]


@dataclass(frozen=True)
class Citation:
    """One biomedical citation.

    Attributes:
        pmid: PubMed identifier (positive integer).
        title: citation title.
        abstract: abstract text.
        authors: author display names.
        year: publication year.
        mesh_annotations: concepts explicitly annotated in MEDLINE
            (paper: ~20 per citation).
        index_concepts: the wider PubMed-index association set
            (paper: ~90 per citation, a superset of the annotations).
    """

    pmid: int
    title: str
    abstract: str = ""
    authors: Tuple[str, ...] = ()
    year: int = 2008
    mesh_annotations: Tuple[int, ...] = ()
    index_concepts: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.pmid <= 0:
            raise ValueError("pmid must be positive, got %r" % (self.pmid,))
        missing = set(self.mesh_annotations) - set(self.index_concepts)
        if missing:
            # The PubMed index includes the MEDLINE annotations; repair by
            # requiring callers to pass a superset rather than silently
            # merging, so corpus bugs surface early.
            raise ValueError(
                "index_concepts must include all mesh_annotations; missing %r"
                % sorted(missing)
            )

    @property
    def concepts(self) -> Tuple[int, ...]:
        """The association set used to build navigation trees.

        The paper uses the wide PubMed-index associations because the
        MEDLINE-only annotations yield uninformative trees (§VII).
        """
        return self.index_concepts

    def searchable_text(self) -> str:
        """Text surface the keyword index runs over."""
        return "%s %s" % (self.title, self.abstract)


@dataclass(frozen=True)
class DocSummary:
    """The lightweight record ESummary returns for SHOWRESULTS (paper §VII)."""

    pmid: int
    title: str
    authors: Tuple[str, ...] = ()
    year: int = 2008

    @classmethod
    def from_citation(cls, citation: Citation) -> "DocSummary":
        """Project a full citation down to its display summary."""
        return cls(
            pmid=citation.pmid,
            title=citation.title,
            authors=citation.authors,
            year=citation.year,
        )
