"""Corpus realism statistics.

The substitution argument in DESIGN.md §4 rests on the synthetic corpus
reproducing the association properties of real PubMed indexing: many
concepts per citation, heavy skew in concept frequency, and local
clustering of a citation's concepts in the hierarchy.  This module
computes those statistics so workload tests can verify them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.corpus.citation import Citation
from repro.hierarchy.concept import ConceptHierarchy

__all__ = ["CorpusStats", "corpus_stats", "concept_frequency_gini"]


@dataclass(frozen=True)
class CorpusStats:
    """Association statistics for a set of citations.

    Attributes:
        n_citations: number of citations examined.
        mean_concepts: mean associations per citation (PubMed: ~90 over
            the full MeSH; scaled with the hierarchy here).
        mean_annotations: mean explicit MEDLINE annotations (~20 real).
        distinct_concepts: distinct concepts touched by the set.
        frequency_gini: Gini coefficient of the concept-frequency
            distribution (1 = all mass on one concept, 0 = uniform);
            real MEDLINE concept usage is strongly skewed.
        locality: mean fraction of a citation's concept pairs that are
            ancestor/descendant-related — the clustering real MeSH
            indexing shows and independent sampling would not.
    """

    n_citations: int
    mean_concepts: float
    mean_annotations: float
    distinct_concepts: int
    frequency_gini: float
    locality: float


def concept_frequency_gini(frequencies: Iterable[int]) -> float:
    """Gini coefficient of a frequency distribution (0 uniform → 1 skewed)."""
    values = sorted(f for f in frequencies if f > 0)
    n = len(values)
    if n == 0:
        return 0.0
    total = sum(values)
    if total == 0:
        return 0.0
    cumulative = 0.0
    weighted = 0.0
    for rank, value in enumerate(values, start=1):
        weighted += rank * value
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def corpus_stats(
    citations: List[Citation],
    hierarchy: ConceptHierarchy,
    locality_sample: int = 200,
) -> CorpusStats:
    """Compute association statistics for a citation set.

    ``locality`` samples at most ``locality_sample`` citations to keep the
    pairwise ancestry checks cheap.
    """
    if not citations:
        return CorpusStats(0, 0.0, 0.0, 0, 0.0, 0.0)
    frequencies: Dict[int, int] = {}
    total_concepts = 0
    total_annotations = 0
    for citation in citations:
        total_concepts += len(citation.index_concepts)
        total_annotations += len(citation.mesh_annotations)
        for concept in set(citation.index_concepts):
            frequencies[concept] = frequencies.get(concept, 0) + 1

    step = max(1, len(citations) // locality_sample)
    related = 0
    pairs = 0
    for citation in citations[::step]:
        concepts = list(set(citation.index_concepts))
        for i, a in enumerate(concepts):
            for b in concepts[i + 1 :]:
                pairs += 1
                if hierarchy.is_ancestor(a, b) or hierarchy.is_ancestor(b, a):
                    related += 1
    return CorpusStats(
        n_citations=len(citations),
        mean_concepts=total_concepts / len(citations),
        mean_annotations=total_annotations / len(citations),
        distinct_concepts=len(frequencies),
        frequency_gini=concept_frequency_gini(frequencies.values()),
        locality=(related / pairs) if pairs else 0.0,
    )
