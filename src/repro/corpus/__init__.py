"""Simulated MEDLINE corpus: citations, database, generators, file formats."""

from repro.corpus.citation import Citation, DocSummary
from repro.corpus.generator import CorpusGenerator, TopicSpec
from repro.corpus.loader import (
    citations_from_records,
    dump_medline_text,
    load_medline_text,
    parse_medline_text,
    stream_medline_records,
    stream_medline_text,
)
from repro.corpus.medline import MedlineDatabase
from repro.corpus.persistence import (
    load_medline_jsonl,
    read_citations_jsonl,
    save_medline_jsonl,
    write_citations_jsonl,
)
from repro.corpus.validation import CorpusStats, concept_frequency_gini, corpus_stats

__all__ = [
    "Citation",
    "CorpusGenerator",
    "CorpusStats",
    "DocSummary",
    "MedlineDatabase",
    "TopicSpec",
    "citations_from_records",
    "concept_frequency_gini",
    "corpus_stats",
    "load_medline_jsonl",
    "dump_medline_text",
    "load_medline_text",
    "parse_medline_text",
    "read_citations_jsonl",
    "save_medline_jsonl",
    "stream_medline_records",
    "stream_medline_text",
    "write_citations_jsonl",
]
