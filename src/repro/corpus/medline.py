"""The simulated MEDLINE database.

:class:`MedlineDatabase` plays the role MEDLINE/PubMed plays for BioNav: it
stores citations and answers two questions the system needs —

* which citations match a keyword query (delegated to the search engine via
  the simulated eutils client), and
* how many citations MEDLINE associates with each concept overall, the
  ``LT(n)`` quantity the EXPLORE probability divides by (paper §IV).

Because materializing 18M background citations is pointless for the
algorithms, ``LT(n)`` combines the counts contributed by the materialized
corpus with an optional *background count* per concept supplied by the
corpus generator (simulating the mass of MEDLINE outside the query topics).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.corpus.citation import Citation

__all__ = ["MedlineDatabase"]


class MedlineDatabase:
    """In-memory store of citations plus MEDLINE-wide concept counts."""

    def __init__(self, background_counts: Optional[Dict[int, int]] = None):
        self._citations: Dict[int, Citation] = {}
        self._concept_counts: Dict[int, int] = {}
        self._background: Dict[int, int] = dict(background_counts or {})

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def add(self, citation: Citation) -> None:
        """Insert one citation; PMIDs must be unique."""
        if citation.pmid in self._citations:
            raise ValueError("duplicate pmid %d" % citation.pmid)
        self._citations[citation.pmid] = citation
        for concept in set(citation.concepts):
            self._concept_counts[concept] = self._concept_counts.get(concept, 0) + 1

    def add_all(self, citations: Iterable[Citation]) -> None:
        """Insert many citations (PMIDs must be unique)."""
        for citation in citations:
            self.add(citation)

    def set_background_count(self, concept: int, count: int) -> None:
        """Set the simulated out-of-corpus MEDLINE count for a concept."""
        if count < 0:
            raise ValueError("background count must be non-negative")
        self._background[concept] = count

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._citations)

    def __contains__(self, pmid: int) -> bool:
        return pmid in self._citations

    def get(self, pmid: int) -> Citation:
        """Fetch one citation; raises KeyError for unknown PMIDs."""
        return self._citations[pmid]

    def get_many(self, pmids: Sequence[int]) -> List[Citation]:
        """Fetch several citations, preserving the requested order."""
        return [self._citations[pmid] for pmid in pmids]

    def iter_citations(self) -> Iterator[Citation]:
        """Iterate over all stored citations."""
        return iter(self._citations.values())

    def pmids(self) -> List[int]:
        """All stored PMIDs, ascending."""
        return sorted(self._citations)

    def background_counts(self) -> Dict[int, int]:
        """Copy of the simulated out-of-corpus counts (for persistence)."""
        return dict(self._background)

    def medline_count(self, concept: int) -> int:
        """``LT(n)``: total MEDLINE citations associated with ``concept``.

        Sum of materialized-corpus occurrences and the simulated background.
        """
        return self._concept_counts.get(concept, 0) + self._background.get(concept, 0)

    def corpus_count(self, concept: int) -> int:
        """Citations in the materialized corpus associated with ``concept``."""
        return self._concept_counts.get(concept, 0)

    def concepts_of(self, pmid: int) -> Sequence[int]:
        """Association set of one citation (KeyError when absent)."""
        return self._citations[pmid].concepts
