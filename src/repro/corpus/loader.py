"""Parser/writer for the MEDLINE text (``.nbib``) citation format.

PubMed exports citations in a line-oriented tagged format::

    PMID- 17284678
    TI  - Prothymosin alpha and cell proliferation.
    AB  - We report that prothymosin alpha regulates
          chromatin remodelling in proliferating cells.
    AU  - Smith A
    AU  - Chen B
    DP  - 2007 Feb
    MH  - Apoptosis
    MH  - *Cell Proliferation

Continuation lines are indented with six spaces.  This module parses that
format into :class:`~repro.corpus.citation.Citation` records (resolving
``MH`` headings against a concept hierarchy) and writes it back, so the
reproduction can ingest real PubMed exports and emit its synthetic corpora
in a form standard MEDLINE tooling understands.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, TextIO

from repro.corpus.citation import Citation
from repro.hierarchy.concept import ConceptHierarchy

__all__ = [
    "parse_medline_text",
    "stream_medline_records",
    "stream_medline_text",
    "citations_from_records",
    "load_medline_text",
    "dump_medline_text",
]

_TAG_RE = re.compile(r"^([A-Z][A-Z0-9]{1,3})\s*- (.*)$")
_CONTINUATION_PREFIX = "      "


def stream_medline_records(lines: Iterable[str]) -> Iterator[Dict[str, List[str]]]:
    """Lazily parse MEDLINE text into raw records (tag → list of values).

    Records are separated by blank lines; continuation lines (six leading
    spaces) are folded into the preceding value with a single space.  One
    record is held in memory at a time, so an export of any size streams —
    this is the parse path the substrate builder chunks from.
    """
    current: Optional[Dict[str, List[str]]] = None
    last_tag: Optional[str] = None
    for raw_line in lines:
        line = raw_line.rstrip("\n")
        if not line.strip():
            if current:
                yield current
            current = None
            last_tag = None
            continue
        if line.startswith(_CONTINUATION_PREFIX) and current is not None and last_tag:
            current[last_tag][-1] += " " + line.strip()
            continue
        match = _TAG_RE.match(line)
        if not match:
            raise ValueError("cannot parse MEDLINE line: %r" % line)
        tag, value = match.groups()
        if current is None:
            current = {}
        current.setdefault(tag, []).append(value)
        last_tag = tag
    if current:
        yield current


def parse_medline_text(lines: Iterable[str]) -> List[Dict[str, List[str]]]:
    """Parse MEDLINE text into a list of raw records (eager form).

    Thin materialization of :func:`stream_medline_records`, kept for
    toy-scale callers that want the whole export at once.
    """
    return list(stream_medline_records(lines))


def _citation_from_record(
    record: Dict[str, List[str]],
    hierarchy: Optional[ConceptHierarchy],
    strict: bool,
) -> Citation:
    """Convert one raw MEDLINE record to a :class:`Citation`."""
    pmids = record.get("PMID")
    titles = record.get("TI")
    if not pmids:
        raise ValueError("MEDLINE record missing PMID")
    if not titles:
        raise ValueError("MEDLINE record %s missing TI" % pmids[0])
    concepts: List[int] = []
    for heading in record.get("MH", ()):
        normalized = heading.lstrip("*").split("/")[0].strip()
        if hierarchy is None:
            continue
        try:
            concepts.append(hierarchy.by_label(normalized))
        except KeyError:
            if strict:
                raise ValueError("unknown MeSH heading %r" % normalized)
    year = _parse_year(record.get("DP", [""])[0])
    annotations = tuple(sorted(set(concepts)))
    return Citation(
        pmid=int(pmids[0]),
        title=titles[0],
        abstract=record.get("AB", [""])[0],
        authors=tuple(record.get("AU", ())),
        year=year,
        mesh_annotations=annotations,
        index_concepts=annotations,
    )


def citations_from_records(
    records: Iterable[Dict[str, List[str]]],
    hierarchy: Optional[ConceptHierarchy] = None,
    strict: bool = False,
) -> List[Citation]:
    """Convert raw MEDLINE records to :class:`Citation` objects.

    ``MH`` headings are resolved against ``hierarchy`` (major-topic ``*``
    markers and ``/qualifier`` suffixes are stripped first); unresolvable
    headings are skipped unless ``strict``.

    Raises:
        ValueError: records missing PMID or TI; in strict mode also on
            unresolvable MeSH headings.
    """
    return [_citation_from_record(r, hierarchy, strict) for r in records]


def stream_medline_text(
    handle: TextIO,
    hierarchy: Optional[ConceptHierarchy] = None,
    strict: bool = False,
) -> Iterator[Citation]:
    """Lazily parse an open MEDLINE export into citations.

    Constant memory: one citation lives at a time.  Feed this to
    :func:`repro.substrate.builder.citation_chunks` to build a substrate
    directory from a real export without materializing the corpus.
    """
    for record in stream_medline_records(handle):
        yield _citation_from_record(record, hierarchy, strict)


def load_medline_text(
    handle: TextIO,
    hierarchy: Optional[ConceptHierarchy] = None,
    strict: bool = False,
) -> List[Citation]:
    """Parse an open MEDLINE text export into citations (eager form)."""
    return list(stream_medline_text(handle, hierarchy, strict))


def dump_medline_text(
    citations: Iterable[Citation],
    handle: TextIO,
    hierarchy: Optional[ConceptHierarchy] = None,
    wrap: int = 80,
) -> int:
    """Write citations in MEDLINE text format; returns records written.

    MeSH annotations are written as ``MH`` headings when a hierarchy is
    available to resolve labels.
    """
    written = 0
    for citation in citations:
        handle.write("PMID- %d\n" % citation.pmid)
        _write_wrapped(handle, "TI", citation.title, wrap)
        if citation.abstract:
            _write_wrapped(handle, "AB", citation.abstract, wrap)
        for author in citation.authors:
            handle.write("AU  - %s\n" % author)
        handle.write("DP  - %d\n" % citation.year)
        if hierarchy is not None:
            for concept in citation.mesh_annotations:
                handle.write("MH  - %s\n" % hierarchy.label(concept))
        handle.write("\n")
        written += 1
    return written


# ---------------------------------------------------------------------------
def _parse_year(date_text: str) -> int:
    match = re.search(r"\b(1[89]\d\d|20\d\d)\b", date_text)
    return int(match.group(1)) if match else 1900


def _write_wrapped(handle: TextIO, tag: str, text: str, wrap: int) -> None:
    prefix = "%-4s- " % tag
    words = text.split()
    if not words:
        handle.write(prefix + "\n")
        return
    line = prefix + words[0]
    for word in words[1:]:
        if len(line) + 1 + len(word) > wrap:
            handle.write(line + "\n")
            line = _CONTINUATION_PREFIX + word
        else:
            line += " " + word
    handle.write(line + "\n")
