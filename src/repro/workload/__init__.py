"""The Table I query workload and its materialization."""

from repro.workload.builder import BuiltQuery, PreparedQuery, Workload, build_workload
from repro.workload.queries import TABLE_I_QUERIES, WorkloadQuery, query_by_keyword
from repro.workload.report import QueryReport, generate_report, run_comparison
from repro.workload.scenarios import (
    SCENARIOS,
    build_scenario,
    paper_scale_hierarchy,
    scenario_names,
)

__all__ = [
    "BuiltQuery",
    "PreparedQuery",
    "QueryReport",
    "SCENARIOS",
    "TABLE_I_QUERIES",
    "Workload",
    "WorkloadQuery",
    "build_scenario",
    "build_workload",
    "generate_report",
    "paper_scale_hierarchy",
    "query_by_keyword",
    "run_comparison",
    "scenario_names",
]
