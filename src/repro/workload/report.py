"""One-shot experiment report generation.

:func:`generate_report` runs the paper's core evaluation (Table I
statistics plus the Fig. 8/9/10 comparisons) on a materialized workload
and renders a self-contained Markdown report with measured tables and
ASCII figures — the programmatic path to regenerating the measured
sections of EXPERIMENTS.md, also exposed as ``bionav report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.simulator import NavigationOutcome, navigate_to_target
from repro.viz.figures import grouped_bar_chart
from repro.workload.builder import PreparedQuery, Workload

__all__ = ["QueryReport", "generate_report", "run_comparison"]


@dataclass(frozen=True)
class QueryReport:
    """All measured numbers for one workload query."""

    keyword: str
    citations: int
    tree_size: int
    tree_width: int
    tree_height: int
    with_duplicates: int
    target_level: int
    target_l: int
    target_lt: int
    static: NavigationOutcome
    bionav: NavigationOutcome

    @property
    def improvement(self) -> float:
        """Relative cost reduction of BioNav vs static (Fig. 8)."""
        if self.static.navigation_cost <= 0:
            return 0.0
        return 1.0 - self.bionav.navigation_cost / self.static.navigation_cost


def run_comparison(workload: Workload, prepared: PreparedQuery) -> QueryReport:
    """Measure one query end to end (both strategies, registry-built)."""
    static = navigate_to_target(
        prepared.tree,
        workload.strategy(prepared, "static_nav"),
        prepared.target_node,
        show_results=False,
    )
    bionav = navigate_to_target(
        prepared.tree,
        workload.strategy(prepared, "heuristic"),
        prepared.target_node,
        show_results=False,
    )
    tree = prepared.tree
    return QueryReport(
        keyword=prepared.spec.keyword,
        citations=len(prepared.pmids),
        tree_size=tree.size(),
        tree_width=tree.max_width(),
        tree_height=tree.height(),
        with_duplicates=tree.citations_with_duplicates(),
        target_level=workload.hierarchy.depth(prepared.target_node),
        target_l=len(tree.results(prepared.target_node)),
        target_lt=workload.database.medline_count(prepared.target_node),
        static=static,
        bionav=bionav,
    )


def generate_report(workload: Workload, title: str = "BioNav experiment report") -> str:
    """Run the core evaluation and render a Markdown report."""
    reports = [
        run_comparison(workload, workload.prepare(built.spec.keyword))
        for built in workload.queries
    ]
    lines: List[str] = ["# %s" % title, ""]

    # --- Table I ------------------------------------------------------
    lines += [
        "## Table I — workload statistics",
        "",
        "| keyword | cites | tree | width | height | w/dups | lvl | L(t) | LT(t) |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for r in reports:
        lines.append(
            "| %s | %d | %d | %d | %d | %d | %d | %d | %d |"
            % (
                r.keyword,
                r.citations,
                r.tree_size,
                r.tree_width,
                r.tree_height,
                r.with_duplicates,
                r.target_level,
                r.target_l,
                r.target_lt,
            )
        )
    lines.append("")

    # --- Figure 8 -----------------------------------------------------
    lines += [
        "## Figure 8 — navigation cost (static vs BioNav)",
        "",
        "| keyword | static | bionav | improvement |",
        "|---|---|---|---|",
    ]
    for r in reports:
        lines.append(
            "| %s | %.0f | %.0f | %.0f%% |"
            % (r.keyword, r.static.navigation_cost, r.bionav.navigation_cost, 100 * r.improvement)
        )
    average = sum(r.improvement for r in reports) / len(reports)
    from repro.analysis.significance import summarize_improvements

    summary = summarize_improvements(
        [r.static.navigation_cost for r in reports],
        [r.bionav.navigation_cost for r in reports],
        n_resamples=2000,
    )
    lines += [
        "| **average** | | | **%.0f%%** |" % (100 * average),
        "",
        "Mean improvement %.0f%% (95%% bootstrap CI [%.0f%%, %.0f%%]; "
        "Wilcoxon p = %.4f; sign-test p = %.4f over %d queries)."
        % (
            100 * summary.mean_improvement,
            100 * summary.ci_low,
            100 * summary.ci_high,
            summary.wilcoxon_p,
            summary.sign_p,
            summary.n_pairs,
        ),
        "",
        "```",
        grouped_bar_chart(
            {
                r.keyword: {
                    "static": r.static.navigation_cost,
                    "bionav": r.bionav.navigation_cost,
                }
                for r in reports
            }
        ),
        "```",
        "",
    ]

    # --- Figure 9 -----------------------------------------------------
    lines += [
        "## Figure 9 — EXPAND actions",
        "",
        "| keyword | static | bionav |",
        "|---|---|---|",
    ]
    for r in reports:
        lines.append(
            "| %s | %d | %d |" % (r.keyword, r.static.expand_actions, r.bionav.expand_actions)
        )
    lines.append("")

    # --- Figure 10 ----------------------------------------------------
    lines += [
        "## Figure 10 — Heuristic-ReducedOpt time per EXPAND",
        "",
        "| keyword | expands | avg ms | avg reduced size |",
        "|---|---|---|---|",
    ]
    for r in reports:
        expands = r.bionav.expands
        avg_reduced = (
            sum(e.reduced_size for e in expands) / len(expands) if expands else 0.0
        )
        lines.append(
            "| %s | %d | %.2f | %.1f |"
            % (
                r.keyword,
                len(expands),
                r.bionav.average_expand_seconds * 1000,
                avg_reduced,
            )
        )
    lines += [
        "",
        "_Generated by `repro.workload.report` on a simulated substrate; see_",
        "_DESIGN.md for the substitutions relative to the paper's testbed._",
        "",
    ]
    return "\n".join(lines)
