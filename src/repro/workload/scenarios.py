"""Stress-scenario workloads beyond the Table I defaults.

The Table I workload pins one corpus regime; the paper's claims should
survive others.  Each scenario here materializes a single-query workload
in a deliberately skewed regime:

* ``deep_hierarchy`` — a narrow, deep MeSH (targets 7+ levels down), the
  regime where static navigation needs many EXPANDs;
* ``high_duplication`` — annotations smeared over many concepts per
  citation (the §V worst case for cut selection);
* ``low_selectivity`` — an ice-nucleation-style target with minimal
  L(n), the paper's hardest EXPLORE-probability case;
* ``tiny_result`` — a result set below the EXPAND threshold, where
  navigation should barely expand at all.

``benchmarks/bench_scenarios.py`` runs the BioNav-vs-static comparison in
every regime.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.hierarchy.concept import ConceptHierarchy
from repro.hierarchy.generator import (
    HierarchyGenerator,
    HierarchyShape,
    mesh_2008_hierarchy,
)
from repro.workload.builder import Workload, build_workload
from repro.workload.queries import WorkloadQuery

__all__ = ["SCENARIOS", "build_scenario", "paper_scale_hierarchy", "scenario_names"]


def paper_scale_hierarchy() -> ConceptHierarchy:
    """The deterministic ~48k-concept MeSH-2008-shaped hierarchy.

    The paper-scale regime the substrate benchmarks build against
    (``benchmarks/bench_substrate.py``); same seed → identical hierarchy,
    so substrate manifests built over it are reproducible.  Too large for
    the in-memory scenario workloads above — pair it with
    :mod:`repro.substrate` instead of :func:`build_workload`.

    Delegates to :func:`~repro.hierarchy.generator.mesh_2008_hierarchy`
    and inherits its cache-identity contract: repeated calls return the
    same (treat-as-immutable) object, not a fresh copy.
    """
    return mesh_2008_hierarchy()


def _deep_hierarchy() -> Workload:
    # Narrow, deep tree: targets sit 6-8 levels down.
    shape = HierarchyShape.deep(target_size=1800)
    hierarchy = HierarchyGenerator(shape, seed=41).generate()
    query = WorkloadQuery(
        keyword="deep scenario",
        n_citations=220,
        target_label="Deep Scenario Target",
        target_depth=min(8, hierarchy.height()),
        n_topics=3,
        target_share=0.35,
        seed=411,
    )
    return _build_with_hierarchy(hierarchy, query)


def _high_duplication() -> Workload:
    query = WorkloadQuery(
        keyword="duplication scenario",
        n_citations=260,
        target_label="Duplication Scenario Target",
        target_depth=4,
        n_topics=6,
        target_share=0.30,
        seed=421,
    )
    # More index concepts per citation → heavier duplication.
    return build_workload(
        hierarchy_size=1500,
        seed=42,
        queries=[query],
        background_citations=40,
    )


def _low_selectivity() -> Workload:
    query = WorkloadQuery(
        keyword="rare target scenario",
        n_citations=240,
        target_label="Rare Scenario Target",
        target_depth=3,
        n_topics=4,
        target_share=0.01,
        seed=431,
    )
    return build_workload(
        hierarchy_size=1500, seed=43, queries=[query], background_citations=40
    )


def _tiny_result() -> Workload:
    query = WorkloadQuery(
        keyword="tiny scenario",
        n_citations=20,
        target_label="Tiny Scenario Target",
        target_depth=3,
        n_topics=2,
        target_share=0.5,
        seed=441,
    )
    return build_workload(
        hierarchy_size=1200, seed=44, queries=[query], background_citations=40
    )


def _build_with_hierarchy(hierarchy, query: WorkloadQuery) -> Workload:
    """Materialize one query over a pre-built hierarchy."""
    import random

    from repro.corpus.generator import CorpusGenerator, TopicSpec
    from repro.corpus.medline import MedlineDatabase
    from repro.eutils.client import EntrezClient
    from repro.storage.database import BioNavDatabase
    from repro.workload.builder import BuiltQuery, _build_anchors, _ensure_target_coverage, _pick_target

    generator = CorpusGenerator(hierarchy, seed=query.seed)
    medline = MedlineDatabase(background_counts=generator.background_counts(scale=50_000))
    rng = random.Random(query.seed)
    target = _pick_target(hierarchy, rng, query.target_depth, set())
    hierarchy.relabel(target, query.target_label)
    anchors = _build_anchors(hierarchy, rng, query, target)
    citations = generator.generate_topic(
        TopicSpec(keyword=query.keyword, n_citations=query.n_citations, anchors=anchors)
    )
    citations = _ensure_target_coverage(citations, target, min_count=2, rng=rng)
    medline.add_all(citations)
    medline.add_all(generator.generate_background(40))
    database = BioNavDatabase.build(hierarchy, medline)
    return Workload(
        hierarchy,
        medline,
        database,
        EntrezClient(medline),
        [BuiltQuery(spec=query, target_node=target, anchors=anchors)],
    )


SCENARIOS: Dict[str, Callable[[], Workload]] = {
    "deep_hierarchy": _deep_hierarchy,
    "high_duplication": _high_duplication,
    "low_selectivity": _low_selectivity,
    "tiny_result": _tiny_result,
}


def scenario_names() -> List[str]:
    """The available stress-scenario names."""
    return sorted(SCENARIOS)


def build_scenario(name: str) -> Workload:
    """Materialize one named scenario workload.

    Raises:
        KeyError: unknown scenario name.
    """
    return SCENARIOS[name]()
