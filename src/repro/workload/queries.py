"""The Table I query workload.

Ten real PubMed queries chosen by the paper's biomedical collaborators,
each with a designated *target concept* the simulated user navigates to.
Citation counts for ``prothymosin`` (313) and ``vardenafil`` (486) are
stated in the paper's prose and honored exactly; the remaining counts are
plausible values in the paper's range (the source table is OCR-garbled —
see DESIGN.md §4).  Topic breadth encodes the paper's observation that
e.g. prothymosin correlates with many research fields while vardenafil is
narrowly targeted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["WorkloadQuery", "TABLE_I_QUERIES", "query_by_keyword"]


@dataclass(frozen=True)
class WorkloadQuery:
    """One Table I row (inputs only; tree statistics are measured).

    Attributes:
        keyword: the PubMed query string.
        n_citations: number of citations in the query result.
        target_label: the target MeSH concept's name (paper Table I).
        target_depth: MeSH level of the target concept (root = 0).
        n_topics: number of distinct research-field anchors the result
            spreads over (breadth of the literature).
        target_share: fraction of the result citations attached at or
            below the target's branch — controls L(n) of the target and
            hence its EXPLORE probability.  The paper's hardest case
            ("ice nucleation" → Plants, Genetically Modified) has very low
            selectivity; easy cases are high.
        seed: per-query RNG stream.
    """

    keyword: str
    n_citations: int
    target_label: str
    target_depth: int
    n_topics: int
    target_share: float
    seed: int

    def __post_init__(self) -> None:
        if self.n_citations <= 0:
            raise ValueError("n_citations must be positive")
        if not 2 <= self.target_depth <= 10:
            raise ValueError("target_depth must be between 2 and 10")
        if self.n_topics < 1:
            raise ValueError("n_topics must be at least 1")
        if not 0.0 < self.target_share <= 1.0:
            raise ValueError("target_share must be in (0, 1]")


# The ten Table I queries.  Target labels are the paper's; depths follow
# the real MeSH placement (shallow for Mice/Plants organisms, deeper for
# specific proteins).
TABLE_I_QUERIES: List[WorkloadQuery] = [
    WorkloadQuery(
        keyword="LbetaT2",
        n_citations=152,
        target_label="Mice, Transgenic",
        target_depth=3,
        n_topics=3,
        target_share=0.45,
        seed=101,
    ),
    WorkloadQuery(
        keyword="melibiose permease",
        n_citations=155,
        target_label="Substrate Specificity",
        target_depth=3,
        n_topics=3,
        target_share=0.40,
        seed=102,
    ),
    WorkloadQuery(
        keyword="varenicline",
        n_citations=161,
        target_label="Nicotinic Agonists",
        target_depth=4,
        n_topics=2,
        target_share=0.50,
        seed=103,
    ),
    WorkloadQuery(
        keyword="Na+/I- symporter",
        n_citations=181,
        target_label="Perchloric Acid",
        target_depth=4,
        n_topics=3,
        target_share=0.25,
        seed=104,
    ),
    WorkloadQuery(
        keyword="prothymosin",
        n_citations=313,  # stated in the paper's prose
        target_label="Histones",
        target_depth=4,
        n_topics=6,
        target_share=0.30,
        seed=105,
    ),
    WorkloadQuery(
        keyword="ice nucleation",
        n_citations=264,
        target_label="Plants, Genetically Modified",
        target_depth=2,
        n_topics=4,
        # The paper's worst case: the target has extremely low selectivity
        # (L(n) = 2 out of 264), so BioNav needs many EXPANDs to reveal it.
        target_share=0.02,
        seed=106,
    ),
    WorkloadQuery(
        keyword="vardenafil",
        n_citations=486,  # stated in the paper's prose
        target_label="Phosphodiesterase Inhibitors",
        target_depth=3,
        n_topics=2,
        target_share=0.55,
        seed=107,
    ),
    WorkloadQuery(
        keyword="dyslexia genetics",
        n_citations=233,
        target_label="Polymorphism, Single Nucleotide",
        target_depth=3,
        n_topics=4,
        target_share=0.35,
        seed=108,
    ),
    WorkloadQuery(
        keyword="syntaxin 1A",
        n_citations=172,
        target_label="GABA Plasma Membrane Transport Proteins",
        target_depth=5,
        n_topics=3,
        target_share=0.35,
        seed=109,
    ),
    WorkloadQuery(
        keyword="follistatin",
        n_citations=487,
        target_label="Follicle Stimulating Hormone",
        target_depth=4,
        n_topics=3,
        target_share=0.45,
        seed=110,
    ),
]


def query_by_keyword(keyword: str) -> WorkloadQuery:
    """Look up a Table I query; raises KeyError when absent."""
    for query in TABLE_I_QUERIES:
        if query.keyword == keyword:
            return query
    raise KeyError("no workload query with keyword %r" % keyword)
