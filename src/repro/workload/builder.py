"""Workload materialization: hierarchy + corpus + database for Table I.

:func:`build_workload` turns the declarative Table I specs into a fully
operational BioNav deployment: a synthetic MeSH-like hierarchy with the
paper's target concepts grafted in, a topic-clustered citation corpus in
which each keyword retrieves exactly its query result, the off-line BioNav
database, and a simulated Entrez client.  :meth:`Workload.prepare` then
runs the online phase for one query and hands back everything the
experiments need (navigation tree, probability model, target node).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.corpus.citation import Citation
from repro.corpus.generator import CorpusGenerator, TopicSpec
from repro.corpus.medline import MedlineDatabase
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.core.strategy import ExpansionStrategy
from repro.eutils.client import EntrezClient
from repro.hierarchy.concept import ConceptHierarchy
from repro.hierarchy.generator import generate_hierarchy
from repro.pipeline.artifacts import ActiveTreeArtifact
from repro.pipeline.pipeline import NavigationPipeline
from repro.storage.database import BioNavDatabase
from repro.workload.queries import TABLE_I_QUERIES, WorkloadQuery

__all__ = ["BuiltQuery", "PreparedQuery", "Workload", "build_workload"]


@dataclass(frozen=True)
class BuiltQuery:
    """One workload query after corpus materialization."""

    spec: WorkloadQuery
    target_node: int
    anchors: Tuple[Tuple[int, float], ...]


@dataclass(frozen=True)
class PreparedQuery:
    """Everything the online phase produces for one query."""

    spec: WorkloadQuery
    target_node: int
    pmids: Tuple[int, ...]
    tree: NavigationTree
    probs: ProbabilityModel


class Workload:
    """A materialized Table I deployment."""

    def __init__(
        self,
        hierarchy: ConceptHierarchy,
        medline: MedlineDatabase,
        database: BioNavDatabase,
        entrez: EntrezClient,
        queries: Sequence[BuiltQuery],
    ):
        self.hierarchy = hierarchy
        self.medline = medline
        self.database = database
        self.entrez = entrez
        self.queries = list(queries)
        self.pipeline = NavigationPipeline(database, entrez)

    def built_query(self, keyword: str) -> BuiltQuery:
        """The materialized query for ``keyword`` (KeyError if absent)."""
        for built in self.queries:
            if built.spec.keyword == keyword:
                return built
        raise KeyError("no built query with keyword %r" % keyword)

    def prepare(self, keyword: str) -> PreparedQuery:
        """Run the online phase: ESearch → navigation tree → probabilities.

        Both stages run through :attr:`pipeline`, so repeated
        preparations of one keyword (common in the experiment drivers)
        share the cached result set and navigation tree.
        """
        built = self.built_query(keyword)
        results = self.pipeline.results(keyword)
        nav = self.pipeline.nav_tree(keyword)
        return PreparedQuery(
            spec=built.spec,
            target_node=built.target_node,
            pmids=results.pmids,
            tree=nav.tree,
            probs=nav.probs,
        )

    def prepare_all(self) -> List[PreparedQuery]:
        """Run the online phase for every workload query."""
        return [self.prepare(built.spec.keyword) for built in self.queries]

    def strategy(
        self, prepared: PreparedQuery, name: str, **options: object
    ) -> ExpansionStrategy:
        """A registry-built strategy for one prepared query's tree.

        The pipeline wraps it so EXPANDs route through the cut-stage
        cache; pass solver options (``max_reduced_nodes``, ``top_k``,
        ``page_size``, …) through ``options``.
        """
        nav = self.pipeline.nav_tree(prepared.spec.keyword)
        return self.pipeline.strategy(nav, name, **options)

    def open_session(
        self, keyword: str, solver: str = "heuristic", **options: object
    ) -> ActiveTreeArtifact:
        """Stages 1–4 for one workload keyword (a live session)."""
        return self.pipeline.open_session(keyword, solver=solver, **options)


def build_workload(
    hierarchy_size: int = 4000,
    seed: int = 7,
    queries: Optional[Sequence[WorkloadQuery]] = None,
    background_citations: int = 200,
    background_count_scale: int = 50_000,
) -> Workload:
    """Materialize the workload end to end.

    Args:
        hierarchy_size: synthetic hierarchy size (the real MeSH has ~48k
            concepts; 4k keeps the full pipeline laptop-fast while
            preserving the bushy-top shape — scale up freely).
        seed: master RNG seed.
        queries: Table I specs by default.
        background_citations: keyword-free filler citations.
        background_count_scale: MEDLINE-wide count of the largest concept.
    """
    specs = list(queries) if queries is not None else list(TABLE_I_QUERIES)
    hierarchy = generate_hierarchy(hierarchy_size, seed=seed)
    corpus_gen = CorpusGenerator(hierarchy, seed=seed)
    medline = MedlineDatabase(
        background_counts=corpus_gen.background_counts(scale=background_count_scale)
    )

    used_targets: set = set()
    built_queries: List[BuiltQuery] = []
    for spec in specs:
        rng = random.Random(spec.seed * 7919 + seed)
        target = _pick_target(hierarchy, rng, spec.target_depth, used_targets)
        used_targets.add(target)
        hierarchy.relabel(target, spec.target_label)
        anchors = _build_anchors(hierarchy, rng, spec, target)
        topic = TopicSpec(
            keyword=spec.keyword,
            n_citations=spec.n_citations,
            anchors=anchors,
        )
        citations = corpus_gen.generate_topic(topic)
        citations = _ensure_target_coverage(
            citations, target, min_count=2, rng=rng
        )
        medline.add_all(citations)
        built_queries.append(
            BuiltQuery(spec=spec, target_node=target, anchors=anchors)
        )

    medline.add_all(corpus_gen.generate_background(background_citations))
    database = BioNavDatabase.build(hierarchy, medline)
    entrez = EntrezClient(medline)
    return Workload(hierarchy, medline, database, entrez, built_queries)


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------
def _pick_target(
    hierarchy: ConceptHierarchy, rng: random.Random, depth: int, used: set
) -> int:
    """A random unused concept at the requested depth (or deepest available)."""
    for candidate_depth in range(depth, 1, -1):
        candidates = [
            n
            for n in hierarchy.iter_dfs()
            if hierarchy.depth(n) == candidate_depth and n not in used
        ]
        if candidates:
            return rng.choice(candidates)
    raise ValueError("hierarchy too small to place a workload target")


def _build_anchors(
    hierarchy: ConceptHierarchy,
    rng: random.Random,
    spec: WorkloadQuery,
    target: int,
) -> Tuple[Tuple[int, float], ...]:
    """Topic anchors: the target, its top-level branch, plus other fields."""
    path = hierarchy.path_to_root(target)
    # The ancestor of the target just below the root (its top-level branch).
    branch = path[-2] if len(path) >= 2 else target
    anchors: List[Tuple[int, float]] = [(target, max(spec.target_share, 0.01))]
    remaining = max(1.0 - spec.target_share, 0.05)
    branch_weight = remaining * 0.4
    anchors.append((branch, branch_weight))
    n_others = max(spec.n_topics - 1, 1)
    other_weight = (remaining - branch_weight) / n_others
    top_level = [
        n
        for n in hierarchy.children(hierarchy.root)
        if n != branch and hierarchy.subtree_size(n) >= 5
    ]
    rng.shuffle(top_level)
    for other in top_level[:n_others]:
        anchors.append((other, max(other_weight, 0.01)))
    return tuple(anchors)


def _ensure_target_coverage(
    citations: List[Citation], target: int, min_count: int, rng: random.Random
) -> List[Citation]:
    """Guarantee the target concept is attached to ≥ ``min_count`` citations.

    The Zipf sampling can miss very-low-share targets entirely (the paper's
    "ice nucleation" target has only 2 attached citations); patch a couple
    of citations so the target always exists in the navigation tree.
    """
    have = sum(1 for c in citations if target in c.index_concepts)
    if have >= min_count:
        return citations
    need = min_count - have
    patched = list(citations)
    candidates = [
        i for i, c in enumerate(patched) if target not in c.index_concepts
    ]
    for i in rng.sample(candidates, min(need, len(candidates))):
        citation = patched[i]
        patched[i] = dataclasses.replace(
            citation,
            index_concepts=tuple(sorted(set(citation.index_concepts) | {target})),
        )
    return patched
