"""The MES → TED reduction of Theorem 1 (paper §V).

Mapping: for an MES instance over vertices ``V`` with edge weights ``w``,
build a star-shaped element tree — an empty root with one child per
vertex.  For each edge ``(u, v)`` of weight ``w``, mint ``w`` fresh
elements and place one copy in ``u``'s node and one in ``v``'s node.  Then:

* choosing a k-subset ``V'`` in MES with internal weight ≥ W corresponds to
* the valid EdgeCut severing the leaves *outside* ``V'``, creating
  ``|V| - k + 1`` subtrees (the upper subtree keeps the root and the
  chosen leaves) whose intra-subtree duplicate count is exactly the
  internal edge weight of ``V'``.

The helpers below build the TED instance, translate solutions both ways,
and verify the correspondence — exercised by unit and property tests as an
executable proof artifact.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.complexity.mes import MESInstance
from repro.complexity.ted import ElementTree

__all__ = [
    "mes_to_ted",
    "subset_to_cut",
    "cut_to_subset",
    "ted_subtree_count_for_k",
]


def mes_to_ted(instance: MESInstance) -> Tuple[ElementTree, Dict[int, int]]:
    """Build the TED element tree for an MES instance.

    Returns the tree plus a mapping vertex → tree node index (leaves are
    children of the empty root, one per vertex, in ``instance.vertices``
    order).
    """
    vertex_node: Dict[int, int] = {}
    parents: List[int] = [-1]
    elements: List[List[object]] = [[]]
    for vertex in instance.vertices:
        vertex_node[vertex] = len(parents)
        parents.append(0)
        elements.append([])
    for edge, weight in sorted(
        instance.weights.items(), key=lambda item: tuple(sorted(item[0]))
    ):
        u, v = sorted(edge)
        for copy in range(weight):
            element = ("e", u, v, copy)
            elements[vertex_node[u]].append(element)
            elements[vertex_node[v]].append(element)
    return ElementTree(parents, elements), vertex_node


def subset_to_cut(
    instance: MESInstance, vertex_node: Dict[int, int], subset: Set[int]
) -> Tuple[Tuple[int, int], ...]:
    """MES solution → TED EdgeCut: sever every leaf outside the subset."""
    unknown = subset - set(instance.vertices)
    if unknown:
        raise ValueError("subset contains unknown vertices: %r" % sorted(unknown))
    return tuple(
        (0, vertex_node[vertex])
        for vertex in instance.vertices
        if vertex not in subset
    )


def cut_to_subset(
    instance: MESInstance, vertex_node: Dict[int, int], cut: Sequence[Tuple[int, int]]
) -> Set[int]:
    """TED EdgeCut → MES solution: vertices whose leaves stay in the upper tree."""
    node_vertex = {node: vertex for vertex, node in vertex_node.items()}
    severed = set()
    for parent, child in cut:
        if parent != 0 or child not in node_vertex:
            raise ValueError("cut edge %r is not a root-to-leaf star edge" % ((parent, child),))
        severed.add(node_vertex[child])
    return set(instance.vertices) - severed


def ted_subtree_count_for_k(instance: MESInstance, k: int) -> int:
    """The TED subtree count corresponding to choosing k MES vertices.

    Severing ``|V| - k`` leaves creates that many lower subtrees plus the
    upper subtree.
    """
    if not 0 <= k <= len(instance.vertices):
        raise ValueError("k out of range")
    return len(instance.vertices) - k + 1
