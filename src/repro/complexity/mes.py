"""MAXIMUM EDGE SUBGRAPH (MES) — the known NP-complete source problem.

Decision form (paper §V): given a graph ``G = (V, E)``, an edge weight
function ``w : E → N`` and a positive integer ``k``, is there a subset
``V' ⊆ V`` with ``|V'| = k`` such that the total weight of edges with both
endpoints in ``V'`` is at least ``W``?

This module provides the instance type plus exact brute-force solvers,
used to validate the MES → TED reduction of Theorem 1 on small instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Set, Tuple

__all__ = ["MESInstance", "mes_optimum", "mes_decision", "mes_best_subset"]


@dataclass(frozen=True)
class MESInstance:
    """One MES instance.

    Attributes:
        vertices: vertex identifiers.
        weights: undirected edge → positive integer weight, keyed by a
            frozenset of the two endpoints.
    """

    vertices: Tuple[int, ...]
    weights: Dict[FrozenSet[int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        vertex_set = set(self.vertices)
        if len(vertex_set) != len(self.vertices):
            raise ValueError("duplicate vertices")
        for edge, weight in self.weights.items():
            if len(edge) != 2:
                raise ValueError("edges must join two distinct vertices: %r" % (edge,))
            if not edge <= vertex_set:
                raise ValueError("edge %r references unknown vertices" % (edge,))
            if weight <= 0:
                raise ValueError("edge weights must be positive integers")

    @classmethod
    def from_edges(
        cls, vertices: Iterable[int], edges: Iterable[Tuple[int, int, int]]
    ) -> "MESInstance":
        """Build from (u, v, weight) triples; parallel edges merge weights."""
        weights: Dict[FrozenSet[int], int] = {}
        for u, v, weight in edges:
            key = frozenset((u, v))
            weights[key] = weights.get(key, 0) + weight
        return cls(vertices=tuple(vertices), weights=weights)

    def subset_weight(self, subset: Iterable[int]) -> int:
        """Total weight of edges with both endpoints in ``subset``."""
        chosen = set(subset)
        return sum(
            weight for edge, weight in self.weights.items() if edge <= chosen
        )


def mes_best_subset(instance: MESInstance, k: int) -> Tuple[Set[int], int]:
    """Exhaustively find a k-subset maximizing internal edge weight.

    Returns (subset, weight).  Exponential in |V|; intended for the small
    instances used to validate the reduction.
    """
    if not 0 <= k <= len(instance.vertices):
        raise ValueError("k out of range")
    best_weight = -1
    best_subset: Set[int] = set()
    for subset in itertools.combinations(instance.vertices, k):
        weight = instance.subset_weight(subset)
        if weight > best_weight:
            best_weight = weight
            best_subset = set(subset)
    return best_subset, max(best_weight, 0)


def mes_optimum(instance: MESInstance, k: int) -> int:
    """Maximum internal edge weight over all k-subsets."""
    return mes_best_subset(instance, k)[1]


def mes_decision(instance: MESInstance, k: int, target_weight: int) -> bool:
    """The MES decision problem: does a k-subset of weight ≥ W exist?"""
    return mes_optimum(instance, k) >= target_weight
