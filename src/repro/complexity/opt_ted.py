"""Optimal TOPDOWN-EXHAUSTIVE EdgeCut (the §V objective, solved exactly).

Section V analyzes a simplified navigation: one EdgeCut on the root, then
the user reads the ``s`` component labels and SHOWRESULTS on a uniformly
random component — expected cost ``s + (|elements| − duplicates)/s``.
Minimizing it is NP-complete (Theorem 1); this module solves small
instances exactly by enumeration, exposing both the optimal cut and the
per-subtree-count trade-off curve the proof's intuition describes
(few subtrees ↔ high duplicate capture).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.complexity.ted import ElementTree, duplicates_in_subtrees, ted_expected_cost

__all__ = ["TEDSolution", "ted_optimal_cut", "ted_cost_curve"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class TEDSolution:
    """The optimal TOPDOWN-EXHAUSTIVE cut of one element tree.

    Attributes:
        cut: the cost-minimizing valid EdgeCut (possibly empty).
        expected_cost: its expected navigation cost.
        n_subtrees: components the cut creates.
        duplicates: duplicates gathered inside the components.
    """

    cut: Tuple[Edge, ...]
    expected_cost: float
    n_subtrees: int
    duplicates: int


def ted_optimal_cut(tree: ElementTree) -> TEDSolution:
    """Exhaustively find the expected-cost-minimizing valid EdgeCut.

    Exponential in tree size; intended for the small instances where the
    NP-hard structure can be inspected directly.
    """
    best_cut: Optional[Tuple[Edge, ...]] = None
    best_cost = float("inf")
    for cut in tree.enumerate_valid_cuts():
        cost = ted_expected_cost(tree, cut)
        if cost < best_cost:
            best_cost = cost
            best_cut = tuple(cut)
    assert best_cut is not None  # the empty cut always exists
    subtrees = tree.cut_subtrees(best_cut)
    return TEDSolution(
        cut=best_cut,
        expected_cost=best_cost,
        n_subtrees=len(subtrees),
        duplicates=duplicates_in_subtrees(tree, subtrees),
    )


def ted_cost_curve(tree: ElementTree) -> Dict[int, float]:
    """Minimum expected cost attainable for each subtree count.

    The curve exposes the §V trade-off: cost ``s + u_avg`` where reading
    more labels (larger ``s``) buys smaller average listings — and the
    best achievable listing at each ``s`` depends on how many duplicates
    a cut of that size can gather, which is the NP-hard part.
    """
    curve: Dict[int, float] = {}
    for cut in tree.enumerate_valid_cuts():
        s = len(cut) + 1
        cost = ted_expected_cost(tree, cut)
        if s not in curve or cost < curve[s]:
            curve[s] = cost
    return curve
