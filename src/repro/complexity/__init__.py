"""NP-completeness artifacts: MES, TED, and the Theorem 1 reduction."""

from repro.complexity.mes import MESInstance, mes_best_subset, mes_decision, mes_optimum
from repro.complexity.opt_ted import TEDSolution, ted_cost_curve, ted_optimal_cut
from repro.complexity.reduction import cut_to_subset, mes_to_ted, subset_to_cut, ted_subtree_count_for_k
from repro.complexity.ted import (
    ElementTree,
    duplicates_in_subtrees,
    ted_best_duplicates,
    ted_decision,
    ted_expected_cost,
)

__all__ = [
    "ElementTree",
    "MESInstance",
    "TEDSolution",
    "cut_to_subset",
    "duplicates_in_subtrees",
    "mes_best_subset",
    "mes_decision",
    "mes_optimum",
    "mes_to_ted",
    "subset_to_cut",
    "ted_best_duplicates",
    "ted_cost_curve",
    "ted_decision",
    "ted_optimal_cut",
    "ted_expected_cost",
    "ted_subtree_count_for_k",
]
