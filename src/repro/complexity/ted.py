"""TOPDOWN-EXHAUSTIVE Decision (TED) — the paper's NP-complete problem.

In the TOPDOWN-EXHAUSTIVE navigation model (paper §V), BioNav performs one
EdgeCut on the root's component and the user then picks one of the created
component subtrees uniformly at random and runs SHOWRESULTS.  Minimizing
the expected cost requires simultaneously keeping the number of subtrees
small and concentrating *duplicate* elements inside subtrees.  The
associated decision problem:

    Given a navigation tree whose nodes hold (multi)sets of elements and
    integers ``s`` and ``d`` — is there a valid EdgeCut creating exactly
    ``s`` subtrees (upper included) whose total intra-subtree duplicate
    count is at least ``d``?

This module implements element trees, the duplicate count, a brute-force
exact solver, and the expected TOPDOWN-EXHAUSTIVE navigation cost the
paper derives (``s + D(T)/s`` where ``D(T)`` is total element mass minus
duplicates gathered inside subtrees, averaged over the random pick).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ElementTree",
    "duplicates_in_subtrees",
    "ted_best_duplicates",
    "ted_decision",
    "ted_expected_cost",
]

Edge = Tuple[int, int]


class ElementTree:
    """A rooted tree whose nodes carry element multisets.

    Node 0 is the root.  Elements are arbitrary hashables; a node may hold
    the same element several times (the proof's simplifying assumption).
    """

    def __init__(self, parents: Sequence[int], elements: Sequence[Sequence[object]]):
        """
        Args:
            parents: parent index per node; ``parents[0]`` must be -1 and
                every other parent must precede its child.
            elements: element list per node (duplicates allowed).
        """
        if len(parents) != len(elements):
            raise ValueError("parents and elements lengths disagree")
        if not parents or parents[0] != -1:
            raise ValueError("node 0 must be the root with parent -1")
        for node, parent in enumerate(parents):
            if node == 0:
                continue
            if not 0 <= parent < node:
                raise ValueError("parents must precede children (node %d)" % node)
        self.parents = list(parents)
        self.elements = [list(e) for e in elements]
        self.children: List[List[int]] = [[] for _ in parents]
        for node, parent in enumerate(parents):
            if parent >= 0:
                self.children[parent].append(node)

    def __len__(self) -> int:
        return len(self.parents)

    def subtree(self, node: int) -> List[int]:
        """Node indices of the subtree rooted at ``node``."""
        collected: List[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            collected.append(current)
            stack.extend(self.children[current])
        return collected

    def edges(self) -> List[Edge]:
        """All (parent, child) edges of the tree."""
        return [(self.parents[n], n) for n in range(1, len(self.parents))]

    def total_elements(self) -> int:
        """Total element mass, multiplicity included."""
        return sum(len(e) for e in self.elements)

    def enumerate_valid_cuts(self) -> List[Tuple[Edge, ...]]:
        """All valid EdgeCuts (antichains of edges), the empty cut included."""

        def cuts_below(node: int) -> List[List[Edge]]:
            options_per_child: List[List[List[Edge]]] = []
            for child in self.children[node]:
                child_options: List[List[Edge]] = [[(node, child)]]
                child_options.extend(cuts_below(child))
                options_per_child.append(child_options)
            combos: List[List[Edge]] = [[]]
            for child_options in options_per_child:
                combos = [base + extra for base in combos for extra in child_options]
            return combos

        return [tuple(cut) for cut in cuts_below(0)]

    def cut_subtrees(self, cut: Sequence[Edge]) -> List[List[int]]:
        """Node lists of the components a valid cut creates (upper first)."""
        removed: Set[int] = set()
        lowers: List[List[int]] = []
        for _, child in cut:
            lower = self.subtree(child)
            if removed & set(lower):
                raise ValueError("invalid EdgeCut: edges share a path")
            removed.update(lower)
            lowers.append(lower)
        upper = [n for n in range(len(self.parents)) if n not in removed]
        return [upper] + lowers


def duplicates_in_subtrees(tree: ElementTree, subtrees: Iterable[Iterable[int]]) -> int:
    """Total duplicate count across subtrees.

    Within one subtree, an element appearing m times counts as m-1
    duplicates (the paper's convention).
    """
    total = 0
    for subtree in subtrees:
        counts: Dict[object, int] = {}
        for node in subtree:
            for element in tree.elements[node]:
                counts[element] = counts.get(element, 0) + 1
        total += sum(m - 1 for m in counts.values())
    return total


def ted_best_duplicates(tree: ElementTree, n_subtrees: int) -> Optional[int]:
    """Maximum intra-subtree duplicates over valid cuts making ``n_subtrees``.

    Returns None when no valid cut produces exactly that many subtrees.
    Exponential; for validating the Theorem 1 reduction on small trees.
    """
    if n_subtrees < 1:
        raise ValueError("n_subtrees must be at least 1")
    best: Optional[int] = None
    for cut in tree.enumerate_valid_cuts():
        if len(cut) + 1 != n_subtrees:
            continue
        duplicates = duplicates_in_subtrees(tree, tree.cut_subtrees(cut))
        if best is None or duplicates > best:
            best = duplicates
    return best


def ted_decision(tree: ElementTree, n_subtrees: int, min_duplicates: int) -> bool:
    """The TED decision problem for one (s, d) pair."""
    best = ted_best_duplicates(tree, n_subtrees)
    return best is not None and best >= min_duplicates


def ted_expected_cost(tree: ElementTree, cut: Sequence[Edge]) -> float:
    """Expected TOPDOWN-EXHAUSTIVE cost of one cut (paper §V).

    The user reads the ``s`` subtree root labels, then SHOWRESULTS on one
    subtree chosen uniformly at random; the expected listing length is the
    average distinct-count over subtrees, i.e. ``(|elements| - duplicates)/s``.
    """
    subtrees = tree.cut_subtrees(cut)
    s = len(subtrees)
    duplicates = duplicates_in_subtrees(tree, subtrees)
    return s + (tree.total_elements() - duplicates) / s
