"""Statistical treatment of the navigation-cost comparisons.

The paper reports per-query costs and an average improvement; a modern
evaluation would add uncertainty: is BioNav's win significant over the
10-query workload, and what is the confidence interval on the average
improvement?  This module provides the paired tests the benchmark
summaries use:

* :func:`paired_bootstrap_ci` — bootstrap confidence interval on the mean
  per-query improvement ``1 − bionav/static``;
* :func:`wilcoxon_signed_rank` — the standard nonparametric paired test
  on the cost differences (via scipy);
* :func:`sign_test` — the distribution-free fallback (exact binomial).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = [
    "ImprovementSummary",
    "paired_bootstrap_ci",
    "wilcoxon_signed_rank",
    "sign_test",
    "summarize_improvements",
]


@dataclass(frozen=True)
class ImprovementSummary:
    """Uncertainty-aware summary of a paired cost comparison.

    Attributes:
        mean_improvement: mean of ``1 − treatment/baseline`` per pair.
        ci_low, ci_high: bootstrap confidence interval on that mean.
        wilcoxon_p: Wilcoxon signed-rank p-value on the cost differences.
        sign_p: exact sign-test p-value (one-sided, treatment < baseline).
        n_pairs: number of (baseline, treatment) pairs.
    """

    mean_improvement: float
    ci_low: float
    ci_high: float
    wilcoxon_p: float
    sign_p: float
    n_pairs: int


def paired_bootstrap_ci(
    baseline: Sequence[float],
    treatment: Sequence[float],
    n_resamples: int = 5000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Bootstrap CI on the mean per-pair improvement.

    Returns (mean, low, high).

    Raises:
        ValueError: mismatched lengths, empty input, non-positive baseline
            costs, or a confidence outside (0, 1).
    """
    _validate_pairs(baseline, treatment)
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    improvements = [
        1.0 - t / b for b, t in zip(baseline, treatment)
    ]
    n = len(improvements)
    mean = sum(improvements) / n
    rng = random.Random(seed)
    resampled = []
    for _ in range(n_resamples):
        sample = [improvements[rng.randrange(n)] for _ in range(n)]
        resampled.append(sum(sample) / n)
    resampled.sort()
    alpha = (1.0 - confidence) / 2.0
    low = resampled[int(alpha * n_resamples)]
    high = resampled[min(int((1.0 - alpha) * n_resamples), n_resamples - 1)]
    return mean, low, high


def wilcoxon_signed_rank(
    baseline: Sequence[float], treatment: Sequence[float]
) -> float:
    """Wilcoxon signed-rank p-value that treatment costs less (one-sided).

    Delegates to scipy; pairs with zero difference are dropped (the
    standard treatment).  Returns 1.0 when fewer than 2 nonzero pairs
    remain.
    """
    _validate_pairs(baseline, treatment)
    differences = [b - t for b, t in zip(baseline, treatment) if b != t]
    if len(differences) < 2:
        return 1.0
    from scipy import stats

    result = stats.wilcoxon(differences, alternative="greater")
    return float(result.pvalue)


def sign_test(baseline: Sequence[float], treatment: Sequence[float]) -> float:
    """Exact one-sided sign test that treatment beats baseline.

    P(observing ≥ k wins out of n informative pairs | p = 1/2), computed
    from the binomial tail — no distributional assumptions at all.
    """
    _validate_pairs(baseline, treatment)
    wins = sum(1 for b, t in zip(baseline, treatment) if t < b)
    losses = sum(1 for b, t in zip(baseline, treatment) if t > b)
    n = wins + losses
    if n == 0:
        return 1.0
    tail = sum(math.comb(n, k) for k in range(wins, n + 1))
    return tail / (2.0 ** n)


def summarize_improvements(
    baseline: Sequence[float],
    treatment: Sequence[float],
    n_resamples: int = 5000,
    seed: int = 0,
) -> ImprovementSummary:
    """Full paired summary: bootstrap CI plus both significance tests."""
    mean, low, high = paired_bootstrap_ci(
        baseline, treatment, n_resamples=n_resamples, seed=seed
    )
    return ImprovementSummary(
        mean_improvement=mean,
        ci_low=low,
        ci_high=high,
        wilcoxon_p=wilcoxon_signed_rank(baseline, treatment),
        sign_p=sign_test(baseline, treatment),
        n_pairs=len(baseline),
    )


def _validate_pairs(baseline: Sequence[float], treatment: Sequence[float]) -> None:
    if len(baseline) != len(treatment):
        raise ValueError("baseline and treatment must pair up")
    if not baseline:
        raise ValueError("need at least one pair")
    if any(b <= 0 for b in baseline):
        raise ValueError("baseline costs must be positive")
