"""Runtime growth-curve fitting.

The paper claims Opt-EdgeCut is exponential (complexity O(2^|T|)) and
bounds the reduced-tree size accordingly; the benchmarks measure its
runtime over tree sizes.  This module fits the measurements to an
exponential model ``t(n) = a · b^n`` by log-linear least squares (numpy)
and reports the growth base with a goodness-of-fit, turning "it explodes"
into a measured quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["ExponentialFit", "fit_exponential"]


@dataclass(frozen=True)
class ExponentialFit:
    """Result of fitting ``t(n) = a · b^n``.

    Attributes:
        base: the per-node growth factor ``b`` (exponential iff > 1).
        scale: the leading constant ``a``.
        r_squared: coefficient of determination of the log-space fit.
    """

    base: float
    scale: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Predicted runtime at size ``n``."""
        return self.scale * (self.base ** n)


def fit_exponential(
    sizes: Sequence[float], times: Sequence[float]
) -> ExponentialFit:
    """Least-squares fit of an exponential to (size, time) measurements.

    Raises:
        ValueError: fewer than 3 points, mismatched lengths, or
            non-positive times (the log transform needs t > 0).
    """
    if len(sizes) != len(times):
        raise ValueError("sizes and times must pair up")
    if len(sizes) < 3:
        raise ValueError("need at least 3 measurements to fit a curve")
    times_array = np.asarray(times, dtype=float)
    if np.any(times_array <= 0):
        raise ValueError("times must be positive")
    sizes_array = np.asarray(sizes, dtype=float)
    log_times = np.log(times_array)
    slope, intercept = np.polyfit(sizes_array, log_times, 1)
    predicted = slope * sizes_array + intercept
    residual = float(np.sum((log_times - predicted) ** 2))
    total = float(np.sum((log_times - log_times.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return ExponentialFit(
        base=float(np.exp(slope)),
        scale=float(np.exp(intercept)),
        r_squared=r_squared,
    )
