"""Runtime growth-curve fitting and per-EXPAND solver profiling.

The paper claims Opt-EdgeCut is exponential (complexity O(2^|T|)) and
bounds the reduced-tree size accordingly; the benchmarks measure its
runtime over tree sizes.  This module fits the measurements to an
exponential model ``t(n) = a · b^n`` by log-linear least squares (numpy)
and reports the growth base with a goodness-of-fit, turning "it explodes"
into a measured quantity.

It also provides :class:`SolverProfile`, the lightweight recorder
:class:`~repro.core.session.NavigationSession` feeds with one
:class:`SolverTiming` per EXPAND decision, so deployments can watch the
latency the paper's Figure 10 measures — per-EXPAND optimizer time — in
production rather than only on the bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["ExponentialFit", "fit_exponential", "SolverTiming", "SolverProfile"]


@dataclass(frozen=True)
class ExponentialFit:
    """Result of fitting ``t(n) = a · b^n``.

    Attributes:
        base: the per-node growth factor ``b`` (exponential iff > 1).
        scale: the leading constant ``a``.
        r_squared: coefficient of determination of the log-space fit.
    """

    base: float
    scale: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Predicted runtime at size ``n``."""
        return self.scale * (self.base ** n)


@dataclass(frozen=True)
class SolverTiming:
    """One EXPAND decision's solver cost.

    Attributes:
        node: the expanded concept (navigation-tree node id).
        seconds: wall-clock time the strategy spent choosing the cut.
        reduced_size: supernode count of the tree the decision ran on
            (the Figure 10 regressor).
    """

    node: int
    seconds: float
    reduced_size: int


@dataclass
class SolverProfile:
    """Accumulates per-EXPAND solver timings across sessions.

    A single profile can be shared by every session of a deployment (the
    web layer keeps one per application); ``record`` is append-only, so
    aggregation never perturbs the measured path.
    """

    records: List[SolverTiming] = field(default_factory=list)

    def record(self, node: int, seconds: float, reduced_size: int) -> None:
        """Append one EXPAND decision's timing."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.records.append(
            SolverTiming(node=node, seconds=seconds, reduced_size=reduced_size)
        )

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_seconds(self) -> float:
        """Total solver time recorded."""
        return sum(r.seconds for r in self.records)

    @property
    def mean_seconds(self) -> float:
        """Mean per-EXPAND solver time (0.0 with no records)."""
        return self.total_seconds / len(self.records) if self.records else 0.0

    def percentile_seconds(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of per-EXPAND solver time."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self.records:
            return 0.0
        ordered = sorted(r.seconds for r in self.records)
        rank = int(round((q / 100.0) * (len(ordered) - 1)))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics, in milliseconds where latency-like.

        Keys: ``expands``, ``total_ms``, ``mean_ms``, ``p50_ms``,
        ``p95_ms``, ``p99_ms``, ``max_ms``, ``mean_reduced_size``.
        ``p99_ms`` is the per-EXPAND latency tail the expand-hot-path
        bench gates sub-millisecond (warm) and ``/api/stats`` surfaces.
        """
        if not self.records:
            return {
                "expands": 0,
                "total_ms": 0.0,
                "mean_ms": 0.0,
                "p50_ms": 0.0,
                "p95_ms": 0.0,
                "p99_ms": 0.0,
                "max_ms": 0.0,
                "mean_reduced_size": 0.0,
            }
        return {
            "expands": len(self.records),
            "total_ms": self.total_seconds * 1000.0,
            "mean_ms": self.mean_seconds * 1000.0,
            "p50_ms": self.percentile_seconds(50) * 1000.0,
            "p95_ms": self.percentile_seconds(95) * 1000.0,
            "p99_ms": self.percentile_seconds(99) * 1000.0,
            "max_ms": max(r.seconds for r in self.records) * 1000.0,
            "mean_reduced_size": (
                sum(r.reduced_size for r in self.records) / len(self.records)
            ),
        }

    def growth_fit(self) -> "ExponentialFit":
        """Fit solver time against reduced-tree size (see module docstring).

        Raises:
            ValueError: fewer than 3 records or non-positive timings (the
                log-linear fit needs t > 0).
        """
        return fit_exponential(
            [float(r.reduced_size) for r in self.records],
            [r.seconds for r in self.records],
        )


def fit_exponential(
    sizes: Sequence[float], times: Sequence[float]
) -> ExponentialFit:
    """Least-squares fit of an exponential to (size, time) measurements.

    Raises:
        ValueError: fewer than 3 points, mismatched lengths, or
            non-positive times (the log transform needs t > 0).
    """
    if len(sizes) != len(times):
        raise ValueError("sizes and times must pair up")
    if len(sizes) < 3:
        raise ValueError("need at least 3 measurements to fit a curve")
    times_array = np.asarray(times, dtype=float)
    if np.any(times_array <= 0):
        raise ValueError("times must be positive")
    sizes_array = np.asarray(sizes, dtype=float)
    log_times = np.log(times_array)
    slope, intercept = np.polyfit(sizes_array, log_times, 1)
    predicted = slope * sizes_array + intercept
    residual = float(np.sum((log_times - predicted) ** 2))
    total = float(np.sum((log_times - log_times.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return ExponentialFit(
        base=float(np.exp(slope)),
        scale=float(np.exp(intercept)),
        r_squared=r_squared,
    )
