"""Statistical analysis of experiment results."""

from repro.analysis.runtime import ExponentialFit, fit_exponential
from repro.analysis.significance import (
    ImprovementSummary,
    paired_bootstrap_ci,
    sign_test,
    summarize_improvements,
    wilcoxon_signed_rank,
)

__all__ = [
    "ExponentialFit",
    "ImprovementSummary",
    "fit_exponential",
    "paired_bootstrap_ci",
    "sign_test",
    "summarize_improvements",
    "wilcoxon_signed_rank",
]
