"""Command-line interface to the BioNav reproduction.

Subcommands::

    bionav demo                 # Fig. 1/2-style walkthrough on the paper fragment
    bionav search KEYWORD       # run a workload query and auto-navigate to its target
    bionav workload             # print the measured Table I statistics
    bionav compare              # Fig. 8/9 summary: BioNav vs static navigation
    bionav html KEYWORD FILE    # export a navigation snapshot as a standalone HTML page
    bionav report FILE          # run the core evaluation and write a Markdown report

All subcommands materialize the synthetic workload on the fly; use
``--hierarchy-size`` and ``--seed`` to scale or vary it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.simulator import navigate_to_target
from repro.pipeline.registry import default_registry
from repro.viz.render import render_active_tree
from repro.workload.builder import Workload, build_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the bionav argument parser."""
    parser = argparse.ArgumentParser(
        prog="bionav",
        description="BioNav (ICDE 2009) reproduction: cost-aware result navigation.",
    )
    parser.add_argument(
        "--hierarchy-size",
        type=int,
        default=4000,
        help="synthetic MeSH-like hierarchy size (default 4000)",
    )
    parser.add_argument("--seed", type=int, default=7, help="master RNG seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("demo", help="walk through a BioNav navigation")

    search = subparsers.add_parser("search", help="navigate one workload query")
    search.add_argument("keyword", help="a Table I keyword, e.g. 'prothymosin'")
    search.add_argument(
        "--strategy",
        choices=default_registry().all_names(),
        default="heuristic",
        help="expansion strategy, by registry name or alias (default heuristic)",
    )

    subparsers.add_parser("workload", help="print measured Table I statistics")
    subparsers.add_parser("compare", help="BioNav vs static cost on all queries")

    html_cmd = subparsers.add_parser(
        "html", help="export a navigation snapshot to a standalone HTML page"
    )
    html_cmd.add_argument("keyword", help="a Table I keyword")
    html_cmd.add_argument("output", help="path of the HTML file to write")
    html_cmd.add_argument(
        "--expands",
        type=int,
        default=2,
        help="number of root EXPAND actions before the snapshot (default 2)",
    )
    html_cmd.add_argument(
        "--rank",
        choices=("relevance", "count"),
        default="relevance",
        help="sibling ordering in the exported page (default relevance)",
    )

    report_cmd = subparsers.add_parser(
        "report", help="run the core evaluation and write a Markdown report"
    )
    report_cmd.add_argument("output", help="path of the Markdown file to write")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    workload = build_workload(hierarchy_size=args.hierarchy_size, seed=args.seed)
    if args.command == "demo":
        return _cmd_demo(workload)
    if args.command == "search":
        return _cmd_search(workload, args.keyword, args.strategy)
    if args.command == "workload":
        return _cmd_workload(workload)
    if args.command == "compare":
        return _cmd_compare(workload)
    if args.command == "html":
        return _cmd_html(workload, args.keyword, args.output, args.expands, args.rank)
    if args.command == "report":
        return _cmd_report(workload, args.output)
    raise AssertionError("unreachable")


# ---------------------------------------------------------------------------
def _cmd_demo(workload: Workload) -> int:
    prepared = workload.prepare("prothymosin")
    print("Query: prothymosin  (%d citations)" % len(prepared.pmids))
    print(
        "Navigation tree: %d nodes, %d with duplicates"
        % (prepared.tree.size(), prepared.tree.citations_with_duplicates())
    )
    session = workload.open_session("prothymosin").session
    print("\nInitial EXPAND of the root (BioNav reveals a few descendants):\n")
    session.expand(prepared.tree.root)
    print(render_active_tree(session.active))
    print(
        "\nCost so far: %d (%d concepts revealed + %d EXPANDs)"
        % (
            session.navigation_cost,
            session.ledger.concepts_revealed,
            session.ledger.expand_actions,
        )
    )
    return 0


def _cmd_search(workload: Workload, keyword: str, strategy_name: str) -> int:
    try:
        prepared = workload.prepare(keyword)
    except KeyError:
        print("unknown workload keyword %r" % keyword, file=sys.stderr)
        return 2
    strategy = workload.strategy(prepared, strategy_name)
    outcome = navigate_to_target(prepared.tree, strategy, prepared.target_node)
    print("Query: %s  (%d citations)" % (keyword, len(prepared.pmids)))
    print("Target concept: %s" % prepared.tree.label(prepared.target_node))
    print("Strategy: %s" % strategy.name)
    print("Reached target: %s" % outcome.reached)
    print("EXPAND actions: %d" % outcome.expand_actions)
    print("Concepts revealed: %d" % outcome.concepts_revealed)
    print("Navigation cost: %d" % outcome.navigation_cost)
    return 0


def _cmd_workload(workload: Workload) -> int:
    header = (
        "keyword",
        "cites",
        "tree",
        "width",
        "height",
        "dup",
        "L(t)",
        "LT(t)",
        "lvl",
    )
    print("%-26s %6s %6s %6s %7s %7s %6s %8s %4s" % header)
    for prepared in workload.prepare_all():
        tree = prepared.tree
        target = prepared.target_node
        print(
            "%-26s %6d %6d %6d %7d %7d %6d %8d %4d"
            % (
                prepared.spec.keyword,
                len(prepared.pmids),
                tree.size(),
                tree.max_width(),
                tree.height(),
                tree.citations_with_duplicates(),
                len(tree.results(target)),
                workload.database.medline_count(target),
                workload.hierarchy.depth(target),
            )
        )
    return 0


def _cmd_compare(workload: Workload) -> int:
    print("%-26s %10s %10s %12s" % ("keyword", "static", "bionav", "improvement"))
    improvements: List[float] = []
    for prepared in workload.prepare_all():
        static = navigate_to_target(
            prepared.tree, workload.strategy(prepared, "static_nav"), prepared.target_node
        )
        heuristic = navigate_to_target(
            prepared.tree,
            workload.strategy(prepared, "heuristic"),
            prepared.target_node,
        )
        improvement = 1.0 - heuristic.navigation_cost / max(static.navigation_cost, 1)
        improvements.append(improvement)
        print(
            "%-26s %10d %10d %11.0f%%"
            % (
                prepared.spec.keyword,
                static.navigation_cost,
                heuristic.navigation_cost,
                improvement * 100,
            )
        )
    print(
        "%-26s %10s %10s %11.0f%%"
        % ("average", "", "", 100 * sum(improvements) / len(improvements))
    )
    return 0


def _cmd_html(
    workload: Workload, keyword: str, output: str, expands: int, rank: str
) -> int:
    from repro.core.relevance import ranked_visualization
    from repro.viz.html import active_tree_to_html

    try:
        prepared = workload.prepare(keyword)
    except KeyError:
        print("unknown workload keyword %r" % keyword, file=sys.stderr)
        return 2
    session = workload.open_session(keyword).session
    for _ in range(max(expands, 0)):
        if not session.active.is_expandable(prepared.tree.root):
            break
        session.expand(prepared.tree.root)
    rows = ranked_visualization(session.active, prepared.probs, by=rank)
    page = active_tree_to_html(
        session.active,
        title="BioNav — %s (%d citations)" % (keyword, len(prepared.pmids)),
        highlight=[prepared.target_node] if session.active.is_visible(prepared.target_node) else [],
        rows=rows,
    )
    with open(output, "w") as handle:
        handle.write(page)
    print("wrote %s (%d visible concepts)" % (output, len(rows)))
    return 0


def _cmd_report(workload: Workload, output: str) -> int:
    from repro.workload.report import generate_report

    text = generate_report(workload)
    with open(output, "w") as handle:
        handle.write(text)
    print("wrote %s (%d lines)" % (output, len(text.splitlines())))
    return 0


if __name__ == "__main__":
    sys.exit(main())
