"""The BioNav system facade (paper §VII, Fig. 7).

Ties the off-line and on-line halves together:

* **Off-line**: :meth:`BioNav.build` populates the BioNav database from a
  concept hierarchy and a MEDLINE snapshot (associations, denormalized
  table, MEDLINE-wide concept counts, keyword index).
* **On-line**: :meth:`BioNav.search` resolves a keyword query through the
  staged :class:`~repro.pipeline.NavigationPipeline` — ESearch result
  set, navigation tree, probability model, live session — with every
  stage cached by content key and the expansion strategy selected by
  name from the :class:`~repro.pipeline.SolverRegistry`
  (``Heuristic-ReducedOpt`` by default, exactly as the deployed
  system's Navigation Subsystem).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.core.session import NavigationSession
from repro.corpus.citation import DocSummary
from repro.corpus.medline import MedlineDatabase
from repro.eutils.client import EntrezClient
from repro.hierarchy.concept import ConceptHierarchy
from repro.pipeline.pipeline import NavigationPipeline
from repro.pipeline.registry import SolverRegistry, default_registry
from repro.search.engine import SearchEngine
from repro.storage.database import BioNavDatabase
from repro.substrate.store import CorpusStore

__all__ = ["BioNavQuery", "BioNav"]


@dataclass
class BioNavQuery:
    """One resolved query: result IDs, navigation tree, and session."""

    keyword: str
    pmids: Tuple[int, ...]
    tree: NavigationTree
    probs: ProbabilityModel
    session: NavigationSession

    @property
    def result_count(self) -> int:
        """Number of citations in the query result."""
        return len(self.pmids)


class BioNav:
    """End-to-end BioNav: database + eutils + navigation subsystem.

    All on-line work flows through :attr:`pipeline`; repeated searches
    of one keyword share the cached result set, navigation tree, and
    EdgeCut plans, and distinct keywords share the hierarchy snapshot.
    """

    def __init__(
        self,
        database: BioNavDatabase,
        entrez: EntrezClient,
        max_reduced_nodes: int = 10,
        params: Optional[CostParams] = None,
        registry: Optional[SolverRegistry] = None,
        pipeline: Optional[NavigationPipeline] = None,
    ):
        self.database = database
        self.entrez = entrez
        self.max_reduced_nodes = max_reduced_nodes
        self.params = params or CostParams()
        self.registry = registry or default_registry()
        self.pipeline = pipeline or NavigationPipeline(
            database,
            entrez,
            registry=self.registry,
            params=self.params,
            max_reduced_nodes=max_reduced_nodes,
        )

    @classmethod
    def build(
        cls,
        hierarchy: ConceptHierarchy,
        medline: MedlineDatabase,
        max_reduced_nodes: int = 10,
        params: Optional[CostParams] = None,
    ) -> "BioNav":
        """Run the off-line pre-processing and stand up the on-line system."""
        database = BioNavDatabase.build(hierarchy, medline)
        entrez = EntrezClient(medline)
        return cls(database, entrez, max_reduced_nodes=max_reduced_nodes, params=params)

    @classmethod
    def from_store(
        cls,
        store: CorpusStore,
        hierarchy: Optional[ConceptHierarchy] = None,
        max_reduced_nodes: int = 10,
        params: Optional[CostParams] = None,
    ) -> "BioNav":
        """Stand up the on-line system over a pre-built corpus store.

        The substrate path: no extraction pass and no text index — the
        store directory *is* the offline pre-processing output, queries
        are ``[mh]`` concept queries, and every process opening the same
        mmap directory shares one page-cached corpus.

        Args:
            store: a :class:`~repro.substrate.store.CorpusStore`
                (typically :class:`~repro.substrate.store.MmapStore`).
            hierarchy: defaults to the hierarchy captured in the store's
                build manifest.
        """
        database = BioNavDatabase.from_store(store, hierarchy=hierarchy)
        engine = SearchEngine.from_store(store, hierarchy=database.hierarchy)
        entrez = EntrezClient(store, engine=engine)
        return cls(database, entrez, max_reduced_nodes=max_reduced_nodes, params=params)

    # ------------------------------------------------------------------
    # On-line operation
    # ------------------------------------------------------------------
    def search(self, keyword: str, strategy: str = "heuristic") -> BioNavQuery:
        """Resolve a keyword query and open a navigation session.

        Args:
            keyword: the user's query.
            strategy: a registered solver name — ``"heuristic"``
                (BioNav, the default), ``"static"`` (the GoPubMed-style
                baseline), or any other name in
                :meth:`SolverRegistry.names`.

        Raises:
            ValueError: unknown strategy name.
        """
        artifact = self.pipeline.open_session(keyword, solver=strategy)
        results = self.pipeline.results(keyword)
        nav = artifact.nav
        return BioNavQuery(
            keyword=keyword,
            pmids=results.pmids,
            tree=nav.tree,
            probs=nav.probs,
            session=artifact.session,
        )

    def summaries(self, pmids: Sequence[int]) -> List[DocSummary]:
        """SHOWRESULTS display records, via the (simulated) ESummary."""
        if not pmids:
            return []
        return self.entrez.esummary(pmids)
