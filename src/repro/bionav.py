"""The BioNav system facade (paper §VII, Fig. 7).

Ties the off-line and on-line halves together:

* **Off-line**: :meth:`BioNav.build` populates the BioNav database from a
  concept hierarchy and a MEDLINE snapshot (associations, denormalized
  table, MEDLINE-wide concept counts, keyword index).
* **On-line**: :meth:`BioNav.search` resolves a keyword query through the
  (simulated) Entrez ESearch to citation IDs, constructs the navigation
  tree from the stored associations, and returns a
  :class:`~repro.core.session.NavigationSession` driven by the requested
  expansion strategy — ``Heuristic-ReducedOpt`` by default, exactly as the
  deployed system's Navigation Subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.corpus.citation import DocSummary
from repro.corpus.medline import MedlineDatabase
from repro.core.cost_model import CostParams
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.core.session import NavigationSession
from repro.core.static_nav import StaticNavigation
from repro.core.strategy import ExpansionStrategy
from repro.eutils.client import EntrezClient
from repro.hierarchy.concept import ConceptHierarchy
from repro.storage.database import BioNavDatabase

__all__ = ["BioNavQuery", "BioNav"]

STRATEGY_NAMES = ("heuristic", "static")


@dataclass
class BioNavQuery:
    """One resolved query: result IDs, navigation tree, and session."""

    keyword: str
    pmids: Tuple[int, ...]
    tree: NavigationTree
    probs: ProbabilityModel
    session: NavigationSession

    @property
    def result_count(self) -> int:
        """Number of citations in the query result."""
        return len(self.pmids)


class BioNav:
    """End-to-end BioNav: database + eutils + navigation subsystem."""

    def __init__(
        self,
        database: BioNavDatabase,
        entrez: EntrezClient,
        max_reduced_nodes: int = 10,
        params: Optional[CostParams] = None,
    ):
        self.database = database
        self.entrez = entrez
        self.max_reduced_nodes = max_reduced_nodes
        self.params = params or CostParams()

    @classmethod
    def build(
        cls,
        hierarchy: ConceptHierarchy,
        medline: MedlineDatabase,
        max_reduced_nodes: int = 10,
        params: Optional[CostParams] = None,
    ) -> "BioNav":
        """Run the off-line pre-processing and stand up the on-line system."""
        database = BioNavDatabase.build(hierarchy, medline)
        entrez = EntrezClient(medline)
        return cls(database, entrez, max_reduced_nodes=max_reduced_nodes, params=params)

    # ------------------------------------------------------------------
    # On-line operation
    # ------------------------------------------------------------------
    def search(self, keyword: str, strategy: str = "heuristic") -> BioNavQuery:
        """Resolve a keyword query and open a navigation session.

        Args:
            keyword: the user's query.
            strategy: ``"heuristic"`` (BioNav, the default) or ``"static"``
                (the GoPubMed-style baseline).

        Raises:
            ValueError: unknown strategy name.
        """
        pmids = tuple(self.entrez.esearch_all(keyword))
        tree = self._navigation_tree(pmids)
        probs = ProbabilityModel(tree, self.database.medline_count)
        chosen = self._make_strategy(strategy, tree, probs)
        session = NavigationSession(tree, chosen, params=self.params)
        return BioNavQuery(
            keyword=keyword, pmids=pmids, tree=tree, probs=probs, session=session
        )

    def summaries(self, pmids: Sequence[int]) -> List[DocSummary]:
        """SHOWRESULTS display records, via the (simulated) ESummary."""
        if not pmids:
            return []
        return self.entrez.esummary(pmids)

    # ------------------------------------------------------------------
    def _navigation_tree(self, pmids: Sequence[int]) -> NavigationTree:
        annotations = self.database.annotations_for_result(pmids)
        return NavigationTree.build(self.database.hierarchy, annotations)

    def _make_strategy(
        self, name: str, tree: NavigationTree, probs: ProbabilityModel
    ) -> ExpansionStrategy:
        if name == "heuristic":
            return HeuristicReducedOpt(
                tree, probs, max_reduced_nodes=self.max_reduced_nodes, params=self.params
            )
        if name == "static":
            return StaticNavigation(tree)
        raise ValueError(
            "unknown strategy %r (expected one of %s)" % (name, ", ".join(STRATEGY_NAMES))
        )
