"""Simulated Entrez Programming Utilities (ESearch/ESummary/EFetch)."""

from repro.eutils.client import EntrezClient, ESearchResult
from repro.eutils.errors import BadRequestError, EutilsError, RateLimitExceeded, UnknownIdError
from repro.eutils.history import HistoryEntrezClient, HistoryKey, HistoryServer

__all__ = [
    "BadRequestError",
    "ESearchResult",
    "EntrezClient",
    "EutilsError",
    "HistoryEntrezClient",
    "HistoryKey",
    "HistoryServer",
    "RateLimitExceeded",
    "UnknownIdError",
]
