"""Error types for the simulated Entrez eutils client."""

from __future__ import annotations

__all__ = ["EutilsError", "RateLimitExceeded", "UnknownIdError", "BadRequestError"]


class EutilsError(Exception):
    """Base class for simulated eutils failures."""


class RateLimitExceeded(EutilsError):
    """Raised when the simulated per-window request quota is exhausted.

    NCBI enforces ~3 requests/second without an API key; the paper's
    off-line harvest took ~20 days largely because of this limit.  The
    simulation raises instead of sleeping so tests can assert on it.
    """


class UnknownIdError(EutilsError):
    """An ESummary/EFetch request referenced a PMID that does not exist."""


class BadRequestError(EutilsError):
    """Malformed parameters (negative paging offsets, empty id lists, ...)."""
