"""Entrez history server simulation (WebEnv / query_key).

Real eutils clients harvesting large result sets — like BioNav's 20-day
offline pass — use the history server: ``esearch?usehistory=y`` stores the
result set server-side and returns a ``WebEnv`` session plus a
``query_key``; subsequent ``esummary``/``efetch`` calls page through the
stored set by reference instead of shipping ID lists back and forth.

:class:`HistoryServer` provides that storage, and
:class:`HistoryEntrezClient` layers the usehistory workflow over the plain
simulated client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.corpus.citation import Citation, DocSummary
from repro.corpus.medline import MedlineDatabase
from repro.eutils.client import EntrezClient
from repro.eutils.errors import BadRequestError

__all__ = ["HistoryKey", "HistoryServer", "HistoryEntrezClient"]


@dataclass(frozen=True)
class HistoryKey:
    """Handle to a stored result set: the WebEnv plus its query_key."""

    webenv: str
    query_key: int


class HistoryServer:
    """Server-side storage of named result sets."""

    def __init__(self) -> None:
        self._sessions: Dict[str, List[Tuple[str, Tuple[int, ...]]]] = {}
        self._counter = 0

    def new_session(self) -> str:
        """Open a fresh WebEnv session and return its identifier."""
        self._counter += 1
        webenv = "WEBENV%06d" % self._counter
        self._sessions[webenv] = []
        return webenv

    def store(self, webenv: Optional[str], query: str, pmids: Sequence[int]) -> HistoryKey:
        """Store a result set; creates a session when ``webenv`` is None."""
        if webenv is None:
            webenv = self.new_session()
        if webenv not in self._sessions:
            raise BadRequestError("unknown WebEnv %r" % webenv)
        self._sessions[webenv].append((query, tuple(pmids)))
        return HistoryKey(webenv=webenv, query_key=len(self._sessions[webenv]))

    def fetch(self, key: HistoryKey) -> Tuple[int, ...]:
        """The stored PMIDs for a (WebEnv, query_key) pair."""
        session = self._sessions.get(key.webenv)
        if session is None:
            raise BadRequestError("unknown WebEnv %r" % key.webenv)
        if not 1 <= key.query_key <= len(session):
            raise BadRequestError(
                "query_key %d out of range for %s" % (key.query_key, key.webenv)
            )
        return session[key.query_key - 1][1]

    def query_of(self, key: HistoryKey) -> str:
        """The query string stored under a history key."""
        self.fetch(key)  # validates
        return self._sessions[key.webenv][key.query_key - 1][0]


class HistoryEntrezClient:
    """The ``usehistory=y`` eutils workflow over the simulated client."""

    def __init__(self, medline: MedlineDatabase, client: Optional[EntrezClient] = None):
        self._client = client or EntrezClient(medline)
        self._history = HistoryServer()

    @property
    def history(self) -> HistoryServer:
        """The underlying history server (for inspection)."""
        return self._history

    # ------------------------------------------------------------------
    def esearch_usehistory(
        self, term: str, webenv: Optional[str] = None
    ) -> Tuple[HistoryKey, int]:
        """ESearch with usehistory=y: store the full set, return its key.

        Returns (history key, total result count).  Passing an existing
        ``webenv`` appends to that session (query_key increments), as the
        real history server does.
        """
        pmids = self._client.esearch_all(term)
        key = self._history.store(webenv, term, pmids)
        return key, len(pmids)

    def esummary_page(
        self, key: HistoryKey, retstart: int = 0, retmax: int = 20
    ) -> List[DocSummary]:
        """ESummary over a stored set, by reference, with paging."""
        if retstart < 0 or retmax < 0:
            raise BadRequestError("retstart/retmax must be non-negative")
        pmids = self._history.fetch(key)[retstart : retstart + retmax]
        if not pmids:
            return []
        return self._client.esummary(pmids)

    def efetch_page(
        self, key: HistoryKey, retstart: int = 0, retmax: int = 20
    ) -> List[Citation]:
        """EFetch over a stored set, by reference, with paging."""
        if retstart < 0 or retmax < 0:
            raise BadRequestError("retstart/retmax must be non-negative")
        pmids = self._history.fetch(key)[retstart : retstart + retmax]
        if not pmids:
            return []
        return self._client.efetch(pmids)

    def iterate_summaries(
        self, key: HistoryKey, page_size: int = 100
    ) -> Iterator[DocSummary]:
        """Generator over all summaries of a stored set, page by page."""
        start = 0
        while True:
            page = self.esummary_page(key, retstart=start, retmax=page_size)
            if not page:
                return
            for summary in page:
                yield summary
            start += len(page)
