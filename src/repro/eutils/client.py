"""Simulated Entrez Programming Utilities (eutils) client.

The paper's online phase talks to PubMed exclusively through eutils
(paper §VII): ESearch resolves a keyword query to citation IDs, ESummary
fetches display summaries for SHOWRESULTS, EFetch retrieves full records.
This module reproduces that surface over the local simulated corpus so the
whole online pipeline exercises the same code path shapes, including
``retstart``/``retmax`` paging and the request-rate quota that constrained
the paper's 20-day harvest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.corpus.citation import Citation, DocSummary
from repro.corpus.medline import MedlineDatabase
from repro.eutils.errors import BadRequestError, RateLimitExceeded, UnknownIdError
from repro.search.engine import SearchEngine

__all__ = ["ESearchResult", "EntrezClient"]

_DEFAULT_RETMAX = 20
_MAX_RETMAX = 100_000


@dataclass(frozen=True)
class ESearchResult:
    """ESearch response: total hit count plus one page of ranked IDs."""

    count: int
    retstart: int
    retmax: int
    ids: Tuple[int, ...]
    query: str


class EntrezClient:
    """ESearch / ESummary / EFetch over the simulated MEDLINE."""

    def __init__(
        self,
        medline: MedlineDatabase,
        engine: Optional[SearchEngine] = None,
        rate_limit: Optional[int] = None,
    ):
        """
        Args:
            medline: the simulated MEDLINE database, or any
                :class:`~repro.substrate.store.CorpusStore` backend (the
                client only needs ``get``/``__contains__``/
                ``iter_citations``); pass an ``engine`` explicitly for
                store backends without a text index.
            engine: keyword search engine; built from ``medline`` if omitted.
            rate_limit: optional maximum number of requests this client will
                serve before raising :class:`RateLimitExceeded`; ``None``
                disables the quota.  Call :meth:`reset_quota` to refill.
        """
        self._medline = medline
        self._engine = engine or SearchEngine.from_medline(medline)
        self._rate_limit = rate_limit
        self._requests_served = 0
        self._total_requests = 0

    # ------------------------------------------------------------------
    # ESearch
    # ------------------------------------------------------------------
    def esearch(
        self, term: str, retstart: int = 0, retmax: int = _DEFAULT_RETMAX
    ) -> ESearchResult:
        """Resolve a keyword query to ranked PMIDs, with paging."""
        self._consume_quota()
        if retstart < 0:
            raise BadRequestError("retstart must be non-negative")
        if not 0 <= retmax <= _MAX_RETMAX:
            raise BadRequestError("retmax out of range [0, %d]" % _MAX_RETMAX)
        if not term.strip():
            raise BadRequestError("empty query term")
        result = self._engine.search(term)
        page = result.pmids[retstart : retstart + retmax]
        return ESearchResult(
            count=result.count,
            retstart=retstart,
            retmax=retmax,
            ids=page,
            query=term,
        )

    def esearch_all(self, term: str, page_size: int = 500) -> List[int]:
        """All PMIDs for a query, paging through ESearch like real clients."""
        ids: List[int] = []
        start = 0
        while True:
            page = self.esearch(term, retstart=start, retmax=page_size)
            ids.extend(page.ids)
            start += len(page.ids)
            if start >= page.count or not page.ids:
                break
        return ids

    # ------------------------------------------------------------------
    # ESummary / EFetch
    # ------------------------------------------------------------------
    def esummary(self, pmids: Sequence[int]) -> List[DocSummary]:
        """Display summaries for SHOWRESULTS (title, authors, year)."""
        self._consume_quota()
        if not pmids:
            raise BadRequestError("esummary requires at least one id")
        summaries = []
        for pmid in pmids:
            if pmid not in self._medline:
                raise UnknownIdError("unknown pmid %d" % pmid)
            summaries.append(DocSummary.from_citation(self._medline.get(pmid)))
        return summaries

    def efetch(self, pmids: Sequence[int]) -> List[Citation]:
        """Full citation records."""
        self._consume_quota()
        if not pmids:
            raise BadRequestError("efetch requires at least one id")
        citations = []
        for pmid in pmids:
            if pmid not in self._medline:
                raise UnknownIdError("unknown pmid %d" % pmid)
            citations.append(self._medline.get(pmid))
        return citations

    # ------------------------------------------------------------------
    # ELink
    # ------------------------------------------------------------------
    def elink_related(self, pmid: int, retmax: int = _DEFAULT_RETMAX) -> List[int]:
        """PubMed's "related articles": citations sharing MeSH concepts.

        Returns up to ``retmax`` PMIDs ranked by the number of concepts
        shared with ``pmid`` (ties broken by PMID), excluding the query
        citation itself — the neighbor-document linkage eutils' ELink
        exposes, computed here from the concept associations.
        """
        self._consume_quota()
        if retmax < 0:
            raise BadRequestError("retmax must be non-negative")
        if pmid not in self._medline:
            raise UnknownIdError("unknown pmid %d" % pmid)
        anchor = set(self._medline.get(pmid).concepts)
        if not anchor:
            return []
        scored = []
        for citation in self._medline.iter_citations():
            if citation.pmid == pmid:
                continue
            shared = len(anchor & set(citation.concepts))
            if shared:
                scored.append((-shared, citation.pmid))
        scored.sort()
        return [p for _, p in scored[:retmax]]

    # ------------------------------------------------------------------
    # Quota bookkeeping
    # ------------------------------------------------------------------
    @property
    def requests_served(self) -> int:
        """Requests served in the current rate-limit window."""
        return self._requests_served

    @property
    def total_requests(self) -> int:
        """Lifetime request count (survives quota resets)."""
        return self._total_requests

    def reset_quota(self) -> None:
        """Refill the simulated request quota (a new rate-limit window)."""
        self._requests_served = 0

    def _consume_quota(self) -> None:
        if self._rate_limit is not None and self._requests_served >= self._rate_limit:
            raise RateLimitExceeded(
                "request quota of %d exhausted" % self._rate_limit
            )
        self._requests_served += 1
        self._total_requests += 1
