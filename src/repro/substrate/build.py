"""CLI entry point for the offline substrate build.

``python -m repro.substrate.build --out DIR --citations N`` generates a
deterministic synthetic stream (hierarchy + citations from ``--seed``)
and builds the substrate directory, printing one JSON object with the
manifest digest and the build's own resource footprint (wall time,
``ru_maxrss``, final on-disk bytes).  The bench runs this in a
subprocess so the reported peak RSS is the build's alone — the gate is
*build RSS < ~4x on-disk size*, which a whole-corpus-in-memory builder
cannot meet at 1M citations.

Also wired as ``make substrate-build``.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
from typing import List, Optional

from repro.hierarchy.generator import generate_hierarchy, mesh_2008_hierarchy
from repro.substrate.builder import SubstrateBuilder
from repro.substrate.synth import SynthSpec, synthetic_background, synthetic_chunks

__all__ = ["main"]


def _directory_bytes(path: str) -> int:
    total = 0
    for name in os.listdir(path):
        total += os.path.getsize(os.path.join(path, name))
    return total


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; prints the build report as JSON and returns 0."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.substrate.build",
        description="Build a synthetic MEDLINE-scale substrate directory.",
    )
    parser.add_argument("--out", required=True, help="target directory")
    parser.add_argument(
        "--citations", type=int, default=1_000_000, help="stream length"
    )
    parser.add_argument("--seed", type=int, default=0, help="stream seed")
    parser.add_argument(
        "--mean-concepts",
        type=float,
        default=24.0,
        help="average association-row length",
    )
    parser.add_argument(
        "--hierarchy-size",
        type=int,
        default=0,
        help="synthetic hierarchy size; 0 = the paper-scale MeSH preset (~48k)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    if args.hierarchy_size > 0:
        hierarchy = generate_hierarchy(target_size=args.hierarchy_size, seed=args.seed)
    else:
        hierarchy = mesh_2008_hierarchy()
    spec = SynthSpec(
        citations=args.citations,
        num_concepts=len(hierarchy),
        mean_concepts=args.mean_concepts,
        seed=args.seed,
    )
    builder = SubstrateBuilder(args.out, num_concepts=len(hierarchy))
    manifest = builder.build(
        synthetic_chunks(spec),
        hierarchy=hierarchy,
        background=synthetic_background(len(hierarchy), seed=args.seed),
        meta={
            "generator": "repro.substrate.synth",
            "seed": args.seed,
            "citations": args.citations,
            "mean_concepts": args.mean_concepts,
        },
    )
    elapsed = time.perf_counter() - started
    # Linux reports ru_maxrss in kilobytes.
    max_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    report = {
        "path": manifest.path,
        "digest": manifest.digest,
        "citations": manifest.citations,
        "pairs": manifest.pairs,
        "concepts": manifest.concepts,
        "elapsed_s": round(elapsed, 3),
        "max_rss_bytes": max_rss,
        "disk_bytes": _directory_bytes(manifest.path),
    }
    json.dump(report, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
