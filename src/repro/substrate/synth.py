"""Deterministic MEDLINE-scale synthetic citation streams.

The substrate bench needs 1M–10M citations with a realistic association
profile (~24 index concepts per citation, paper §VII reports ~90 for
real PubMed at full MeSH density) without ever materializing them as
Python objects.  :func:`synthetic_chunks` generates columnar
:class:`~repro.substrate.builder.CitationChunk` slices directly with
vectorized numpy, one chunk at a time, so the whole stream costs one
chunk of memory.

Determinism: chunk ``i`` of a given spec is produced by
``np.random.default_rng(SeedSequence([seed, i]))``, so the stream is
reproducible per chunk regardless of how far it is consumed — the
property the two-builds-same-digest determinism gate relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.substrate.builder import CitationChunk

__all__ = ["SynthSpec", "synthetic_chunks", "synthetic_background"]

#: First synthetic PMID; mirrors the corpus generator's numbering block.
_PMID_BASE = 10_000_001


@dataclass(frozen=True)
class SynthSpec:
    """Shape of one synthetic citation stream.

    Attributes:
        citations: stream length.
        num_concepts: concept id space (``len(hierarchy)``).
        mean_concepts: average association-row length.
        seed: stream seed (chunk ``i`` derives from ``(seed, i)``).
        chunk_size: citations per generated chunk.
    """

    citations: int
    num_concepts: int
    mean_concepts: float = 24.0
    seed: int = 0
    chunk_size: int = 65_536

    def __post_init__(self) -> None:
        if self.citations < 0:
            raise ValueError("citations must be non-negative")
        if self.num_concepts <= 1:
            raise ValueError("num_concepts must exceed 1")
        if not 1.0 <= self.mean_concepts < self.num_concepts:
            raise ValueError("mean_concepts must be in [1, num_concepts)")


def synthetic_chunks(spec: SynthSpec) -> Iterator[CitationChunk]:
    """Generate the stream described by ``spec``, chunk by chunk.

    Each citation draws a Zipf-flavored *anchor* concept (popular
    concepts are shared by many citations, giving the dense bitmap
    containers their workload) plus a geometric halo of nearby ids
    (locality: related concepts co-occur), deduplicated per row.
    """
    produced = 0
    chunk_index = 0
    while produced < spec.citations:
        n = min(spec.chunk_size, spec.citations - produced)
        rng = np.random.default_rng(np.random.SeedSequence([spec.seed, chunk_index]))
        pmids = _PMID_BASE + np.arange(produced, produced + n, dtype=np.int64)
        years = (1990 + rng.integers(0, 19, size=n)).astype(np.int16)

        lengths_target = 1 + rng.poisson(spec.mean_concepts - 1.0, size=n)
        total = int(lengths_target.sum())
        # Anchors: squared-uniform over the id space — a heavy head of
        # popular concepts plus a long sparse tail, like MeSH usage.
        anchors = (
            (rng.random(size=total) ** 2) * spec.num_concepts
        ).astype(np.int64)
        halo = rng.geometric(0.05, size=total).astype(np.int64)
        sign = rng.integers(0, 2, size=total) * 2 - 1
        concepts = np.clip(anchors + sign * halo, 0, spec.num_concepts - 1)

        # Per-row sort + dedupe, vectorized: order by (row, concept) and
        # drop adjacent duplicates within a row.
        rows = np.repeat(np.arange(n, dtype=np.int64), lengths_target)
        order = np.lexsort((concepts, rows))
        rows = rows[order]
        concepts = concepts[order]
        keep = np.ones(concepts.size, dtype=bool)
        if concepts.size > 1:
            same_row = rows[1:] == rows[:-1]
            same_val = concepts[1:] == concepts[:-1]
            keep[1:] = ~(same_row & same_val)
        rows = rows[keep]
        concepts = concepts[keep]
        lengths = np.bincount(rows, minlength=n).astype(np.int32)

        yield CitationChunk(
            pmids=pmids,
            years=years,
            lengths=lengths,
            concepts=concepts.astype(np.int32),
        )
        produced += n
        chunk_index += 1


def synthetic_background(num_concepts: int, seed: int = 0) -> np.ndarray:
    """Deterministic per-concept out-of-corpus MEDLINE mass.

    The EXPLORE probability divides by ``LT(n)``; giving every concept
    a nonzero simulated background keeps the IDF surface realistic at
    substrate scale without materializing background citations.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xBEEF]))
    return rng.integers(50, 5000, size=num_concepts).astype(np.int64)
