"""MEDLINE-scale corpus substrate: offline build + mmap columnar store.

The paper runs BioNav over an Oracle-backed MEDLINE snapshot — ~48k MeSH
concepts over millions of citations — populated once by a ~20-day offline
pre-processing pass and then queried interactively (§VII).  This package
is that split at reproduction scale:

* **Offline** — :class:`~repro.substrate.builder.SubstrateBuilder`
  streams citations in bounded memory into a directory of mmap-able
  numpy files (PMID-sorted citation table, CSR concept→citation
  association table, per-concept counts, compressed citation bitmaps)
  plus a deterministic build manifest.
* **Online** — one :class:`~repro.substrate.store.CorpusStore`
  interface with two backends: :class:`~repro.substrate.store.InMemoryStore`
  wrapping the toy :class:`~repro.corpus.medline.MedlineDatabase`, and
  :class:`~repro.substrate.store.MmapStore` opening the built directory
  read-only via ``np.load(mmap_mode="r")`` so every cluster worker
  shares one OS page cache instead of N private corpus copies.

The compressed bitmaps are roaring-style array/bitmap hybrid containers
(:mod:`repro.substrate.roaring`) whose bitmap payloads use the same
packed-``uint8``/MSB-first layout as the ``cost_arrays`` popcount and
``bitwise_or`` kernels.
"""

from repro.substrate.builder import BuildManifest, SubstrateBuilder, citation_chunks
from repro.substrate.roaring import RoaringBitmap
from repro.substrate.store import CorpusStore, InMemoryStore, MmapStore
from repro.substrate.synth import SynthSpec, synthetic_background, synthetic_chunks

__all__ = [
    "BuildManifest",
    "SubstrateBuilder",
    "citation_chunks",
    "RoaringBitmap",
    "CorpusStore",
    "InMemoryStore",
    "MmapStore",
    "SynthSpec",
    "synthetic_background",
    "synthetic_chunks",
]
