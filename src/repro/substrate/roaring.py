"""Roaring-style compressed bitmaps over citation ordinals.

Per-concept citation sets at MEDLINE scale are too large for Python sets
and too sparse for flat bitmaps, so the substrate stores them the way
roaring bitmaps do: the 32-bit ordinal universe is split into 2^16-value
chunks keyed by the high 16 bits, and each chunk holds either

* an **array container** — the low 16 bits as a sorted ``uint16`` array,
  used while the chunk's cardinality is at most ``array_max`` — or
* a **bitmap container** — 8192 packed ``uint8`` bytes (65536 bits,
  MSB-first within each byte, the ``np.packbits`` default), used for
  dense chunks.

The bitmap payloads share their layout with the packed result bitmaps in
:mod:`repro.core.cost_arrays`: unions are ``np.bitwise_or`` and
cardinalities are :data:`~repro.core.cost_arrays.POPCOUNT_TABLE`
lookups, so the container plugs straight into the existing kernels
(:meth:`RoaringBitmap.to_packed` produces a kernel-compatible row).

Containers are kept *canonical* — an array container never exceeds
``array_max`` values and a bitmap container always exceeds it — so two
bitmaps holding the same values are structurally identical and the
serialized form is deterministic, which the build-manifest determinism
gate relies on.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_arrays import POPCOUNT_TABLE

__all__ = [
    "RoaringBitmap",
    "ARRAY_CONTAINER_MAX",
    "BITMAP_CONTAINER_BYTES",
    "intersect_serialized",
]

#: Classic roaring threshold: chunks with at most this many values stay
#: sorted-array containers (2 bytes/value); denser chunks flip to packed
#: bitmaps (fixed 8192 bytes).
ARRAY_CONTAINER_MAX = 4096

#: Size of one bitmap container payload: 2^16 bits packed 8 per byte.
BITMAP_CONTAINER_BYTES = 1 << 13

_CHUNK_BITS = 16
_CHUNK_SIZE = 1 << _CHUNK_BITS

_ARRAY_KIND = 0
_BITMAP_KIND = 1

# Serialized layout (little-endian): a bitmap is ``<I`` container count
# followed by one ``<HBI`` header (key, kind, cardinality) plus payload
# per container.  Array payloads are ``cardinality`` uint16 values;
# bitmap payloads are exactly BITMAP_CONTAINER_BYTES bytes.
_HEADER = struct.Struct("<I")
_CONTAINER = struct.Struct("<HBI")

# MSB-first bit masks: value ``v`` lives in byte ``v >> 3`` under mask
# ``0x80 >> (v & 7)`` — the same orientation as np.packbits and the
# cost_arrays packed rows.
_BIT_MASKS = (np.uint8(0x80) >> np.arange(8, dtype=np.uint8)).astype(np.uint8)


def _pack_low16(values: np.ndarray) -> np.ndarray:
    """Pack sorted low-16-bit values into one 8192-byte bitmap payload."""
    bits = np.zeros(_CHUNK_SIZE, dtype=np.uint8)
    bits[values] = 1
    return np.packbits(bits)


def _unpack_payload(payload: np.ndarray) -> np.ndarray:
    """Sorted uint16 values of one bitmap payload."""
    return np.flatnonzero(np.unpackbits(payload)).astype(np.uint16)


class RoaringBitmap:
    """A compressed set of uint32 citation ordinals.

    Instances are immutable once built; all operations return new
    bitmaps.  Build with :meth:`from_sorted` (vectorized, the builder's
    path) or :meth:`from_values` (sorts and dedupes first).

    Args:
        array_max: array→bitmap flip threshold.  The default is the
            classic roaring 4096; tests pass small values to exercise
            threshold crossings cheaply.
    """

    __slots__ = ("_keys", "_payloads", "array_max")

    def __init__(self, array_max: int = ARRAY_CONTAINER_MAX):
        if not 0 < array_max < _CHUNK_SIZE:
            raise ValueError("array_max must be in [1, 65535]")
        self._keys: List[int] = []
        self._payloads: List[np.ndarray] = []
        self.array_max = array_max

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sorted(
        cls, values: np.ndarray, array_max: int = ARRAY_CONTAINER_MAX
    ) -> "RoaringBitmap":
        """Build from a sorted, duplicate-free array of ordinals."""
        bitmap = cls(array_max=array_max)
        values = np.asarray(values, dtype=np.uint32)
        if values.size == 0:
            return bitmap
        highs = (values >> _CHUNK_BITS).astype(np.uint32)
        lows = (values & (_CHUNK_SIZE - 1)).astype(np.uint16)
        keys, starts = np.unique(highs, return_index=True)
        bounds = np.append(starts, values.size)
        for i, key in enumerate(keys):
            chunk = lows[bounds[i] : bounds[i + 1]]
            bitmap._append_container(int(key), chunk)
        return bitmap

    @classmethod
    def from_values(
        cls, values: Iterable[int], array_max: int = ARRAY_CONTAINER_MAX
    ) -> "RoaringBitmap":
        """Build from any iterable of ordinals (sorted and deduped here)."""
        arr = np.unique(np.fromiter(values, dtype=np.uint32))
        return cls.from_sorted(arr, array_max=array_max)

    def _append_container(self, key: int, lows: np.ndarray) -> None:
        """Append one chunk's sorted low bits in canonical form."""
        if lows.size == 0:
            return
        if lows.size <= self.array_max:
            payload = np.ascontiguousarray(lows, dtype=np.uint16)
        else:
            payload = _pack_low16(lows)
        self._keys.append(key)
        self._payloads.append(payload)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @staticmethod
    def _is_array(payload: np.ndarray) -> bool:
        return payload.dtype == np.uint16

    @property
    def container_kinds(self) -> Tuple[str, ...]:
        """``"array"``/``"bitmap"`` per container, in key order."""
        return tuple(
            "array" if self._is_array(p) else "bitmap" for p in self._payloads
        )

    def __len__(self) -> int:
        total = 0
        for payload in self._payloads:
            if self._is_array(payload):
                total += payload.size
            else:
                total += int(POPCOUNT_TABLE[payload].sum())
        return total

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, value: int) -> bool:
        key, low = value >> _CHUNK_BITS, value & (_CHUNK_SIZE - 1)
        try:
            slot = self._keys.index(key)
        except ValueError:
            return False
        payload = self._payloads[slot]
        if self._is_array(payload):
            pos = int(np.searchsorted(payload, low))
            return pos < payload.size and int(payload[pos]) == low
        return bool(payload[low >> 3] & _BIT_MASKS[low & 7])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoaringBitmap):
            return NotImplemented
        if self._keys != other._keys:
            return False
        return all(
            a.dtype == b.dtype and np.array_equal(a, b)
            for a, b in zip(self._payloads, other._payloads)
        )

    def __hash__(self) -> int:  # immutable by convention
        return hash((tuple(self._keys), len(self)))

    def to_array(self) -> np.ndarray:
        """All ordinals as a sorted uint32 array."""
        pieces: List[np.ndarray] = []
        for key, payload in zip(self._keys, self._payloads):
            lows = payload if self._is_array(payload) else _unpack_payload(payload)
            pieces.append(lows.astype(np.uint32) | np.uint32(key << _CHUNK_BITS))
        if not pieces:
            return np.empty(0, dtype=np.uint32)
        return np.concatenate(pieces)

    def to_packed(self, universe: int) -> np.ndarray:
        """One ``cost_arrays``-compatible packed row over ``universe`` bits.

        Bit ``j`` (MSB-first within each byte) is set iff ordinal ``j``
        is a member — the exact layout ``CostArrays.packed_results``
        rows use, so the result feeds the existing popcount /
        ``bitwise_or`` kernels directly.
        """
        row = np.zeros((universe + 7) >> 3, dtype=np.uint8)
        for key, payload in zip(self._keys, self._payloads):
            base = key << _CHUNK_BITS
            if base >= universe:
                raise ValueError("ordinal %d outside universe %d" % (base, universe))
            if self._is_array(payload):
                values = payload.astype(np.int64) + base
                if values.size and int(values[-1]) >= universe:
                    raise ValueError("ordinal outside universe %d" % universe)
                np.bitwise_or.at(row, values >> 3, _BIT_MASKS[values & 7])
            else:
                # Whole-chunk copy: the container's byte layout is the
                # row's byte layout, shifted by the chunk base.
                start = base >> 3
                stop = min(start + BITMAP_CONTAINER_BYTES, row.size)
                np.bitwise_or(
                    row[start:stop], payload[: stop - start], out=row[start:stop]
                )
                spill = _unpack_payload(payload)
                if spill.size and base + int(spill[-1]) >= universe:
                    raise ValueError("ordinal outside universe %d" % universe)
        return row

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "RoaringBitmap") -> "RoaringBitmap":
        """Set union; the result inherits ``self.array_max``."""
        out = RoaringBitmap(array_max=self.array_max)
        i = j = 0
        while i < len(self._keys) or j < len(other._keys):
            if j >= len(other._keys) or (
                i < len(self._keys) and self._keys[i] < other._keys[j]
            ):
                out._adopt(self._keys[i], self._payloads[i])
                i += 1
            elif i >= len(self._keys) or other._keys[j] < self._keys[i]:
                out._adopt(other._keys[j], other._payloads[j])
                j += 1
            else:
                merged = self._union_payloads(self._payloads[i], other._payloads[j])
                out._append_container(self._keys[i], merged)
                i += 1
                j += 1
        return out

    def intersect(self, other: "RoaringBitmap") -> "RoaringBitmap":
        """Set intersection; the result inherits ``self.array_max``."""
        out = RoaringBitmap(array_max=self.array_max)
        i = j = 0
        while i < len(self._keys) and j < len(other._keys):
            if self._keys[i] < other._keys[j]:
                i += 1
            elif other._keys[j] < self._keys[i]:
                j += 1
            else:
                lows = self._intersect_payloads(self._payloads[i], other._payloads[j])
                out._append_container(self._keys[i], lows)
                i += 1
                j += 1
        return out

    @staticmethod
    def intersect_many(bitmaps: Sequence["RoaringBitmap"]) -> "RoaringBitmap":
        """AND of several bitmaps, smallest-first to shrink intermediates."""
        if not bitmaps:
            raise ValueError("intersect_many needs at least one bitmap")
        ordered = sorted(bitmaps, key=len)
        result = ordered[0]
        for bitmap in ordered[1:]:
            if not result:
                break
            result = result.intersect(bitmap)
        return result

    def _adopt(self, key: int, payload: np.ndarray) -> None:
        """Copy one container verbatim, re-canonicalizing for our threshold."""
        if self._is_array(payload):
            self._append_container(key, payload)
        else:
            count = int(POPCOUNT_TABLE[payload].sum())
            if count <= self.array_max:
                self._append_container(key, _unpack_payload(payload))
            else:
                self._keys.append(key)
                self._payloads.append(payload.copy())

    def _union_payloads(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Sorted low bits of the union of two same-key containers."""
        if self._is_array(a) and self._is_array(b):
            return np.union1d(a, b).astype(np.uint16)
        bits_a = a if not self._is_array(a) else _pack_low16(a)
        bits_b = b if not self._is_array(b) else _pack_low16(b)
        return _unpack_payload(np.bitwise_or(bits_a, bits_b))

    def _intersect_payloads(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Sorted low bits of the intersection of two same-key containers."""
        a_is_array = self._is_array(a)
        b_is_array = self._is_array(b)
        if a_is_array and b_is_array:
            return np.intersect1d(a, b).astype(np.uint16)
        if a_is_array or b_is_array:
            values, bits = (a, b) if a_is_array else (b, a)
            hits = (bits[values >> 3] & _BIT_MASKS[values & 7]) != 0
            return values[hits]
        return _unpack_payload(np.bitwise_and(a, b))

    # ------------------------------------------------------------------
    # Serialization (the on-disk per-concept blob format)
    # ------------------------------------------------------------------
    def serialize(self) -> bytes:
        """Deterministic little-endian byte form (see module docstring)."""
        parts = [_HEADER.pack(len(self._keys))]
        for key, payload in zip(self._keys, self._payloads):
            if self._is_array(payload):
                parts.append(_CONTAINER.pack(key, _ARRAY_KIND, payload.size))
                parts.append(payload.astype("<u2", copy=False).tobytes())
            else:
                count = int(POPCOUNT_TABLE[payload].sum())
                parts.append(_CONTAINER.pack(key, _BITMAP_KIND, count))
                parts.append(payload.tobytes())
        return b"".join(parts)

    @classmethod
    def deserialize(
        cls,
        buffer: bytes,
        offset: int = 0,
        array_max: int = ARRAY_CONTAINER_MAX,
        length: Optional[int] = None,
    ) -> "RoaringBitmap":
        """Rebuild a bitmap serialized by :meth:`serialize`.

        Args:
            buffer: bytes-like object (a memmapped blob slice works:
                pass the raw ``np.memmap`` and an ``offset``).
            offset: byte position where the bitmap starts.
            array_max: threshold the bitmap was built with.
            length: expected byte length; validated when given.
        """
        view = memoryview(buffer)
        start = offset
        (n_containers,) = _HEADER.unpack_from(view, offset)
        offset += _HEADER.size
        bitmap = cls(array_max=array_max)
        for _ in range(n_containers):
            key, kind, count = _CONTAINER.unpack_from(view, offset)
            offset += _CONTAINER.size
            if kind == _ARRAY_KIND:
                payload = np.frombuffer(view, dtype="<u2", count=count, offset=offset)
                offset += 2 * count
                bitmap._keys.append(key)
                bitmap._payloads.append(payload.astype(np.uint16))
            elif kind == _BITMAP_KIND:
                payload = np.frombuffer(
                    view, dtype=np.uint8, count=BITMAP_CONTAINER_BYTES, offset=offset
                )
                offset += BITMAP_CONTAINER_BYTES
                bitmap._keys.append(key)
                bitmap._payloads.append(payload.copy())
            else:
                raise ValueError("unknown container kind %d" % kind)
        if length is not None and offset - start != length:
            raise ValueError(
                "bitmap length mismatch: read %d bytes, expected %d"
                % (offset - start, length)
            )
        return bitmap

    def byte_size(self) -> int:
        """Length of :meth:`serialize` output without materializing it."""
        total = _HEADER.size
        for payload in self._payloads:
            total += _CONTAINER.size
            total += 2 * payload.size if self._is_array(payload) else payload.size
        return total


# ----------------------------------------------------------------------
# Kernel-level intersection over the serialized blob
# ----------------------------------------------------------------------
#
# ``MmapStore.boolean_and`` used to deserialize every concept's whole
# bitmap (copying every container payload out of the mmap) only to throw
# most of it away during the intersection.  The functions below work on
# the serialized form directly: a cheap directory scan finds each
# bitmap's container keys (at most ``universe / 2^16`` of them — 16 for
# a 1M-citation corpus), key galloping keeps only the keys present in
# *every* operand, and just those containers are touched — bitmap×bitmap
# as ``np.bitwise_and`` over zero-copy payload views with a single
# unpack of the final result, array×anything by galloping the smallest
# array through byte/bit membership tests.


def _scan_directory(
    view: memoryview, offset: int, length: int
) -> List[Tuple[int, int, int, int]]:
    """Container directory of one serialized bitmap.

    Returns ``(key, kind, cardinality, payload_offset)`` per container,
    in ascending key order (the canonical serialization order), without
    copying any payload bytes.
    """
    end = offset + length
    (n_containers,) = _HEADER.unpack_from(view, offset)
    offset += _HEADER.size
    directory: List[Tuple[int, int, int, int]] = []
    for _ in range(n_containers):
        key, kind, count = _CONTAINER.unpack_from(view, offset)
        offset += _CONTAINER.size
        directory.append((key, kind, count, offset))
        if kind == _ARRAY_KIND:
            offset += 2 * count
        elif kind == _BITMAP_KIND:
            offset += BITMAP_CONTAINER_BYTES
        else:
            raise ValueError("unknown container kind %d" % kind)
    if offset > end:
        raise ValueError(
            "serialized bitmap overruns its span: read to %d, span ends %d"
            % (offset, end)
        )
    return directory


def _array_view(view: memoryview, entry: Tuple[int, int, int, int]) -> np.ndarray:
    """Zero-copy uint16 view of an array container's payload."""
    _, _, count, payload_offset = entry
    return np.frombuffer(view, dtype="<u2", count=count, offset=payload_offset)


def _bitmap_view(view: memoryview, entry: Tuple[int, int, int, int]) -> np.ndarray:
    """Zero-copy uint8 view of a bitmap container's payload."""
    _, _, _, payload_offset = entry
    return np.frombuffer(
        view, dtype=np.uint8, count=BITMAP_CONTAINER_BYTES, offset=payload_offset
    )


def _intersect_key_group(
    view: memoryview, entries: List[Tuple[int, int, int, int]]
) -> np.ndarray:
    """Sorted low-16-bit values common to every same-key container."""
    arrays = [e for e in entries if e[1] == _ARRAY_KIND]
    bitmaps = [e for e in entries if e[1] == _BITMAP_KIND]
    if not arrays:
        # All-dense chunk: AND the packed payloads byte-wise and unpack
        # only the final result.
        first = _bitmap_view(view, bitmaps[0])
        if len(bitmaps) == 1:
            return _unpack_payload(first)
        acc = np.bitwise_and(first, _bitmap_view(view, bitmaps[1]))
        for entry in bitmaps[2:]:
            np.bitwise_and(acc, _bitmap_view(view, entry), out=acc)
        return _unpack_payload(acc)
    # Gallop the smallest array through the other containers: sparse
    # candidates shrink monotonically, and bitmap membership is a
    # byte-index + bit-mask gather.
    arrays.sort(key=lambda entry: entry[2])
    values = _array_view(view, arrays[0])
    for entry in arrays[1:]:
        if values.size == 0:
            break
        values = np.intersect1d(
            values, _array_view(view, entry), assume_unique=True
        )
    for entry in bitmaps:
        if values.size == 0:
            break
        bits = _bitmap_view(view, entry)
        hits = (bits[values >> 3] & _BIT_MASKS[values & 7]) != 0
        values = values[hits]
    return np.ascontiguousarray(values, dtype=np.uint16)


def intersect_serialized(
    buffer: "bytes | np.ndarray",
    spans: Sequence[Tuple[int, int]],
    array_max: int = ARRAY_CONTAINER_MAX,  # noqa: ARG001 - layout symmetry
) -> np.ndarray:
    """AND of several serialized bitmaps, straight off the blob.

    Args:
        buffer: bytes-like object holding the serialized bitmaps (the
            substrate's memmapped ``bitmap_blob.npy`` works unchanged).
        spans: ``(offset, length)`` byte span of each operand bitmap.
        array_max: accepted for signature symmetry with
            :meth:`RoaringBitmap.deserialize`; the intersection itself
            never re-canonicalizes, so the threshold does not matter.

    Returns:
        Sorted ``uint32`` ordinals present in *every* operand.  Never
        inflates a non-matching container: only payloads whose 16-bit
        key survives the gallop across all directories are read at all.
    """
    if not spans:
        raise ValueError("intersect_serialized needs at least one span")
    view = memoryview(buffer)
    directories = [
        _scan_directory(view, offset, length) for offset, length in spans
    ]
    # Key gallop: keys common to all directories, smallest-first so the
    # candidate set only shrinks.
    directories.sort(key=len)
    key_maps = [
        {entry[0]: entry for entry in directory} for directory in directories
    ]
    common_keys = [
        key
        for key in key_maps[0]
        if all(key in other for other in key_maps[1:])
    ]
    common_keys.sort()
    pieces: List[np.ndarray] = []
    for key in common_keys:
        lows = _intersect_key_group(view, [m[key] for m in key_maps])
        if lows.size:
            pieces.append(lows.astype(np.uint32) | np.uint32(key << _CHUNK_BITS))
    if not pieces:
        return np.empty(0, dtype=np.uint32)
    return np.concatenate(pieces)
