"""The ``CorpusStore`` interface and its two backends.

Every online layer that needs corpus data — search, the eutils client,
the BioNav database, the navigation-tree builder, cluster workers —
consumes this one interface instead of reaching into in-memory tables:

* :class:`InMemoryStore` wraps the toy
  :class:`~repro.corpus.medline.MedlineDatabase`, so seed tests and
  small fixtures keep their exact behaviour;
* :class:`MmapStore` opens a directory built by
  :class:`~repro.substrate.builder.SubstrateBuilder` read-only with
  ``np.load(mmap_mode="r")``.  Nothing is copied at open time, and a
  store pickled across a process boundary (``fork`` cluster workers,
  spawn-based tests) reopens by path — every worker maps the same
  files, so the corpus lives once in the OS page cache.

Both backends answer the same questions with the same values: citation
lookup, per-concept membership (as pmid arrays or compressed bitmaps),
boolean-AND concept queries, the ``annotations_for_result`` restriction
the navigation tree consumes, and the ``LT(n)`` MEDLINE-wide counts.
The equivalence suite in ``tests/test_substrate_equivalence.py`` holds
them bit-identical end to end (ResultSets and Opt-EdgeCut cuts).
"""

from __future__ import annotations

import json
import os
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.arrays import ArrayBackedHierarchy, HierarchyArrays
from repro.hierarchy.concept import ConceptHierarchy
from repro.substrate.roaring import RoaringBitmap, intersect_serialized

__all__ = ["CorpusStore", "InMemoryStore", "MmapStore"]


class CorpusStore:
    """Read-only corpus access: citations, concept membership, counts.

    Subclasses implement the primitive accessors; shared derived
    answers (grouping a result set by concept, multi-concept AND) are
    provided here in terms of them but may be overridden with faster
    backend-specific paths.
    """

    #: Human-readable backend name, surfaced in ``store_info()``.
    backend = "abstract"

    # -- identity -------------------------------------------------------
    @property
    def manifest_digest(self) -> Optional[str]:
        """Digest of the offline build manifest (None when not built)."""
        return None

    def store_info(self) -> Dict[str, object]:
        """Observability block for ``health()`` endpoints."""
        return {
            "backend": self.backend,
            "path": getattr(self, "path", None),
            "manifest": self.manifest_digest,
            "citations": len(self),
        }

    def hierarchy(self) -> Optional[ConceptHierarchy]:
        """The hierarchy captured at build time (None for raw corpora)."""
        return None

    # -- citation table -------------------------------------------------
    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, pmid: int) -> bool:
        raise NotImplementedError

    def get(self, pmid: int) -> Citation:
        """One citation; raises KeyError for unknown PMIDs."""
        raise NotImplementedError

    def get_many(self, pmids: Sequence[int]) -> List[Citation]:
        """Several citations, preserving the requested order."""
        return [self.get(pmid) for pmid in pmids]

    def iter_citations(self) -> Iterator[Citation]:
        """Stream every citation in ascending-PMID order."""
        raise NotImplementedError

    def pmids(self) -> List[int]:
        """All stored PMIDs, ascending."""
        raise NotImplementedError

    def concepts_of(self, pmid: int) -> Tuple[int, ...]:
        """Sorted association set of one citation (KeyError when absent)."""
        raise NotImplementedError

    # -- concept membership ---------------------------------------------
    @property
    def num_concepts(self) -> int:
        """Size of the concept id space the store was built over."""
        raise NotImplementedError

    def citations_for_concept(self, concept: int) -> np.ndarray:
        """Ascending int64 PMIDs associated with ``concept``."""
        raise NotImplementedError

    def concept_bitmap(self, concept: int) -> RoaringBitmap:
        """Compressed citation-ordinal set of ``concept``.

        Ordinals index the ascending PMID order of :meth:`pmids`.
        """
        raise NotImplementedError

    def result_count(self, concept: int) -> int:
        """Citations in *this corpus* associated with ``concept``."""
        raise NotImplementedError

    def medline_count(self, concept: int) -> int:
        """``LT(n)``: corpus count plus the simulated background mass."""
        raise NotImplementedError

    # -- derived answers ------------------------------------------------
    def boolean_and(self, concepts: Sequence[int]) -> np.ndarray:
        """PMIDs associated with *every* concept, ascending (int64).

        This is the substrate half of a ``term[mh]`` conjunctive query;
        backends may override with bitmap kernels.
        """
        if not concepts:
            return np.empty(0, dtype=np.int64)
        sets = sorted(
            (self.citations_for_concept(c) for c in concepts), key=len
        )
        result = sets[0]
        for other in sets[1:]:
            if result.size == 0:
                break
            result = np.intersect1d(result, other, assume_unique=True)
        return result.astype(np.int64, copy=False)

    def concepts_of_citations(
        self, pmids: Sequence[int]
    ) -> Dict[int, Tuple[int, ...]]:
        """Concept lists for a query result; missing PMIDs are skipped."""
        out: Dict[int, Tuple[int, ...]] = {}
        for pmid in pmids:
            if pmid in self:
                out[pmid] = self.concepts_of(pmid)
        return out

    def annotations_for_result(
        self, pmids: Sequence[int]
    ) -> Dict[int, FrozenSet[int]]:
        """concept → set of result PMIDs attached to it.

        Exactly the association-table restriction the initial
        navigation tree is built from.
        """
        by_concept: Dict[int, set] = {}
        for pmid, concepts in self.concepts_of_citations(pmids).items():
            for concept in concepts:
                by_concept.setdefault(concept, set()).add(pmid)
        return {concept: frozenset(ids) for concept, ids in by_concept.items()}

    def annotation_arrays(
        self, pmids: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR form of :meth:`annotations_for_result`.

        Returns ``(concepts, offsets, values)``: annotated concept ids
        sorted ascending (int64), int64 CSR offsets, and per-concept
        sorted result PMIDs (int64) — the buffers the array-native
        navigation-tree build consumes directly.  The generic
        implementation flattens the dict answer; ``MmapStore`` overrides
        it with a pure-array gather.
        """
        annotations = self.annotations_for_result(pmids)
        concepts = np.asarray(sorted(annotations), dtype=np.int64)
        rows = [sorted(annotations[c]) for c in concepts.tolist()]
        lengths = np.fromiter(
            (len(row) for row in rows), dtype=np.int64, count=len(rows)
        )
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        values = np.fromiter(
            (pmid for row in rows for pmid in row),
            dtype=np.int64,
            count=int(offsets[-1]),
        )
        return concepts, offsets, values


class InMemoryStore(CorpusStore):
    """Adapter presenting a :class:`MedlineDatabase` as a ``CorpusStore``.

    Concept-major views (pmid arrays, bitmaps) are derived lazily on
    first use and cached; citation access delegates straight through,
    so wrapping is free for code paths that never ask concept-major
    questions.
    """

    backend = "memory"

    def __init__(
        self,
        medline: MedlineDatabase,
        hierarchy: Optional[ConceptHierarchy] = None,
        manifest_digest: Optional[str] = None,
    ):
        self._medline = medline
        self._hierarchy = hierarchy
        self._digest = manifest_digest
        self._by_concept: Optional[Dict[int, np.ndarray]] = None
        self._sorted_pmids: Optional[np.ndarray] = None

    @property
    def medline(self) -> MedlineDatabase:
        """The wrapped in-memory corpus."""
        return self._medline

    @property
    def manifest_digest(self) -> Optional[str]:
        """Digest of a substrate build this corpus was loaded from, if any."""
        return self._digest

    def hierarchy(self) -> Optional[ConceptHierarchy]:
        return self._hierarchy

    # -- citation table -------------------------------------------------
    def __len__(self) -> int:
        return len(self._medline)

    def __contains__(self, pmid: int) -> bool:
        return pmid in self._medline

    def get(self, pmid: int) -> Citation:
        return self._medline.get(pmid)

    def get_many(self, pmids: Sequence[int]) -> List[Citation]:
        return self._medline.get_many(pmids)

    def iter_citations(self) -> Iterator[Citation]:
        for pmid in self._medline.pmids():
            yield self._medline.get(pmid)

    def pmids(self) -> List[int]:
        return self._medline.pmids()

    def concepts_of(self, pmid: int) -> Tuple[int, ...]:
        return tuple(sorted(set(self._medline.get(pmid).concepts)))

    # -- concept membership ---------------------------------------------
    def _concept_index(self) -> Dict[int, np.ndarray]:
        if self._by_concept is None:
            buckets: Dict[int, List[int]] = {}
            for citation in self._medline.iter_citations():
                for concept in set(citation.concepts):
                    buckets.setdefault(concept, []).append(citation.pmid)
            self._by_concept = {
                concept: np.array(sorted(ids), dtype=np.int64)
                for concept, ids in buckets.items()
            }
        return self._by_concept

    def _pmid_order(self) -> np.ndarray:
        if self._sorted_pmids is None:
            self._sorted_pmids = np.array(self._medline.pmids(), dtype=np.int64)
        return self._sorted_pmids

    @property
    def num_concepts(self) -> int:
        """Hierarchy size when known, else one past the max observed concept."""
        if self._hierarchy is not None:
            return len(self._hierarchy)
        index = self._concept_index()
        return max(index) + 1 if index else 0

    def citations_for_concept(self, concept: int) -> np.ndarray:
        return self._concept_index().get(concept, np.empty(0, dtype=np.int64))

    def concept_bitmap(self, concept: int) -> RoaringBitmap:
        members = self.citations_for_concept(concept)
        ordinals = np.searchsorted(self._pmid_order(), members)
        return RoaringBitmap.from_sorted(ordinals.astype(np.uint32))

    def result_count(self, concept: int) -> int:
        return self._medline.corpus_count(concept)

    def medline_count(self, concept: int) -> int:
        return self._medline.medline_count(concept)

    def background_counts(self) -> Dict[int, int]:
        """Simulated out-of-corpus counts (persistence passthrough)."""
        return self._medline.background_counts()


class MmapStore(CorpusStore):
    """Zero-copy read-only view over a built substrate directory.

    All columnar files open as ``np.load(..., mmap_mode="r")`` memmaps:
    opening a 1M-citation store touches only headers, and N processes
    opening the same directory share one set of pages.  Pickling (the
    cluster wire format) reduces to the directory path, so shipping a
    store to a worker costs bytes, not the corpus.
    """

    backend = "mmap"

    def __init__(self, path: str):
        self.path = os.path.abspath(path)
        with open(os.path.join(self.path, "manifest.json"), "rb") as handle:
            self._manifest_bytes = handle.read()
        self.manifest: Dict[str, object] = json.loads(self._manifest_bytes)
        if self.manifest.get("format_version") != 1:
            raise ValueError(
                "unsupported substrate format_version %r"
                % self.manifest.get("format_version")
            )

        def _mm(name: str) -> np.ndarray:
            target = os.path.join(self.path, name)
            try:
                return np.load(target, mmap_mode="r")
            except ValueError:
                # Zero-length arrays cannot be mmapped; load eagerly.
                return np.load(target)

        self._pmids = _mm("pmids.npy")
        self._years = _mm("years.npy")
        self._cit_offsets = _mm("cit_concept_offsets.npy")
        self._cit_concepts = _mm("cit_concepts.npy")
        self._concept_offsets = _mm("concept_offsets.npy")
        self._concept_citations = _mm("concept_citations.npy")
        self._concept_counts = _mm("concept_counts.npy")
        self._concept_lt = _mm("concept_lt.npy")
        self._bitmap_offsets = _mm("bitmap_offsets.npy")
        self._bitmap_blob = _mm("bitmap_blob.npy")
        params = self.manifest.get("params", {})
        self._array_max = int(params.get("array_max", 4096))
        self._hierarchy_cache: Optional[ConceptHierarchy] = None

    @classmethod
    def open(cls, path: str) -> "MmapStore":  # repro: ignore[shadowed-builtin]
        """Open a directory written by ``SubstrateBuilder``."""
        return cls(path)

    def __reduce__(self):
        # Reopen-by-path: the memmaps themselves never cross process
        # boundaries, each process maps the shared files directly.
        return (MmapStore.open, (self.path,))

    @property
    def manifest_digest(self) -> Optional[str]:
        """The build manifest digest — the directory's content identity."""
        return str(self.manifest["digest"])

    def hierarchy(self) -> Optional[ConceptHierarchy]:
        """The build-time hierarchy, mmapped from its positional arrays.

        Directories written since the arrays landed carry ``hier_*.npy``
        files; opening them is a handful of header reads, so a cold
        hierarchy access costs file opens instead of rebuilding ~48k
        Python nodes from ``hierarchy.jsonl``.  Older directories fall
        back to the jsonl record stream.
        """
        if self._hierarchy_cache is None:
            if HierarchyArrays.present(self.path):
                self._hierarchy_cache = ArrayBackedHierarchy.open(self.path)
                return self._hierarchy_cache
            records_path = os.path.join(self.path, "hierarchy.jsonl")
            if not os.path.exists(records_path):
                return None

            def _records():
                with open(records_path) as handle:
                    for line in handle:
                        if line.strip():
                            uid, label, parent = json.loads(line)
                            yield uid, label, parent

            self._hierarchy_cache = ConceptHierarchy.from_records(_records())
        return self._hierarchy_cache

    # -- citation table -------------------------------------------------
    def __len__(self) -> int:
        return int(self._pmids.size)

    def _ordinal(self, pmid: int) -> int:
        pos = int(np.searchsorted(self._pmids, pmid))
        if pos >= self._pmids.size or int(self._pmids[pos]) != pmid:
            raise KeyError(pmid)
        return pos

    def __contains__(self, pmid: int) -> bool:
        try:
            self._ordinal(pmid)
        except KeyError:
            return False
        return True

    def _citation_at(self, ordinal: int) -> Citation:
        pmid = int(self._pmids[ordinal])
        concepts = tuple(
            int(c)
            for c in self._cit_concepts[
                int(self._cit_offsets[ordinal]) : int(self._cit_offsets[ordinal + 1])
            ]
        )
        return Citation(
            pmid=pmid,
            title="Synthetic citation %d" % pmid,
            year=int(self._years[ordinal]),
            index_concepts=concepts,
        )

    def get(self, pmid: int) -> Citation:
        return self._citation_at(self._ordinal(pmid))

    def iter_citations(self) -> Iterator[Citation]:
        for ordinal in range(len(self)):
            yield self._citation_at(ordinal)

    def pmids(self) -> List[int]:
        return self._pmids.tolist()

    def pmid_array(self) -> np.ndarray:
        """The ascending PMID column itself (zero-copy memmap)."""
        return self._pmids

    def concepts_of(self, pmid: int) -> Tuple[int, ...]:
        ordinal = self._ordinal(pmid)
        row = self._cit_concepts[
            int(self._cit_offsets[ordinal]) : int(self._cit_offsets[ordinal + 1])
        ]
        return tuple(int(c) for c in row)

    # -- concept membership ---------------------------------------------
    @property
    def num_concepts(self) -> int:
        """Concept id space recorded at build time (counts-array length)."""
        return int(self._concept_counts.size)

    def _check_concept(self, concept: int) -> None:
        if not 0 <= concept < self.num_concepts:
            raise IndexError("concept %d outside store universe" % concept)

    def _concept_ordinals(self, concept: int) -> np.ndarray:
        self._check_concept(concept)
        return self._concept_citations[
            int(self._concept_offsets[concept]) : int(self._concept_offsets[concept + 1])
        ]

    def citations_for_concept(self, concept: int) -> np.ndarray:
        ordinals = self._concept_ordinals(concept)
        return np.asarray(self._pmids[ordinals], dtype=np.int64)

    def concept_bitmap(self, concept: int) -> RoaringBitmap:
        self._check_concept(concept)
        start = int(self._bitmap_offsets[concept])
        stop = int(self._bitmap_offsets[concept + 1])
        return RoaringBitmap.deserialize(
            self._bitmap_blob,
            offset=start,
            array_max=self._array_max,
            length=stop - start,
        )

    def result_count(self, concept: int) -> int:
        self._check_concept(concept)
        return int(self._concept_counts[concept])

    def medline_count(self, concept: int) -> int:
        if not 0 <= concept < self.num_concepts:
            return 0
        return int(self._concept_lt[concept])

    # -- derived answers (bitmap-accelerated) ---------------------------
    def boolean_and(self, concepts: Sequence[int]) -> np.ndarray:
        """AND over the serialized roaring blob, no bitmap inflation.

        :func:`~repro.substrate.roaring.intersect_serialized` galloping
        over the per-concept byte spans touches only the containers
        whose 16-bit key appears in *every* operand; everything else in
        the memmapped blob stays cold on disk.
        """
        if not concepts:
            return np.empty(0, dtype=np.int64)
        spans = []
        for concept in concepts:
            self._check_concept(concept)
            start = int(self._bitmap_offsets[concept])
            stop = int(self._bitmap_offsets[concept + 1])
            spans.append((start, stop - start))
        ordinals = intersect_serialized(
            self._bitmap_blob, spans, array_max=self._array_max
        )
        return np.asarray(self._pmids[ordinals.astype(np.int64)], dtype=np.int64)

    def _result_ordinals(self, pmids: Sequence[int]) -> np.ndarray:
        """Citation ordinals of the PMIDs present in the store (batched).

        One ``np.searchsorted`` over the PMID column answers the whole
        request; missing PMIDs are dropped.  Order follows the input.
        """
        requested = np.asarray(pmids, dtype=np.int64)
        if requested.size == 0 or self._pmids.size == 0:
            return np.empty(0, dtype=np.int64)
        found = np.minimum(
            np.searchsorted(self._pmids, requested), self._pmids.size - 1
        )
        present = self._pmids[found] == requested
        return found[present]

    def _concept_rows(
        self, ordinals: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flattened concept rows of ``ordinals`` plus per-row lengths."""
        begins = self._cit_offsets[ordinals].astype(np.int64)
        lengths = self._cit_offsets[ordinals + 1].astype(np.int64) - begins
        total = int(lengths.sum())
        base = np.repeat(begins, lengths)
        reset = np.repeat(np.cumsum(lengths) - lengths, lengths)
        flat = self._cit_concepts[base + np.arange(total) - reset]
        return flat, lengths

    def concepts_of_citations(
        self, pmids: Sequence[int]
    ) -> Dict[int, Tuple[int, ...]]:
        """Concept rows for a result, via one batched table lookup.

        The per-PMID ``_ordinal`` + tuple loop this replaces sat on the
        tree-annotation path of every cold query; here the ordinal
        resolution is a single ``searchsorted`` and the rows come back
        as CSR slice views converted once.
        """
        ordinals = self._result_ordinals(pmids)
        if ordinals.size == 0:
            return {}
        flat, lengths = self._concept_rows(ordinals)
        flat_list = flat.tolist()
        bounds = np.zeros(len(ordinals) + 1, dtype=np.int64)
        np.cumsum(lengths, out=bounds[1:])
        bound_list = bounds.tolist()
        found_pmids = self._pmids[ordinals].tolist()
        return {
            pmid: tuple(flat_list[bound_list[i] : bound_list[i + 1]])
            for i, pmid in enumerate(found_pmids)
        }

    def annotation_arrays(
        self, pmids: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR annotations straight from the citation table (no dicts).

        Gathers the result's concept rows, inverts them with one stable
        sort by concept (ordinals ascend within the input, so each
        concept's PMID run comes out sorted), and groups with
        ``np.unique`` — the exact buffers ``NavigationTree._embed``
        ingests.
        """
        ordinals = np.unique(self._result_ordinals(pmids))
        if ordinals.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.zeros(1, dtype=np.int64), empty
        flat, lengths = self._concept_rows(ordinals)
        flat_pmids = np.repeat(self._pmids[ordinals].astype(np.int64), lengths)
        order = np.argsort(flat, kind="stable")
        concepts_sorted = np.asarray(flat, dtype=np.int64)[order]
        values = flat_pmids[order]
        concepts, starts = np.unique(concepts_sorted, return_index=True)
        offsets = np.append(starts, len(values)).astype(np.int64)
        return concepts.astype(np.int64), offsets, values
