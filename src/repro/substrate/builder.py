"""Streaming offline build of the columnar substrate directory.

:class:`SubstrateBuilder` is the reproduction of the paper's ~20-day
offline pre-processing pass (§VII): it consumes a *stream* of citation
chunks and produces a directory of mmap-able ``.npy`` files without ever
holding the corpus as Python objects.  Peak memory is bounded by the
chunk size plus a handful of per-concept ``int64`` vectors — the
association elements themselves stage through raw temp files and are
finalized into ``.npy`` memmaps with windowed copies.

On-disk layout (all arrays little-endian, loadable with
``np.load(mmap_mode="r")``):

================================  =====================================
``pmids.npy``          int64[N]   citation table key, strictly ascending
``years.npy``          int16[N]   publication years
``cit_concept_offsets.npy``       CSR offsets, citation→concepts
                       int64[N+1]
``cit_concepts.npy``   int32[P]   per-citation sorted concept rows
``concept_offsets.npy``           CSR offsets, concept→citations
                       int64[C+1]
``concept_citations.npy``         citation *ordinals* per concept,
                       uint32[P]  ascending within each concept
``concept_counts.npy`` int64[C]   per-concept result counts
``concept_lt.npy``     int64[C]   counts + background = ``LT(n)``
``bitmap_offsets.npy`` int64[C+1] byte offsets into the bitmap blob
``bitmap_blob.npy``    uint8[B]   serialized roaring bitmaps
``hierarchy.jsonl``               one (uid, label, parent) JSON per line
``hier_*.npy``                    positional hierarchy arrays (11 files,
                                  see ``repro.hierarchy.arrays``)
``manifest.json``                 file hashes, counts, params, digest
================================  =====================================

The build runs three passes: (1) stream chunks → citation columns plus
raw association elements and per-concept counts; (2) windowed
counting-sort scatter of citation ordinals into the concept-major CSR;
(3) per-concept roaring encoding into the bitmap blob.  Every byte
written is a pure function of the input stream and the builder params,
so two same-seed builds produce byte-identical files and therefore
byte-identical manifest digests — the determinism gate CI asserts.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Union

import numpy as np

from repro.corpus.citation import Citation
from repro.hierarchy.arrays import HIERARCHY_ARRAY_FILES
from repro.hierarchy.concept import ConceptHierarchy
from repro.substrate.roaring import ARRAY_CONTAINER_MAX, RoaringBitmap

__all__ = ["CitationChunk", "citation_chunks", "BuildManifest", "SubstrateBuilder"]

_FORMAT_VERSION = 1

#: Elements per windowed pass over the association tables.
_WINDOW = 1 << 21


@dataclass(frozen=True)
class CitationChunk:
    """One columnar slice of the citation stream.

    Attributes:
        pmids: int64, strictly ascending (also across chunks).
        years: int16 publication years, aligned with ``pmids``.
        lengths: int32 per-citation concept counts.
        concepts: int32 concatenation of the per-citation concept rows;
            each row strictly ascending (sorted, duplicate-free).
    """

    pmids: np.ndarray
    years: np.ndarray
    lengths: np.ndarray
    concepts: np.ndarray

    def __post_init__(self) -> None:
        if self.pmids.size != self.years.size or self.pmids.size != self.lengths.size:
            raise ValueError("chunk columns must be aligned")
        if int(self.lengths.sum()) != self.concepts.size:
            raise ValueError("lengths do not cover the concept buffer")


def citation_chunks(
    citations: Iterable[Citation], chunk_size: int = 8192
) -> Iterator[CitationChunk]:
    """Adapt a citation iterable into builder chunks.

    Rows are deduplicated and sorted here, so any ``Citation`` stream
    with ascending PMIDs (e.g. ``MedlineDatabase`` iteration order or a
    streamed JSONL corpus) is a valid builder input.
    """
    pmids, years, lengths, rows = [], [], [], []
    for citation in citations:
        row = np.unique(np.asarray(citation.concepts, dtype=np.int32))
        pmids.append(citation.pmid)
        years.append(citation.year)
        lengths.append(row.size)
        rows.append(row)
        if len(pmids) >= chunk_size:
            yield _make_chunk(pmids, years, lengths, rows)
            pmids, years, lengths, rows = [], [], [], []
    if pmids:
        yield _make_chunk(pmids, years, lengths, rows)


def _make_chunk(pmids, years, lengths, rows) -> CitationChunk:
    return CitationChunk(
        pmids=np.asarray(pmids, dtype=np.int64),
        years=np.asarray(years, dtype=np.int16),
        lengths=np.asarray(lengths, dtype=np.int32),
        concepts=(
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int32)
        ).astype(np.int32, copy=False),
    )


@dataclass(frozen=True)
class BuildManifest:
    """Outcome of one offline build.

    Attributes:
        path: the substrate directory.
        digest: sha-256 over the canonical manifest payload — equal
            digests mean byte-identical substrate directories.
        citations: rows in the citation table.
        pairs: (concept, citation) association elements.
        concepts: size of the concept id space.
    """

    path: str
    digest: str
    citations: int
    pairs: int
    concepts: int


class SubstrateBuilder:
    """Builds one substrate directory from a chunked citation stream.

    Args:
        out_dir: target directory (created; existing files overwritten).
        num_concepts: size of the concept id space (``len(hierarchy)``).
        array_max: roaring array→bitmap threshold recorded in the
            manifest and used when reopening bitmaps.
    """

    def __init__(
        self,
        out_dir: str,
        num_concepts: int,
        array_max: int = ARRAY_CONTAINER_MAX,
    ):
        if num_concepts <= 0:
            raise ValueError("num_concepts must be positive")
        self.out_dir = os.path.abspath(out_dir)
        self.num_concepts = num_concepts
        self.array_max = array_max

    # ------------------------------------------------------------------
    def build(
        self,
        chunks: Iterable[CitationChunk],
        hierarchy: Optional[ConceptHierarchy] = None,
        background: Union[None, Dict[int, int], np.ndarray] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> BuildManifest:
        """Stream ``chunks`` to disk and write the manifest.

        Args:
            chunks: the citation stream (see :class:`CitationChunk`).
            hierarchy: captured into ``hierarchy.jsonl`` when given, so
                ``MmapStore.hierarchy()`` can reopen the exact tree the
                substrate was built over.
            background: per-concept out-of-corpus MEDLINE mass added to
                the result counts to form ``LT(n)``.
            meta: caller-supplied provenance (seed, generator name)
                folded into the manifest — and therefore the digest.
        """
        os.makedirs(self.out_dir, exist_ok=True)
        raw_concepts = os.path.join(self.out_dir, "cit_concepts.raw")

        counts = np.zeros(self.num_concepts, dtype=np.int64)
        pmid_parts, year_parts, length_parts = [], [], []
        last_pmid = -1
        pairs = 0
        with open(raw_concepts, "wb") as raw:
            for chunk in chunks:
                self._validate_chunk(chunk, last_pmid)
                if chunk.pmids.size:
                    last_pmid = int(chunk.pmids[-1])
                counts += np.bincount(chunk.concepts, minlength=self.num_concepts)
                raw.write(np.ascontiguousarray(chunk.concepts, dtype="<i4").tobytes())
                pairs += chunk.concepts.size
                pmid_parts.append(np.ascontiguousarray(chunk.pmids, dtype=np.int64))
                year_parts.append(np.ascontiguousarray(chunk.years, dtype=np.int16))
                length_parts.append(
                    np.ascontiguousarray(chunk.lengths, dtype=np.int64)
                )

        pmids = _concat(pmid_parts, np.int64)
        years = _concat(year_parts, np.int16)
        lengths = _concat(length_parts, np.int64)
        citations = int(pmids.size)

        cit_offsets = np.zeros(citations + 1, dtype=np.int64)
        np.cumsum(lengths, out=cit_offsets[1:])
        concept_offsets = np.zeros(self.num_concepts + 1, dtype=np.int64)
        np.cumsum(counts, out=concept_offsets[1:])

        self._save("pmids.npy", pmids)
        self._save("years.npy", years)
        self._save("cit_concept_offsets.npy", cit_offsets)
        self._save("concept_offsets.npy", concept_offsets)
        self._save("concept_counts.npy", counts)
        self._save("concept_lt.npy", counts + self._background_array(background))
        self._raw_to_npy(raw_concepts, "cit_concepts.npy", np.int32, pairs)

        self._scatter_concept_citations(cit_offsets, concept_offsets, pairs)
        self._encode_bitmaps(concept_offsets)
        arrays_key = None
        if hierarchy is not None:
            self._write_hierarchy(hierarchy)
            # Positional hierarchy arrays next to the jsonl records: the
            # jsonl stays the portable/back-compat form, the arrays are
            # what ``MmapStore.hierarchy()`` actually opens (mmap, no
            # per-node reconstruction on the cold path).
            arrays = hierarchy.arrays()
            arrays.save(self.out_dir)
            arrays_key = arrays.content_key

        digest = self._write_manifest(
            citations, pairs, hierarchy is not None, meta, arrays_key
        )
        return BuildManifest(
            path=self.out_dir,
            digest=digest,
            citations=citations,
            pairs=pairs,
            concepts=self.num_concepts,
        )

    # ------------------------------------------------------------------
    # Pass 1 helpers
    # ------------------------------------------------------------------
    def _validate_chunk(self, chunk: CitationChunk, last_pmid: int) -> None:
        if chunk.pmids.size == 0:
            return
        if int(chunk.pmids[0]) <= last_pmid or (
            chunk.pmids.size > 1 and not bool(np.all(np.diff(chunk.pmids) > 0))
        ):
            raise ValueError("citation stream must have strictly ascending pmids")
        if chunk.concepts.size:
            if int(chunk.concepts.min()) < 0 or int(
                chunk.concepts.max()
            ) >= self.num_concepts:
                raise ValueError("concept id outside [0, num_concepts)")
            # Rows must be strictly ascending; only check within-row
            # adjacency (row boundaries may legitimately descend).
            if chunk.concepts.size > 1:
                starts = np.cumsum(chunk.lengths)[:-1]
                interior = np.ones(chunk.concepts.size - 1, dtype=bool)
                boundary = starts[(starts > 0) & (starts <= interior.size)]
                interior[boundary - 1] = False
                if not bool(np.all(np.diff(chunk.concepts)[interior] > 0)):
                    raise ValueError(
                        "per-citation concept rows must be sorted unique"
                    )

    def _background_array(
        self, background: Union[None, Dict[int, int], np.ndarray]
    ) -> np.ndarray:
        out = np.zeros(self.num_concepts, dtype=np.int64)
        if background is None:
            return out
        if isinstance(background, dict):
            for concept, count in background.items():
                if 0 <= concept < self.num_concepts:
                    out[concept] = count
            return out
        arr = np.asarray(background, dtype=np.int64)
        if arr.size != self.num_concepts:
            raise ValueError("background array must have num_concepts entries")
        return arr

    # ------------------------------------------------------------------
    # Pass 2: concept-major CSR via windowed counting-sort scatter
    # ------------------------------------------------------------------
    def _scatter_concept_citations(
        self, cit_offsets: np.ndarray, concept_offsets: np.ndarray, pairs: int
    ) -> None:
        if pairs == 0:
            self._save("concept_citations.npy", np.empty(0, dtype=np.uint32))
            return
        out = np.lib.format.open_memmap(
            os.path.join(self.out_dir, "concept_citations.npy"),
            mode="w+",
            dtype=np.uint32,
            shape=(pairs,),
        )
        src = np.load(os.path.join(self.out_dir, "cit_concepts.npy"), mmap_mode="r")
        cursors = concept_offsets[:-1].copy()
        for lo in range(0, pairs, _WINDOW):
            hi = min(pairs, lo + _WINDOW)
            concepts = np.asarray(src[lo:hi], dtype=np.int64)
            # Element index → owning citation ordinal.  Elements arrive
            # in ascending-ordinal order, so processing windows in file
            # order keeps each concept's ordinal list ascending.
            ordinals = (
                np.searchsorted(cit_offsets, np.arange(lo, hi), side="right") - 1
            )
            order = np.argsort(concepts, kind="stable")
            sorted_concepts = concepts[order]
            sorted_ordinals = ordinals[order]
            uniq, starts, group_sizes = np.unique(
                sorted_concepts, return_index=True, return_counts=True
            )
            within = np.arange(sorted_concepts.size) - np.repeat(starts, group_sizes)
            positions = cursors[sorted_concepts] + within
            out[positions] = sorted_ordinals.astype(np.uint32)
            cursors[uniq] += group_sizes
        out.flush()
        del out

    # ------------------------------------------------------------------
    # Pass 3: compressed bitmaps
    # ------------------------------------------------------------------
    def _encode_bitmaps(self, concept_offsets: np.ndarray) -> None:
        members = np.load(
            os.path.join(self.out_dir, "concept_citations.npy"), mmap_mode="r"
        )
        raw_blob = os.path.join(self.out_dir, "bitmap_blob.raw")
        offsets = np.zeros(self.num_concepts + 1, dtype=np.int64)
        with open(raw_blob, "wb") as blob:
            for concept in range(self.num_concepts):
                lo = int(concept_offsets[concept])
                hi = int(concept_offsets[concept + 1])
                bitmap = RoaringBitmap.from_sorted(
                    np.asarray(members[lo:hi]), array_max=self.array_max
                )
                data = bitmap.serialize()
                blob.write(data)
                offsets[concept + 1] = offsets[concept] + len(data)
        self._save("bitmap_offsets.npy", offsets)
        self._raw_to_npy(raw_blob, "bitmap_blob.npy", np.uint8, int(offsets[-1]))

    # ------------------------------------------------------------------
    # File plumbing
    # ------------------------------------------------------------------
    def _save(self, name: str, array: np.ndarray) -> None:
        np.save(os.path.join(self.out_dir, name.replace(".npy", "")), array)

    def _raw_to_npy(self, raw_path: str, name: str, dtype, count: int) -> None:
        """Finalize a raw temp file into ``.npy`` with windowed copies."""
        if count == 0:
            self._save(name, np.empty(0, dtype=dtype))
            os.remove(raw_path)
            return
        out = np.lib.format.open_memmap(
            os.path.join(self.out_dir, name), mode="w+", dtype=dtype, shape=(count,)
        )
        itemsize = np.dtype(dtype).itemsize
        with open(raw_path, "rb") as src:
            position = 0
            while position < count:
                step = min(_WINDOW, count - position)
                buffer = src.read(step * itemsize)
                out[position : position + step] = np.frombuffer(buffer, dtype=dtype)
                position += step
        out.flush()
        del out
        os.remove(raw_path)

    def _write_hierarchy(self, hierarchy: ConceptHierarchy) -> None:
        if len(hierarchy) != self.num_concepts:
            raise ValueError(
                "hierarchy has %d concepts, builder configured for %d"
                % (len(hierarchy), self.num_concepts)
            )
        path = os.path.join(self.out_dir, "hierarchy.jsonl")
        with open(path, "w") as handle:
            for uid, label, parent in hierarchy.to_records():
                handle.write(json.dumps([uid, label, parent]) + "\n")

    def _write_manifest(
        self,
        citations: int,
        pairs: int,
        with_hierarchy: bool,
        meta: Optional[Dict[str, object]],
        hierarchy_arrays_key: Optional[str] = None,
    ) -> str:
        names = [
            "pmids.npy",
            "years.npy",
            "cit_concept_offsets.npy",
            "cit_concepts.npy",
            "concept_offsets.npy",
            "concept_citations.npy",
            "concept_counts.npy",
            "concept_lt.npy",
            "bitmap_offsets.npy",
            "bitmap_blob.npy",
        ]
        if with_hierarchy:
            names.append("hierarchy.jsonl")
            names.extend(HIERARCHY_ARRAY_FILES)
        files = {}
        for name in names:
            path = os.path.join(self.out_dir, name)
            files[name] = {
                "sha256": _file_sha256(path),
                "bytes": os.path.getsize(path),
            }
        payload = {
            "format_version": _FORMAT_VERSION,
            "citations": citations,
            "pairs": pairs,
            "concepts": self.num_concepts,
            "params": {
                "array_max": self.array_max,
                "num_concepts": self.num_concepts,
            },
            "meta": meta or {},
            "files": files,
        }
        if hierarchy_arrays_key is not None:
            payload["hierarchy_arrays"] = hierarchy_arrays_key
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        payload["digest"] = digest
        manifest_path = os.path.join(self.out_dir, "manifest.json")
        tmp_path = manifest_path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
        os.replace(tmp_path, manifest_path)
        return digest


def _concat(parts, dtype) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=dtype)
    return np.concatenate(parts).astype(dtype, copy=False)


def _file_sha256(path: str) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(block)
    return hasher.hexdigest()
