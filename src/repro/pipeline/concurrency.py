"""The single-flight LRU cache backing every pipeline stage.

:class:`SingleFlightCache` is the concurrent counterpart of
:class:`repro.storage.cache.LRUCache`.  Entry access and the hit/miss
counters mutate under one lock, so the statistics can never drift from
the entries they describe (the single-threaded cache documents that it
must not be shared across threads for exactly this reason).  Its
``get_or_create`` adds *single-flight* semantics: when N threads miss on
the same key at once, one runs the factory while the other N-1 block on
a per-key event and receive the same value — the navigation tree for a
hot query is built exactly once no matter how many users issue it
concurrently.

The class lives in the pipeline layer because the
:class:`~repro.pipeline.cache.StageCache` is its primary holder; the
serving layer re-exports it from :mod:`repro.serving.concurrency`
alongside its own profiling primitives.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Generic, Hashable, List, Optional, Tuple, TypeVar

__all__ = ["SingleFlightCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class _Flight:
    """One in-progress factory call other threads can wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.error: Optional[BaseException] = None


class SingleFlightCache(Generic[K, V]):
    """A locked LRU cache with single-flight ``get_or_create``.

    All entry and counter mutation happens inside ``self._lock``; the
    factory itself runs *outside* the lock so a slow build (a cold
    navigation-tree construction) never blocks hits on other keys.

    Counters:
        ``hits``/``misses``/``evictions`` mirror the single-threaded
        cache; ``coalesced`` counts lookups that piggy-backed on another
        thread's in-flight build instead of running the factory again.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._flights: Dict[K, _Flight] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """Value for ``key`` (refreshing its recency), or None."""
        with self._lock:
            if key not in self._entries:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: K, value: V) -> None:
        """Insert/refresh an entry, evicting the LRU one when full."""
        with self._lock:
            self._put_locked(key, value)

    def _put_locked(self, key: K, value: V) -> None:
        """Insert/refresh assuming ``self._lock`` is already held."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """Fetch ``key``, or build it exactly once across all threads.

        The first thread to miss runs ``factory`` and publishes the
        value; concurrent missers block on a per-key event and return
        the published value (counted in ``coalesced``).  A factory
        exception propagates to the builder *and* every waiter, and
        nothing is cached, so the next lookup retries.
        """
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            flight = self._flights.get(key)
            if flight is None:
                self.misses += 1
                flight = _Flight()
                self._flights[key] = flight
                building = True
            else:
                self.coalesced += 1
                building = False
        if not building:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value  # type: ignore[return-value]
        try:
            value = factory()
        except BaseException as exc:
            with self._lock:
                self._flights.pop(key, None)
            flight.error = exc
            flight.event.set()
            raise
        with self._lock:
            self._put_locked(key, value)
            self._flights.pop(key, None)
        flight.value = value
        flight.event.set()
        return value

    def items(self) -> List[Tuple[K, V]]:
        """Snapshot of (key, value) pairs, LRU first.

        Neither refreshes recency nor touches the hit/miss counters —
        stats endpoints observe the cache without perturbing it.
        """
        with self._lock:
            return list(self._entries.items())

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache.

        Coalesced lookups count as neither hit nor miss: they did not
        find a cached value, but they did not pay for a build either.
        """
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, float]:
        """One consistent reading of size and every counter."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "coalesced": self.coalesced,
                "hit_ratio": self.hits / total if total else 0.0,
            }
