"""The five pipeline stages: key schemes and builders.

Each stage is a stateless descriptor pairing three things:

* ``name`` — the stage's identity in the :class:`StageCache` and in
  ``GET /api/stats``;
* ``cached`` — whether equal content keys may share one artifact (the
  active-tree stage is per-session state and is deliberately not
  cached);
* ``key(...)`` / ``build(...)`` — the deterministic content-key scheme
  and the pure builder producing the stage's artifact from its inputs.

Keys chain down the dataflow (hierarchy → results → navigation tree →
cut), so invalidation is structural: change the hierarchy and every
downstream key changes with it; change one query's result set and only
that query's tree and cuts re-build.  The
:class:`~repro.pipeline.pipeline.NavigationPipeline` wires these stages
to a cache and a solver registry; nothing here holds state.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.core.session import NavigationSession
from repro.core.strategy import ExpansionStrategy
from repro.eutils.client import EntrezClient
from repro.pipeline.artifacts import (
    ActiveTreeArtifact,
    CutPlan,
    HierarchySnapshot,
    NavTreeArtifact,
    ResultSet,
    component_digest,
    content_key,
)
from repro.storage.database import BioNavDatabase

__all__ = [
    "params_key",
    "HierarchyStage",
    "SearchStage",
    "NavTreeStage",
    "ActiveTreeStage",
    "CutStage",
    "ALL_STAGES",
]


def params_key(params: CostParams) -> str:
    """Deterministic digest of the cost-model unit costs."""
    return content_key(
        "params",
        repr((params.expand_cost, params.reveal_cost, params.citation_cost)),
    )


class HierarchyStage:
    """Concept hierarchy + off-line database → :class:`HierarchySnapshot`."""

    name = "hierarchy"
    cached = True

    @staticmethod
    def key() -> str:
        """One entry per deployment: a pipeline serves one database."""
        return "deployment"

    @staticmethod
    def build(database: BioNavDatabase) -> HierarchySnapshot:
        """Wrap the database with its deployment content identity.

        Substrate-backed deployments reuse the offline build manifest
        digest; toy deployments fingerprint the hierarchy records (see
        :meth:`BioNavDatabase.content_digest`).
        """
        return HierarchySnapshot(
            database=database,
            hierarchy=database.hierarchy,
            content_key=database.content_digest(),
        )


class SearchStage:
    """Keyword query → :class:`ResultSet` via the (simulated) ESearch."""

    name = "results"
    cached = True

    @staticmethod
    def key(snapshot: HierarchySnapshot, query: str) -> str:
        """Chain the hierarchy key with the query string."""
        return content_key("results", snapshot.content_key, query)

    @staticmethod
    def build(entrez: EntrezClient, query: str, key: str) -> ResultSet:
        """Resolve the query to its full PMID list via ESearch."""
        pmids: Tuple[int, ...] = tuple(entrez.esearch_all(query))
        return ResultSet(query=query, pmids=pmids, content_key=key)


class NavTreeStage:
    """Result set embedded in the hierarchy → :class:`NavTreeArtifact`."""

    name = "nav_tree"
    cached = True

    @staticmethod
    def key(snapshot: HierarchySnapshot, results: ResultSet) -> str:
        """Chain the hierarchy key with the result-set key."""
        return content_key("nav_tree", snapshot.content_key, results.content_key)

    @staticmethod
    def build(
        snapshot: HierarchySnapshot, results: ResultSet, key: str
    ) -> NavTreeArtifact:
        """Embed the result set in the hierarchy and estimate probabilities."""
        store = snapshot.database.store
        if store is not None:
            # Array path: the store hands CSR annotation buffers straight
            # to the vectorized embedding — no per-concept frozensets.
            tree = NavigationTree.from_store(
                snapshot.hierarchy, store, results.pmids
            )
        else:
            annotations = snapshot.database.annotations_for_result(results.pmids)
            tree = NavigationTree.build(snapshot.hierarchy, annotations)
        probs = ProbabilityModel(tree, snapshot.database.medline_count)
        # The artifact carries the vectorized cost-model substrate the
        # probability model built, so the per-stage cache shares the
        # arrays (content-keyed) across every session of the query.
        return NavTreeArtifact(
            query=results.query,
            tree=tree,
            probs=probs,
            arrays=probs.arrays,
            content_key=key,
        )


class ActiveTreeStage:
    """Navigation tree + solver → one session's :class:`ActiveTreeArtifact`.

    Not cached: the active tree is the one mutable, per-user artifact of
    the dataflow.  The pipeline still times activations through the
    stage cache's run ledger so the stats surface covers it.
    """

    name = "active_tree"
    cached = False

    @staticmethod
    def key(nav: NavTreeArtifact, solver: str, ordinal: int) -> str:
        """Unique per activation: nav key + solver + ordinal."""
        return content_key("active", nav.content_key, solver, str(ordinal))

    @staticmethod
    def build(
        nav: NavTreeArtifact,
        solver: str,
        strategy: ExpansionStrategy,
        params: Optional[CostParams],
        profiler: Optional[object],
        key: str,
    ) -> ActiveTreeArtifact:
        """Open one live navigation session over the shared tree."""
        session = NavigationSession(
            nav.tree, strategy, params=params, profiler=profiler
        )
        return ActiveTreeArtifact(
            nav=nav, solver=solver, session=session, content_key=key
        )


class CutStage:
    """One component + solver → :class:`CutPlan` (the EXPAND decision).

    Cached: EdgeCut decisions are deterministic per (navigation tree,
    component, root, solver, cost params), so one session's EXPAND work
    answers every session of the query — including replays of the same
    component after a BACKTRACK.
    """

    name = "cut"
    cached = True

    @staticmethod
    def key(
        nav: NavTreeArtifact,
        solver: str,
        cost_key: str,
        component: Iterable[int],
        root: int,
    ) -> str:
        """Identify a cut by tree, solver, cost params, component, and root."""
        return content_key(
            "cut",
            nav.content_key,
            solver,
            cost_key,
            str(root),
            component_digest(component),
        )

    @staticmethod
    def build(
        strategy: ExpansionStrategy,
        component: FrozenSet[int],
        root: int,
        solver: str,
        key: str,
    ) -> CutPlan:
        """Solve one component with the given strategy and wrap the plan."""
        decision = strategy.best_cut(component, root)  # type: ignore[attr-defined]
        return CutPlan(solver=solver, root=root, decision=decision, content_key=key)


#: The dataflow, in order.
ALL_STAGES = (HierarchyStage, SearchStage, NavTreeStage, ActiveTreeStage, CutStage)
