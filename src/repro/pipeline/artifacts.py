"""Typed, immutable stage artifacts with deterministic content keys.

The paper's dataflow (§II–§VI) — concept hierarchy → query result →
navigation tree → active tree → EdgeCut — becomes five artifact types,
one per stage boundary.  Each artifact carries a ``content_key``: a
deterministic digest of everything the artifact's content depends on, so
equal keys mean interchangeable values.  The keys chain: a navigation
tree's key folds in the hierarchy snapshot's key and the result set's
key, which is what lets the serving layer cache *per stage* — the
hierarchy snapshot is one entry shared by every query of a deployment,
navigation trees are shared by every session of a query, and only the
active-tree / cut stages re-run on EXPAND.

Artifacts are frozen dataclasses: stages may only communicate through
them, never through side channels, which is what makes per-stage caching
sound.  The one deliberate exception is
:attr:`NavTreeArtifact.decisions` — the query-scoped EdgeCut decision
store — whose sharing contract is documented on the field.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Tuple

import numpy as np

from repro.core.cost_arrays import CostArrays
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.core.session import NavigationSession
from repro.core.strategy import CutDecision
from repro.hierarchy.concept import ConceptHierarchy
from repro.storage.database import BioNavDatabase, hierarchy_digest

__all__ = [
    "content_key",
    "component_digest",
    "HierarchySnapshot",
    "ResultSet",
    "NavTreeArtifact",
    "ActiveTreeArtifact",
    "CutPlan",
]


def content_key(*parts: str) -> str:
    """Deterministic digest of ordered string parts (sha-256, 40 hex chars).

    40 hex characters (160 bits) keep keys short enough for stats output
    while leaving collisions out of practical reach.
    """
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:40]


def component_digest(component: Iterable[int]) -> str:
    """Order-insensitive digest of a node-id set (sorted before hashing).

    Runs on every EXPAND (the cut-stage key folds it in), so the ids are
    sorted and hashed as one little-endian int64 buffer instead of a
    joined string — the digest is on the warm-decision path the
    expand-hot-path bench gates sub-millisecond.
    """
    ids = np.fromiter(component, dtype=np.int64)
    ids.sort()
    hasher = hashlib.sha256(b"component\x1e")
    hasher.update(ids.astype("<i8", copy=False).tobytes())
    return hasher.hexdigest()[:40]


@dataclass(frozen=True)
class HierarchySnapshot:
    """Stage 1 — the deployment's concept hierarchy plus its database.

    One snapshot serves every query and session of a deployment; its
    content key is the database's deployment identity
    (:meth:`~repro.storage.database.BioNavDatabase.content_digest`):
    substrate-backed deployments derive it from the offline build
    manifest digest — no per-deployment rehash of 48k hierarchy
    records — and toy deployments fingerprint the hierarchy's full
    (uid, label, parent) record stream, so two deployments of the same
    MeSH revision share keys and a re-grafted hierarchy gets a new one.
    Corpus revisions surface downstream instead: they change each
    query's result set, whose key every navigation-tree key folds in.

    Attributes:
        database: the off-line BioNav database (associations, counts).
        hierarchy: the concept hierarchy the database was built over.
        content_key: deterministic fingerprint of the deployment.
    """

    database: BioNavDatabase
    hierarchy: ConceptHierarchy
    content_key: str

    @staticmethod
    def compute_key(hierarchy: ConceptHierarchy) -> str:
        """Fingerprint the hierarchy's full record stream.

        Kept for hierarchy-only callers; snapshot keys come from
        ``database.content_digest()`` which folds in the substrate
        manifest when one exists.
        """
        return hierarchy_digest(hierarchy)


@dataclass(frozen=True)
class ResultSet:
    """Stage 2 — one keyword query resolved to its citation ids.

    Attributes:
        query: the keyword query as issued.
        pmids: the matching citation ids, in ESearch order.
        content_key: digest chaining the hierarchy key and the query.
    """

    query: str
    pmids: Tuple[int, ...]
    content_key: str

    @property
    def count(self) -> int:
        """Number of citations in the result."""
        return len(self.pmids)


@dataclass(frozen=True, eq=False)
class NavTreeArtifact:
    """Stage 3 — the query's navigation tree and probability model.

    Shared by every session of the query: the tree and probability model
    are immutable after construction, and ``decisions`` is the
    query-scoped EdgeCut decision store.

    Attributes:
        query: the keyword query.
        tree: the navigation tree embedded in the hierarchy.
        probs: EXPLORE/EXPAND probability estimates over ``tree``.
        arrays: the vectorized cost-model substrate built alongside
            ``probs`` (immutable numpy arrays + batch kernels).  Riding
            this artifact makes it content-keyed for free: every
            session of the query shares one instance through the
            nav-tree stage cache, and ``arrays.content_key`` fingerprints
            the array contents themselves.
        decisions: component → cut decision, shared by every strategy
            instance of this query.  EdgeCut decisions are deterministic
            per (tree, probs, params), so concurrent sessions may write
            the same key only with the same value — sharing is safe
            under per-session locks (see DESIGN.md §10).
        content_key: digest chaining the hierarchy and result-set keys.
    """

    query: str
    tree: NavigationTree
    probs: ProbabilityModel
    arrays: CostArrays
    content_key: str
    decisions: Dict[FrozenSet[int], CutDecision] = field(default_factory=dict)


@dataclass(frozen=True, eq=False)
class ActiveTreeArtifact:
    """Stage 4 — one session's live active tree over a navigation tree.

    Per-session and therefore never cached across sessions: the session
    object mutates as the user EXPANDs and BACKTRACKs.  The artifact
    pins the shared navigation-tree artifact it was activated from and
    the solver driving its EXPANDs.

    Attributes:
        nav: the shared navigation-tree artifact.
        solver: canonical registry name of the session's solver.
        session: the live navigation session (active tree + cost ledger).
        content_key: unique per activation (chains the nav key, the
            solver, and an activation ordinal).
    """

    nav: NavTreeArtifact
    solver: str
    session: NavigationSession
    content_key: str


@dataclass(frozen=True)
class CutPlan:
    """Stage 5 — one EXPAND's chosen EdgeCut, addressable by content.

    Cached per (navigation tree, component, root, solver, cost params):
    the same component expanded in any session of the query — today or
    after a BACKTRACK — replays the plan without re-solving.

    Attributes:
        solver: canonical registry name of the deciding solver.
        root: root concept of the expanded component.
        decision: the strategy's cut (with instrumentation).
        content_key: digest identifying this plan's full input closure.
    """

    solver: str
    root: int
    decision: CutDecision
    content_key: str
