"""The staged navigation pipeline (query flow as explicit dataflow).

The paper's framework is a five-stage dataflow — concept hierarchy →
result set → navigation tree → active tree → EdgeCut — and this package
makes each stage a first-class artifact with a deterministic content
key, produced through a per-stage single-flight cache and solved through
a unified solver registry.  Every call site (BioNav facade, CLI, serving
runtime, workload harness, benchmarks) builds trees and cuts exclusively
through :class:`NavigationPipeline` + :class:`SolverRegistry`; the
``solver-via-registry`` analyzer rule enforces the layering.
"""

from repro.pipeline.artifacts import (
    ActiveTreeArtifact,
    CutPlan,
    HierarchySnapshot,
    NavTreeArtifact,
    ResultSet,
    component_digest,
    content_key,
)
from repro.pipeline.cache import DEFAULT_STAGE_CAPACITY, StageCache
from repro.pipeline.concurrency import SingleFlightCache
from repro.pipeline.pipeline import NavigationPipeline, PipelineStrategy
from repro.pipeline.registry import SolverRegistry, default_registry
from repro.pipeline.stages import (
    ALL_STAGES,
    ActiveTreeStage,
    CutStage,
    HierarchyStage,
    NavTreeStage,
    SearchStage,
    params_key,
)

__all__ = [
    "ActiveTreeArtifact",
    "ActiveTreeStage",
    "ALL_STAGES",
    "component_digest",
    "content_key",
    "CutPlan",
    "CutStage",
    "DEFAULT_STAGE_CAPACITY",
    "default_registry",
    "HierarchySnapshot",
    "HierarchyStage",
    "NavigationPipeline",
    "NavTreeArtifact",
    "NavTreeStage",
    "params_key",
    "PipelineStrategy",
    "ResultSet",
    "SearchStage",
    "SingleFlightCache",
    "SolverRegistry",
    "StageCache",
]
