"""The unified solver registry.

Every expansion strategy the reproduction ships — Heuristic-ReducedOpt,
the static and GoPubMed-style baselines, paged static, and the two exact
Opt-EdgeCut engines — is selected here *by name*, with its
:class:`~repro.core.strategy.SolverCapabilities` record attached.  Call
sites (the BioNav facade, the CLI, the serving runtime, the workload
harness, benchmarks) never import solver modules; they ask the registry.
The ``solver-via-registry`` analyzer rule makes that layering
machine-checked: outside ``repro.core`` and this module, importing a
solver module directly is an error.

This module is the single sanctioned importer of solver modules outside
``repro.core``; keep every new solver behind a factory here.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.cost_model import CostParams
from repro.core.exact import OptEdgeCutStrategy, ReferenceOptEdgeCutStrategy
from repro.core.gopubmed import GoPubMedNavigation
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.navigation_tree import NavigationTree
from repro.core.paged_static import PagedStaticNavigation
from repro.core.probabilities import ProbabilityModel
from repro.core.static_nav import StaticNavigation
from repro.core.strategy import ExpansionStrategy, SolverCapabilities

__all__ = ["SolverFactory", "SolverRegistry", "default_registry"]

#: Builds a configured strategy: (tree, probs, params, **options).
#: Factories ignore options they do not understand, so one pipeline can
#: pass its full solver configuration to whichever solver is selected.
SolverFactory = Callable[..., ExpansionStrategy]


class SolverRegistry:
    """Name → (factory, capabilities) for every expansion strategy.

    Registration happens at composition time (module import, test
    setup); lookups afterwards are read-only and therefore safe to
    share across serving threads.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, SolverFactory] = {}
        self._capabilities: Dict[str, SolverCapabilities] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        factory: SolverFactory,
        capabilities: SolverCapabilities,
        aliases: Tuple[str, ...] = (),
    ) -> None:
        """Add one solver under its capabilities' canonical name.

        Raises:
            ValueError: duplicate canonical name or alias.
        """
        name = capabilities.name
        if name in self._factories or name in self._aliases:
            raise ValueError("solver %r already registered" % name)
        self._factories[name] = factory
        self._capabilities[name] = capabilities
        for alias in aliases:
            if alias in self._aliases or alias in self._factories:
                raise ValueError("solver alias %r already registered" % alias)
            self._aliases[alias] = name

    def resolve(self, name: str) -> str:
        """Canonical name for ``name`` (which may be an alias).

        Raises:
            ValueError: unknown solver name.
        """
        canonical = self._aliases.get(name, name)
        if canonical not in self._factories:
            raise ValueError(
                "unknown solver %r (expected one of %s)"
                % (name, ", ".join(self.names()))
            )
        return canonical

    def __contains__(self, name: str) -> bool:
        return name in self._factories or name in self._aliases

    def names(self) -> Tuple[str, ...]:
        """Every canonical solver name, sorted."""
        return tuple(sorted(self._factories))

    def all_names(self) -> Tuple[str, ...]:
        """Every accepted name — canonical names plus aliases, sorted."""
        return tuple(sorted((*self._factories, *self._aliases)))

    def capabilities(self, name: str) -> SolverCapabilities:
        """The capability record registered under ``name``."""
        return self._capabilities[self.resolve(name)]

    def catalog(self) -> List[SolverCapabilities]:
        """Every capability record, sorted by canonical name."""
        return [self._capabilities[name] for name in self.names()]

    def optimal_names(self) -> Tuple[str, ...]:
        """Canonical names of solvers whose cuts are provably optimal."""
        return tuple(
            name for name in self.names() if self._capabilities[name].optimal
        )

    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        tree: NavigationTree,
        probs: ProbabilityModel,
        params: Optional[CostParams] = None,
        **options: object,
    ) -> ExpansionStrategy:
        """Build a configured strategy for one navigation tree.

        Args:
            name: canonical solver name or alias.
            tree: the query's navigation tree.
            probs: its probability model.
            params: cost-model unit costs (solvers that model cost).
            options: solver-specific configuration — e.g.
                ``max_reduced_nodes`` / ``decision_cache`` (heuristic),
                ``top_k`` (gopubmed), ``page_size`` (paged_static).
                Unknown options are ignored by the selected factory.

        Raises:
            ValueError: unknown solver name.
        """
        return self._factories[self.resolve(name)](tree, probs, params, **options)


# ---------------------------------------------------------------------------
# Default registry: the paper's solvers
# ---------------------------------------------------------------------------
def _make_heuristic(
    tree: NavigationTree,
    probs: ProbabilityModel,
    params: Optional[CostParams] = None,
    **options: object,
) -> ExpansionStrategy:
    return HeuristicReducedOpt(
        tree,
        probs,
        max_reduced_nodes=int(options.get("max_reduced_nodes", 10)),  # type: ignore[arg-type]
        params=params,
        reuse_memo=bool(options.get("reuse_memo", True)),
        decision_cache=options.get("decision_cache"),  # type: ignore[arg-type]
    )


def _make_static(
    tree: NavigationTree,
    probs: ProbabilityModel,
    params: Optional[CostParams] = None,
    **options: object,
) -> ExpansionStrategy:
    return StaticNavigation(tree)


def _make_gopubmed(
    tree: NavigationTree,
    probs: ProbabilityModel,
    params: Optional[CostParams] = None,
    **options: object,
) -> ExpansionStrategy:
    return GoPubMedNavigation(
        tree,
        top_k=int(options.get("top_k", 10)),  # type: ignore[arg-type]
        categories=options.get("categories"),  # type: ignore[arg-type]
    )


def _make_paged_static(
    tree: NavigationTree,
    probs: ProbabilityModel,
    params: Optional[CostParams] = None,
    **options: object,
) -> ExpansionStrategy:
    return PagedStaticNavigation(
        tree, page_size=int(options.get("page_size", 5))  # type: ignore[arg-type]
    )


def _make_opt(
    tree: NavigationTree,
    probs: ProbabilityModel,
    params: Optional[CostParams] = None,
    **options: object,
) -> ExpansionStrategy:
    return OptEdgeCutStrategy(tree, probs, params=params)


def _make_opt_reference(
    tree: NavigationTree,
    probs: ProbabilityModel,
    params: Optional[CostParams] = None,
    **options: object,
) -> ExpansionStrategy:
    return ReferenceOptEdgeCutStrategy(tree, probs, params=params)


_DEFAULT: Optional[SolverRegistry] = None


def default_registry() -> SolverRegistry:
    """The process-wide registry holding the paper's six solvers.

    Built once on first use; callers wanting an isolated registry (tests
    registering experimental solvers) construct their own
    :class:`SolverRegistry` instead of mutating this one.
    """
    global _DEFAULT
    if _DEFAULT is None:
        registry = SolverRegistry()
        registry.register(
            _make_heuristic, HeuristicReducedOpt.capabilities, aliases=("heuristic-reducedopt",)
        )
        registry.register(
            _make_static, StaticNavigation.capabilities, aliases=("static",)
        )
        registry.register(_make_gopubmed, GoPubMedNavigation.capabilities)
        registry.register(
            _make_paged_static,
            PagedStaticNavigation.capabilities,
            aliases=("paged-static",),
        )
        registry.register(
            _make_opt, OptEdgeCutStrategy.capabilities, aliases=("opt", "opt-edgecut")
        )
        registry.register(
            _make_opt_reference,
            ReferenceOptEdgeCutStrategy.capabilities,
            aliases=("opt-edgecut-reference",),
        )
        _DEFAULT = registry
    return _DEFAULT
