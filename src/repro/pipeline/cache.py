"""Per-stage caching with hit/miss/latency accounting.

:class:`StageCache` gives every pipeline stage its own
:class:`~repro.pipeline.concurrency.SingleFlightCache` plus a latency
ledger, under one façade: ``get_or_build(stage, key, builder)`` is the
only way stage values come into existence, so hits, misses, coalesced
lookups and build latency are measured at the exact point the work
happens.  N concurrent requests missing on the same stage key still run
the builder exactly once (the single-flight guarantee the serving layer
relies on), and the per-stage counters feed ``GET /api/stats``.

Stages that are deliberately uncached — activating a session's active
tree is per-user state — still report through :meth:`record_run`, so
the stats surface covers every stage of the dataflow, cached or not.

An optional **L2** extends the single-flight guarantee across
*processes*: when the in-process cache misses, the builder path first
consults the L2 store (content-addressed by the same stage keys —
:class:`repro.cluster.stagecache.ClusterStageCache` is the shipped
implementation), takes the store's cross-process build lock, and
publishes what it builds.  A navigation tree built by one cluster
worker is then unpickled, never rebuilt, by the others.  The L2 is
duck-typed (``stages``/``get``/``put``/``build_lock``/``wait_for``,
with :data:`L2_MISS` as the miss sentinel) so this layer stays free of
cluster imports.

Thread safety follows the serving layer's lock discipline: every
counter mutation happens inside ``self._lock`` (the per-stage entry
stores live in ``SingleFlightCache`` instances, which lock themselves).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from repro.pipeline.concurrency import SingleFlightCache

__all__ = ["DEFAULT_STAGE_CAPACITY", "L2_MISS", "StageCache"]

V = TypeVar("V")

#: Entries a stage's cache holds unless the capacity map says otherwise.
DEFAULT_STAGE_CAPACITY = 64

#: Sentinel an L2 store's ``get``/``wait_for`` return on a miss, so that
#: ``None`` stays a legal cached value.  Defined here (not in the
#: cluster package) because this is the consumer side of the protocol.
L2_MISS = object()


class _StageLedger:
    """Mutable latency/run counters for one stage (guarded by StageCache)."""

    __slots__ = (
        "builds",
        "build_seconds",
        "build_seconds_max",
        "runs",
        "l2_hits",
        "l2_misses",
        "l2_publishes",
    )

    def __init__(self) -> None:
        self.builds = 0
        self.build_seconds = 0.0
        self.build_seconds_max = 0.0
        self.runs = 0
        self.l2_hits = 0
        self.l2_misses = 0
        self.l2_publishes = 0


class StageCache:
    """Named single-flight caches, one per pipeline stage.

    Args:
        capacities: stage name → entry bound; stages absent from the map
            get ``default_capacity``.  The hierarchy stage holds one
            entry per deployment, so even a capacity of 1 never evicts
            it; result-set and navigation-tree stages typically share
            the serving layer's tree-cache bound; the cut stage wants a
            larger bound (one entry per distinct expanded component).
        default_capacity: bound for unconfigured stages.
        l2: optional cross-process artifact store (see the module
            docstring); its ``stages`` attribute gates which stages
            consult it.
    """

    def __init__(
        self,
        capacities: Optional[Dict[str, int]] = None,
        default_capacity: int = DEFAULT_STAGE_CAPACITY,
        l2: Optional[object] = None,
    ):
        if default_capacity < 1:
            raise ValueError("default_capacity must be positive")
        self._lock = threading.Lock()
        self._capacities = dict(capacities or {})
        self._default_capacity = default_capacity
        self._caches: Dict[str, SingleFlightCache] = {}
        self._ledgers: Dict[str, _StageLedger] = {}
        self._l2 = l2
        # How long a loser of the cross-process build race waits for the
        # winner's publish before building locally anyway.
        self._l2_wait = float(getattr(l2, "stale_after", 30.0))

    # ------------------------------------------------------------------
    def get_or_build(self, stage: str, key: str, builder: Callable[[], V]) -> V:
        """Fetch ``key`` from ``stage``'s cache or build it exactly once.

        The builder runs outside every lock; its wall-clock time is
        recorded against the stage.  Concurrent misses on the same key
        coalesce onto one build (see ``SingleFlightCache``), and when an
        L2 store covers the stage the build path goes through it: fetch
        a published artifact, or take the cross-process build lock,
        build, and publish.
        """
        cache = self._cache_for(stage)
        l2 = self._l2
        if l2 is not None and stage in l2.stages:  # type: ignore[attr-defined]
            return cache.get_or_create(
                key, lambda: self._build_via_l2(stage, key, builder)
            )

        def timed_builder() -> V:
            started = time.perf_counter()
            value = builder()
            self._record_build(stage, time.perf_counter() - started)
            return value

        return cache.get_or_create(key, timed_builder)

    def _build_via_l2(self, stage: str, key: str, builder: Callable[[], V]) -> V:
        """The L1-miss path when an L2 store covers ``stage``.

        Order: published artifact → cross-process single-flight (wait
        for the winner) → build locally and publish.  Runs outside this
        object's lock; only counter updates take it.
        """
        l2 = self._l2
        value = l2.get(stage, key)  # type: ignore[union-attr]
        if value is not L2_MISS:
            self._record_l2(stage, hits=1)
            return value  # type: ignore[return-value]
        with l2.build_lock(stage, key) as lock:  # type: ignore[union-attr]
            if not lock.acquired:
                value = l2.wait_for(stage, key, self._l2_wait)  # type: ignore[union-attr]
                if value is not L2_MISS:
                    # Coalesced onto another process's build.
                    self._record_l2(stage, hits=1)
                    return value  # type: ignore[return-value]
            self._record_l2(stage, misses=1)
            started = time.perf_counter()
            built = builder()
            self._record_build(stage, time.perf_counter() - started)
            if l2.put(stage, key, built):  # type: ignore[union-attr]
                self._record_l2(stage, publishes=1)
        return built

    def record_run(self, stage: str, seconds: float) -> None:
        """Account one execution of an uncached stage."""
        with self._lock:
            ledger = self._ledger_locked(stage)
            ledger.runs += 1
            ledger.build_seconds += seconds
            ledger.build_seconds_max = max(ledger.build_seconds_max, seconds)

    def stage_cache(self, stage: str) -> SingleFlightCache:
        """The stage's underlying single-flight cache (created on demand).

        Exposed so the serving layer can keep its historical
        ``runtime.queries`` counter surface pointed at the
        navigation-tree stage; everything else should read
        :meth:`snapshot` instead.
        """
        return self._cache_for(stage)

    def items(self, stage: str) -> List[Tuple[str, object]]:
        """Snapshot of one stage's (key, value) entries, LRU first.

        Empty when the stage has no cache yet; never perturbs recency
        or the hit/miss counters.
        """
        with self._lock:
            cache = self._caches.get(stage)
        return cache.items() if cache is not None else []

    def clear(self) -> None:
        """Drop every stage's entries (statistics are kept)."""
        with self._lock:
            caches = list(self._caches.values())
        for cache in caches:
            cache.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """stage name → one consistent reading of its counters.

        Cached stages report ``hits``/``misses``/``coalesced``/
        ``evictions``/``size``/``capacity``/``hit_ratio`` from their
        single-flight cache plus the build-latency ledger; uncached
        stages report ``runs`` and the same latency fields.
        """
        with self._lock:
            caches = dict(self._caches)
            ledgers = {name: self._ledger_row_locked(name) for name in self._ledgers}
        stages: Dict[str, Dict[str, float]] = {}
        for name, row in ledgers.items():
            stages[name] = row
        for name, cache in caches.items():
            row = stages.setdefault(name, self._empty_ledger_row())
            row.update(cache.snapshot())
        return stages

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cache_for(self, stage: str) -> SingleFlightCache:
        with self._lock:
            cache = self._caches.get(stage)
            if cache is None:
                capacity = self._capacities.get(stage, self._default_capacity)
                cache = SingleFlightCache(capacity)
                self._caches[stage] = cache
                self._ledger_locked(stage)
            return cache

    def _record_build(self, stage: str, seconds: float) -> None:
        with self._lock:
            ledger = self._ledger_locked(stage)
            ledger.builds += 1
            ledger.build_seconds += seconds
            ledger.build_seconds_max = max(ledger.build_seconds_max, seconds)

    def _record_l2(
        self, stage: str, hits: int = 0, misses: int = 0, publishes: int = 0
    ) -> None:
        with self._lock:
            ledger = self._ledger_locked(stage)
            ledger.l2_hits += hits
            ledger.l2_misses += misses
            ledger.l2_publishes += publishes

    def _ledger_locked(self, stage: str) -> _StageLedger:
        """Fetch/create a stage's ledger; caller holds the lock."""
        ledger = self._ledgers.get(stage)
        if ledger is None:
            ledger = _StageLedger()
            self._ledgers[stage] = ledger
        return ledger

    def _ledger_row_locked(self, stage: str) -> Dict[str, float]:
        """Render one ledger as a stats row; caller holds the lock."""
        ledger = self._ledgers[stage]
        executed = ledger.builds + ledger.runs
        return {
            "builds": ledger.builds,
            "runs": ledger.runs,
            "build_seconds_total": ledger.build_seconds,
            "build_ms_avg": (
                1000.0 * ledger.build_seconds / executed if executed else 0.0
            ),
            "build_ms_max": 1000.0 * ledger.build_seconds_max,
            "l2_hits": ledger.l2_hits,
            "l2_misses": ledger.l2_misses,
            "l2_publishes": ledger.l2_publishes,
        }

    @staticmethod
    def _empty_ledger_row() -> Dict[str, float]:
        return {
            "builds": 0,
            "runs": 0,
            "build_seconds_total": 0.0,
            "build_ms_avg": 0.0,
            "build_ms_max": 0.0,
            "l2_hits": 0,
            "l2_misses": 0,
            "l2_publishes": 0,
        }
