"""The staged navigation pipeline facade.

:class:`NavigationPipeline` is the one way the reproduction turns a
keyword query into navigable state: hierarchy snapshot → result set →
navigation tree → active tree → EdgeCut, each stage produced by its
descriptor in :mod:`repro.pipeline.stages`, cached per content key in a
:class:`~repro.pipeline.cache.StageCache`, and solved through the
:class:`~repro.pipeline.registry.SolverRegistry`.  The BioNav facade,
the CLI, the serving runtime, and the workload harness all hold one of
these instead of wiring stages by hand.

What is shared vs per-session:

* **hierarchy** — one snapshot per deployment, shared by every query;
* **results**, **nav_tree** — shared by every session of a query;
* **active_tree** — per-session (never cached; still timed);
* **cut** — shared by every session of a query: an EXPAND's plan is
  keyed by (tree, component, root, solver, cost params), so repeated
  expansions replay cached plans.

Sessions opened through the pipeline run a :class:`PipelineStrategy`:
the registry-built solver wrapped so each EXPAND routes through the cut
stage's cache.  That is what makes EXPAND latency a per-stage cache
concern instead of a per-session recomputation.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, FrozenSet, List, Optional

from repro.core.active_tree import ActiveTree
from repro.core.cost_model import CostParams
from repro.core.strategy import CutDecision, ExpansionStrategy
from repro.eutils.client import EntrezClient
from repro.pipeline.artifacts import (
    ActiveTreeArtifact,
    CutPlan,
    HierarchySnapshot,
    NavTreeArtifact,
    ResultSet,
)
from repro.pipeline.cache import StageCache
from repro.pipeline.registry import SolverRegistry, default_registry
from repro.pipeline.stages import (
    ActiveTreeStage,
    CutStage,
    HierarchyStage,
    NavTreeStage,
    SearchStage,
    params_key,
)
from repro.storage.database import BioNavDatabase

__all__ = ["PipelineStrategy", "NavigationPipeline"]


class PipelineStrategy(ExpansionStrategy):
    """A registry-built solver routed through the pipeline's cut stage.

    ``choose_cut`` resolves the expanded component, asks the pipeline
    for its :class:`CutPlan` (cache hit or a fresh solve by the wrapped
    strategy), and returns the plan's decision.  Wrapping — rather than
    subclassing each solver — keeps caching a pipeline concern and the
    solvers pure.
    """

    def __init__(
        self,
        pipeline: "NavigationPipeline",
        nav: NavTreeArtifact,
        solver: str,
        inner: ExpansionStrategy,
    ):
        self.pipeline = pipeline
        self.nav = nav
        self.solver = solver
        self.inner = inner
        # Present as the wrapped solver: simulators, profiles, and the
        # web layer report strategy names.
        self.name = inner.name
        self.capabilities = inner.capabilities

    def choose_cut(self, active: ActiveTree, node: int) -> CutDecision:
        """EdgeCut for ``node``'s component, via the cut-stage cache."""
        component = active.component(node)
        return self.best_cut(component, node)

    def best_cut(self, component: FrozenSet[int], root: int) -> CutDecision:
        """Cached-or-solved cut for one component (see :class:`CutStage`)."""
        plan = self.pipeline.plan_cut(
            self.nav, component, root, self.solver, inner=self.inner
        )
        return plan.decision


class NavigationPipeline:
    """Staged query flow over one BioNav database.

    Args:
        database: the off-line BioNav database.
        entrez: the (simulated) Entrez client resolving keyword queries.
        registry: solver registry; the default holds the paper's six
            solvers.
        params: cost-model unit costs applied to every session and cut.
        max_reduced_nodes: Heuristic-ReducedOpt's N (paper default 10).
        cache: externally-owned stage cache (share one across facades to
            share stage artifacts); a private one is built when omitted.
        capacities: per-stage entry bounds for the private cache
            (ignored when ``cache`` is given).
        l2: optional cross-process artifact store wired into the private
            cache (ignored when ``cache`` is given); see
            :class:`~repro.pipeline.cache.StageCache`.
    """

    def __init__(
        self,
        database: BioNavDatabase,
        entrez: EntrezClient,
        registry: Optional[SolverRegistry] = None,
        params: Optional[CostParams] = None,
        max_reduced_nodes: int = 10,
        cache: Optional[StageCache] = None,
        capacities: Optional[Dict[str, int]] = None,
        l2: Optional[object] = None,
    ):
        self.database = database
        self.entrez = entrez
        self.registry = registry or default_registry()
        self.params = params or CostParams()
        self.max_reduced_nodes = max_reduced_nodes
        self.cache = cache or StageCache(capacities, l2=l2)
        self._cost_key = params_key(self.params)
        self._activations = itertools.count(1)

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def snapshot(self) -> HierarchySnapshot:
        """Stage 1: the deployment's hierarchy snapshot (built once)."""
        return self.cache.get_or_build(
            HierarchyStage.name,
            HierarchyStage.key(),
            lambda: HierarchyStage.build(self.database),
        )

    def results(self, query: str) -> ResultSet:
        """Stage 2: resolve ``query`` to its citation ids (cached)."""
        snapshot = self.snapshot()
        key = SearchStage.key(snapshot, query)
        return self.cache.get_or_build(
            SearchStage.name,
            key,
            lambda: SearchStage.build(self.entrez, query, key),
        )

    def nav_tree(self, query: str) -> NavTreeArtifact:
        """Stage 3: the query's navigation tree + probabilities (cached)."""
        snapshot = self.snapshot()
        results = self.results(query)
        key = NavTreeStage.key(snapshot, results)
        return self.cache.get_or_build(
            NavTreeStage.name,
            key,
            lambda: NavTreeStage.build(snapshot, results, key),
        )

    def activate(
        self,
        nav: NavTreeArtifact,
        solver: str = "heuristic",
        profiler: Optional[object] = None,
        **options: object,
    ) -> ActiveTreeArtifact:
        """Stage 4: open one session over a navigation tree (per-session).

        The session's strategy is registry-built and wrapped in a
        :class:`PipelineStrategy`, so its EXPANDs run through the cut
        stage.  Never cached — each call is a fresh session — but timed
        into the stage ledger.
        """
        started = time.perf_counter()
        canonical = self.registry.resolve(solver)
        strategy = self.strategy(nav, canonical, **options)
        artifact = ActiveTreeStage.build(
            nav,
            canonical,
            strategy,
            self.params,
            profiler,
            ActiveTreeStage.key(nav, canonical, next(self._activations)),
        )
        self.cache.record_run(ActiveTreeStage.name, time.perf_counter() - started)
        return artifact

    def plan_cut(
        self,
        nav: NavTreeArtifact,
        component: FrozenSet[int],
        root: int,
        solver: str,
        inner: Optional[ExpansionStrategy] = None,
    ) -> CutPlan:
        """Stage 5: the EdgeCut plan for one component (cached).

        Args:
            nav: the component's navigation-tree artifact.
            component: the expanded component's node set.
            root: the component's root concept.
            solver: solver name (canonical or alias).
            inner: the session's already-built bare strategy; built from
                the registry when omitted (one-off callers).
        """
        canonical = self.registry.resolve(solver)
        key = CutStage.key(nav, canonical, self._cost_key, component, root)

        def build() -> CutPlan:
            strategy = inner
            if strategy is None:
                strategy = self._bare_strategy(nav, canonical)
            return CutStage.build(strategy, component, root, canonical, key)

        return self.cache.get_or_build(CutStage.name, key, build)

    # ------------------------------------------------------------------
    # Composition helpers
    # ------------------------------------------------------------------
    def open_session(
        self,
        query: str,
        solver: str = "heuristic",
        profiler: Optional[object] = None,
        **options: object,
    ) -> ActiveTreeArtifact:
        """Run stages 1–4 for ``query`` and hand back the live session."""
        return self.activate(
            self.nav_tree(query), solver=solver, profiler=profiler, **options
        )

    def strategy(
        self, nav: NavTreeArtifact, solver: str, **options: object
    ) -> PipelineStrategy:
        """A pipeline-routed strategy for ``nav`` (cut-stage cached)."""
        canonical = self.registry.resolve(solver)
        inner = self._bare_strategy(nav, canonical, **options)
        return PipelineStrategy(self, nav, canonical, inner)

    def _bare_strategy(
        self, nav: NavTreeArtifact, canonical: str, **options: object
    ) -> ExpansionStrategy:
        """Registry-build the underlying solver with pipeline defaults."""
        merged: Dict[str, object] = {
            "max_reduced_nodes": self.max_reduced_nodes,
            "decision_cache": nav.decisions,
        }
        merged.update(options)
        return self.registry.create(
            canonical, nav.tree, nav.probs, params=self.params, **merged
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stage_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage cache/latency counters (see :meth:`StageCache.snapshot`)."""
        return self.cache.snapshot()

    def cached_trees(self) -> List[NavTreeArtifact]:
        """The navigation-tree artifacts currently cached, LRU first."""
        return [value for _, value in self.cache.items(NavTreeStage.name)]
