"""Bottom-up tree partitioning (paper §VI-A, after Kundu–Misra [11]).

``Heuristic-ReducedOpt`` shrinks a component subtree to at most N
supernodes before running Opt-EdgeCut.  The partitioner processes the tree
bottom-up: at each node it accumulates the residual weight of its
un-partitioned children and, while the accumulated weight exceeds the
threshold δ, splits off the heaviest remaining child subtree as a
partition.  This yields a minimum-cardinality partition in which every part
is a contiguous subtree and (single overweight nodes aside) weighs at most δ.

The paper sets node weight to |L(n)| and δ to W/N, then re-runs with a
gradually larger δ until at most N partitions result.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = ["k_partition", "partition_with_limit"]

Adjacency = Mapping[int, Sequence[int]]


def k_partition(
    adjacency: Adjacency,
    root: int,
    weights: Mapping[int, float],
    delta: float,
) -> List[List[int]]:
    """Partition the tree into contiguous subtrees of residual weight ≤ δ.

    Args:
        adjacency: node → children (the component subtree).
        root: tree root.
        weights: node → non-negative weight (|L(n)| in the paper).
        delta: weight threshold.

    Returns:
        Partitions as node lists; each partition's first element is its
        subtree root.  Partitions are emitted bottom-up, with the
        root-containing partition last.  A single node heavier than δ
        forms (part of) its own partition — the threshold cannot split
        atoms.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    residual_weight: Dict[int, float] = {}
    residual_members: Dict[int, List[int]] = {}
    partitions: List[List[int]] = []

    for node in _postorder(adjacency, root):
        weight = float(weights[node])
        if weight < 0:
            raise ValueError("weights must be non-negative")
        live_children = [(residual_weight[c], c) for c in adjacency.get(node, ())]
        total = weight + sum(w for w, _ in live_children)
        # Split off heaviest children until the node's residual fits.
        live_children.sort()
        while total > delta and live_children:
            child_weight, child = live_children.pop()
            partitions.append(residual_members[child])
            total -= child_weight
        members = [node]
        for _, child in live_children:
            members.extend(residual_members[child])
        residual_weight[node] = total
        residual_members[node] = members

    partitions.append(residual_members[root])
    return partitions


def partition_with_limit(
    adjacency: Adjacency,
    root: int,
    weights: Mapping[int, float],
    max_partitions: int,
    growth: float = 1.3,
) -> List[List[int]]:
    """Partition into at most ``max_partitions`` parts (paper §VI-A).

    Starts from δ = W / max_partitions and grows δ geometrically until the
    partition count fits.  When the result collapses to a single partition
    while the tree has several nodes, the heaviest child subtree of the
    root is forced out so the reduced tree always has at least one edge to
    cut (the paper implicitly assumes this never happens because its
    component trees are large).
    """
    if max_partitions < 1:
        raise ValueError("max_partitions must be at least 1")
    if growth <= 1.0:
        raise ValueError("growth must exceed 1")
    order = _postorder(adjacency, root)
    node_count = len(order)
    total = float(sum(weights[n] for n in order))
    delta = total / max_partitions if total > 0 else 1.0
    partitions = k_partition(adjacency, root, weights, delta)
    while len(partitions) > max_partitions:
        delta *= growth
        partitions = k_partition(adjacency, root, weights, delta)
    if len(partitions) == 1 and node_count > 1 and max_partitions > 1:
        partitions = _force_split(adjacency, root, weights)
    return partitions


def _force_split(
    adjacency: Adjacency, root: int, weights: Mapping[int, float]
) -> List[List[int]]:
    """Split the heaviest root-child subtree into its own partition."""
    children = list(adjacency.get(root, ()))
    if not children:
        return [[root]]
    subtree_weights = []
    for child in children:
        nodes = list(_postorder(adjacency, child))
        subtree_weights.append((sum(weights[n] for n in nodes), child, nodes))
    subtree_weights.sort()
    _, heavy_child, heavy_nodes = subtree_weights[-1]
    # Keep partition-root-first ordering for the split-off part.
    split = [heavy_child] + [n for n in heavy_nodes if n != heavy_child]
    rest = [root] + [
        n
        for _, child, nodes in subtree_weights[:-1]
        for n in ([child] + [m for m in nodes if m != child])
    ]
    return [split, rest]


def _postorder(adjacency: Adjacency, root: int) -> List[int]:
    order: List[int] = []
    stack: List[Tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        stack.append((node, True))
        for child in adjacency.get(node, ()):
            stack.append((child, False))
    return order
