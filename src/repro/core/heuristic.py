"""Heuristic-ReducedOpt (paper §VI-B).

Opt-EdgeCut is exponential, so BioNav never runs it on raw component
subtrees (thousands of nodes for real queries).  Instead, for each EXPAND:

1. the component subtree is partitioned into at most N contiguous
   supernodes with the bottom-up k-partition algorithm (node weight
   |L(n)|, threshold δ = W/N grown geometrically until ≤ N parts),
2. the reduced supernode tree — each supernode carrying the union of its
   members' citations and the sum of their EXPLORE mass — is solved
   exactly with Opt-EdgeCut, and
3. the winning reduced cut is mapped back: cutting the reduced edge into
   supernode P cuts the original edge above P's root concept.

Components already at or below N nodes skip the reduction and are solved
exactly.  The paper uses N = 10.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.active_tree import ActiveTree
from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import CutTree, OptEdgeCut
from repro.core.partition import partition_with_limit
from repro.core.probabilities import ProbabilityModel
from repro.core.strategy import CutDecision, ExpansionStrategy, SolverCapabilities

__all__ = ["HeuristicReducedOpt"]

Edge = Tuple[int, int]


class HeuristicReducedOpt(ExpansionStrategy):
    """BioNav's production EXPAND strategy."""

    name = "heuristic-reducedopt"
    capabilities = SolverCapabilities(
        name="heuristic",
        optimal=False,
        exact_below=10,
        max_nodes=None,
        estimates_cost=True,
        cost_bound=1.25,
        description=(
            "k-partition reduction + exact Opt-EdgeCut on the supernode "
            "tree; exact at or below max_reduced_nodes (default 10)"
        ),
    )

    def __init__(
        self,
        tree: NavigationTree,
        probs: ProbabilityModel,
        max_reduced_nodes: int = 10,
        params: Optional[CostParams] = None,
        reuse_memo: bool = True,
        decision_cache: Optional[Dict[FrozenSet[int], CutDecision]] = None,
    ):
        """
        Args:
            tree: the query's navigation tree.
            probs: its probability model.
            max_reduced_nodes: N, the largest tree Opt-EdgeCut may see.
            params: cost-model unit costs.
            reuse_memo: harvest Opt-EdgeCut's per-component memo so later
                EXPANDs on sub-components are answered from cache (the
                paper's §VI-B reuse).  Cached decisions keep the EXPLORE
                normalization of the solve that produced them; disable to
                re-normalize every component independently instead.
            decision_cache: optional externally-owned decision store.
                Decisions are deterministic per (tree, probs, params)
                query, so concurrent sessions of the same query can pass a
                shared dict and answer each other's EXPANDs from cache —
                the web layer shares one per cached query state.
        """
        if max_reduced_nodes < 2:
            raise ValueError("max_reduced_nodes must be at least 2")
        self.tree = tree
        self.probs = probs
        self.max_reduced_nodes = max_reduced_nodes
        self.params = params or CostParams()
        self.last_reduced_size = 0
        # Once Opt-EdgeCut runs on a component, the best cuts of every
        # sub-component it can produce are already in its memo; the paper
        # exploits this so subsequent EXPANDs need no re-optimization
        # (§VI-B).  We harvest those memo entries into a decision cache.
        self.reuse_memo = reuse_memo
        self._decision_cache: Dict[FrozenSet[int], CutDecision] = (
            decision_cache if decision_cache is not None else {}
        )
        self.cache_hits = 0

    @property
    def decision_cache_size(self) -> int:
        """Entries in the (possibly shared) decision cache."""
        return len(self._decision_cache)

    # ------------------------------------------------------------------
    def choose_cut(self, active: ActiveTree, node: int) -> CutDecision:
        component = active.component(node)
        return self.best_cut(component, node)

    def best_cut(self, component: FrozenSet[int], root: int) -> CutDecision:
        """Best EdgeCut for one component (no active tree required)."""
        if len(component) <= 1:
            return CutDecision(cut=(), reduced_size=len(component))
        cached = self._decision_cache.get(component) if self.reuse_memo else None
        if cached is not None:
            self.cache_hits += 1
            self.last_reduced_size = cached.reduced_size
            return cached
        if len(component) <= self.max_reduced_nodes:
            cut_tree = CutTree.from_component(self.tree, self.probs, component, root)
            solver = OptEdgeCut(cut_tree, self.probs, self.params)
            solved = solver.solve()
            if self.reuse_memo:
                self._harvest_memo(cut_tree, solver)
            cut = tuple(
                (cut_tree.payload[p], cut_tree.payload[c]) for p, c in solved.cut
            )
            self.last_reduced_size = len(cut_tree)
            return CutDecision(
                cut=cut,
                reduced_size=len(cut_tree),
                expected_cost=solved.expected_cost,
            )
        reduced, part_roots = self._reduce(component, root)
        solved = OptEdgeCut(reduced, self.probs, self.params).solve()
        cut = tuple(
            (self.tree.parent(part_roots[c]), part_roots[c]) for _, c in solved.cut
        )
        self.last_reduced_size = len(reduced)
        decision = CutDecision(
            cut=cut,
            reduced_size=len(reduced),
            expected_cost=solved.expected_cost,
        )
        if self.reuse_memo:
            # Reduced solves are deterministic per component; remembering
            # them makes repeated expansions of the same component (replays,
            # Monte-Carlo walks, concurrent sessions) O(1).
            self._decision_cache[component] = decision
        return decision

    # ------------------------------------------------------------------
    def _harvest_memo(self, cut_tree: CutTree, solver: OptEdgeCut) -> None:
        """Store every exactly-solved sub-component's decision for reuse.

        Solver memo keys are CutTree-index bitmasks over *plain*
        components (each index is one navigation-tree node here), so each
        mask bit translates directly through the payload to a
        navigation-tree component member.
        """
        payload = cut_tree.payload
        for mask, best in solver.memo_masks():
            members = []
            remaining = mask
            while remaining:
                low = remaining & -remaining
                members.append(payload[low.bit_length() - 1])
                remaining ^= low
            original = frozenset(members)
            cut = tuple((payload[p], payload[c]) for p, c in best.cut)
            self._decision_cache[original] = CutDecision(
                cut=cut,
                reduced_size=len(members),
                expected_cost=best.expected_cost,
            )

    # ------------------------------------------------------------------
    def _reduce(
        self, component: FrozenSet[int], root: int
    ) -> Tuple[CutTree, List[int]]:
        """Partition the component and build the reduced supernode tree.

        Returns the CutTree plus, per supernode index, the original concept
        node rooting that partition (used to map cuts back).
        """
        tree = self.tree
        adjacency = {
            n: [c for c in tree.children(n) if c in component] for n in component
        }
        weights = {n: float(len(tree.results(n))) for n in component}
        partitions = partition_with_limit(
            adjacency, root, weights, self.max_reduced_nodes
        )
        part_of: Dict[int, int] = {}
        for index, members in enumerate(partitions):
            for member in members:
                part_of[member] = index
        # Each partition list is emitted root-first by the partitioner.
        roots = [members[0] for members in partitions]
        root_part = part_of[root]

        # Order supernodes so the overall root is CutTree node 0; keep a
        # stable order for the rest.
        order = [root_part] + [i for i in range(len(partitions)) if i != root_part]
        new_index = {old: new for new, old in enumerate(order)}

        children: List[List[int]] = [[] for _ in partitions]
        for old_index, part_root in enumerate(roots):
            if old_index == root_part:
                continue
            parent_part = part_of[tree.parent(part_root)]
            children[new_index[parent_part]].append(new_index[old_index])

        # Supernode statistics evaluated as one batch over the array
        # substrate: EXPLORE mass sums run vectorized (within 1e-9 of
        # the scalar oracle's sequential sums — see cost_arrays), and
        # the member histograms are exact integer gathers.
        arrays = self.probs.arrays
        parts = [partitions[old_index] for old_index in order]
        explore = arrays.explore_mass_sums(parts).tolist()
        results = []
        member_counts = []
        payload: List[object] = []
        for members in parts:
            results.append(tree.distinct_results(members))
            member_counts.append(arrays.member_counts(members))
            payload.append(tuple(members))
        reduced = CutTree(
            children=children,
            results=results,
            explore=explore,
            member_counts=member_counts,
            payload=payload,
        )
        part_roots = [roots[old_index] for old_index in order]
        return reduced, part_roots
