"""Navigation sessions: the user-facing action loop (paper §III).

A :class:`NavigationSession` wraps an active tree with an expansion
strategy and exposes the four user actions of the general navigation model
— EXPAND, SHOWRESULTS, IGNORE, BACKTRACK — while a :class:`CostLedger`
records the actual cost incurred, using the paper's unit charges.

Sessions optionally carry a profiler (any object with a
``record(node, seconds, reduced_size)`` method, e.g.
:class:`repro.analysis.SolverProfile`); each EXPAND then reports how long
the strategy spent choosing its cut — the latency Figure 10 measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.core.active_tree import ActiveTree, VisNode
from repro.core.cost_model import CostLedger, CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.strategy import CutDecision, ExpansionStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runtime import SolverProfile

__all__ = ["ExpandOutcome", "NavigationSession"]


@dataclass(frozen=True)
class ExpandOutcome:
    """What one EXPAND action did.

    Attributes:
        node: the expanded concept.
        revealed: newly visible concept node ids (the lower-component
            roots; the upper root was already visible).
        decision: the strategy's cut decision (with instrumentation).
        elapsed_seconds: wall-clock time the strategy spent choosing the
            cut (0.0 only for a degenerate clock).
    """

    node: int
    revealed: Tuple[int, ...]
    decision: CutDecision
    elapsed_seconds: float = 0.0


class NavigationSession:
    """One user's navigation over one query result."""

    def __init__(
        self,
        tree: NavigationTree,
        strategy: ExpansionStrategy,
        params: Optional[CostParams] = None,
        profiler: "Optional[SolverProfile]" = None,
    ):
        """
        Args:
            tree: the query's navigation tree.
            strategy: EXPAND strategy (chooses EdgeCuts).
            params: cost-model unit costs.
            profiler: optional per-EXPAND timing sink; anything exposing
                ``record(node, seconds, reduced_size)`` works, so the core
                stays importable without the analysis extras.
        """
        self.tree = tree
        self.strategy = strategy
        self.active = ActiveTree(tree)
        self.ledger = CostLedger(params=params or CostParams())
        self.profiler = profiler
        self._ignored: Set[int] = set()
        self._expand_log: List[ExpandOutcome] = []

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def expand(self, node: int) -> ExpandOutcome:
        """EXPAND: apply the strategy's EdgeCut to ``node``'s component.

        Charges one EXPAND action plus one reveal per newly shown concept.

        Raises:
            ValueError: when ``node`` has no expandable component or the
                strategy returns an empty cut.
        """
        started = time.perf_counter()
        decision = self.strategy.choose_cut(self.active, node)
        elapsed = time.perf_counter() - started
        if not decision.cut:
            raise ValueError("strategy produced no cut for node %r" % (node,))
        if self.profiler is not None:
            self.profiler.record(
                node=node, seconds=elapsed, reduced_size=decision.reduced_size
            )
        self.active.expand(node, decision.cut)
        revealed = tuple(child for _, child in decision.cut)
        self.ledger.charge_expand(len(revealed))
        outcome = ExpandOutcome(
            node=node,
            revealed=revealed,
            decision=decision,
            elapsed_seconds=elapsed,
        )
        self._expand_log.append(outcome)
        return outcome

    def show_results(self, node: int) -> List[int]:
        """SHOWRESULTS: list the citations of ``node``'s component.

        Charges one unit per citation displayed; returns the PMIDs sorted
        for deterministic display.
        """
        pmids = sorted(self.tree.distinct_results(self.active.component(node)))
        self.ledger.charge_show_results(len(pmids))
        return pmids

    def ignore(self, node: int) -> None:
        """IGNORE: mark a revealed concept as uninteresting (free)."""
        if not self.active.is_visible(node):
            raise ValueError("cannot ignore a hidden node")
        self._ignored.add(node)

    def backtrack(self) -> bool:
        """BACKTRACK: undo the most recent EXPAND (free in the cost model).

        The paper's cost model covers TOPDOWN only, so backtracking does
        not refund or charge anything; it only restores the tree state.
        """
        if not self.active.backtrack():
            return False
        if self._expand_log:
            self._expand_log.pop()
        return True

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def visualize(self) -> List[VisNode]:
        """The current interface rows (Definition 5 visualization)."""
        return self.active.visualize()

    @property
    def ignored(self) -> Set[int]:
        """Concepts the user marked as uninteresting."""
        return set(self._ignored)

    @property
    def expand_log(self) -> List[ExpandOutcome]:
        """Chronological record of EXPAND actions (for replay)."""
        return list(self._expand_log)

    @property
    def navigation_cost(self) -> float:
        """Concepts revealed + EXPAND actions so far (Fig. 8 metric)."""
        return self.ledger.navigation_cost

    @property
    def total_cost(self) -> float:
        """Navigation cost plus SHOWRESULTS citation cost."""
        return self.ledger.total_cost
