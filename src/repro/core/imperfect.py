"""Imperfect-user navigation: wrong turns and BACKTRACK.

The §VIII-A experiments assume an omniscient user who "always chooses the
right node to expand".  Real users misjudge concept labels; the general
navigation model (§III) therefore includes BACKTRACK, which the TOPDOWN
simplification drops.  This module simulates a user who, at each step,
expands the correct component with probability ``1 − error_rate`` and an
incorrect-looking one otherwise; after an unproductive expansion the user
recognizes the mistake and BACKTRACKs (both efforts already spent stay on
the ledger — the cost model has no refunds).

``benchmarks/bench_imperfect_user.py`` sweeps the error rate and shows
BioNav's advantage over static navigation is robust to wrong turns — an
extension experiment beyond the paper's evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.session import NavigationSession
from repro.core.strategy import ExpansionStrategy

__all__ = ["ImperfectOutcome", "navigate_with_errors"]


@dataclass(frozen=True)
class ImperfectOutcome:
    """Result of one error-prone navigation.

    Attributes:
        reached: whether the target became visible within the budget.
        navigation_cost: reveals + EXPANDs, wrong turns included.
        expand_actions: total EXPANDs (productive and wasted).
        wrong_turns: expansions of components not containing the target.
        backtracks: BACKTRACK actions taken to undo wrong turns.
    """

    reached: bool
    navigation_cost: float
    expand_actions: int
    wrong_turns: int
    backtracks: int


def navigate_with_errors(
    tree: NavigationTree,
    strategy: ExpansionStrategy,
    target: int,
    error_rate: float,
    rng: random.Random,
    params: Optional[CostParams] = None,
    max_steps: int = 400,
) -> ImperfectOutcome:
    """Simulate a fallible targeted user.

    At each step the user must pick an expandable component.  With
    probability ``error_rate`` (and when a wrong choice exists) she
    expands a component *not* containing the target, examines the
    revealed concepts, realizes none leads to the target, and BACKTRACKs.
    Otherwise she expands the correct component, as in
    :func:`repro.core.simulator.navigate_to_target`.

    Raises:
        KeyError: when ``target`` is not in the navigation tree.
        ValueError: on an error rate outside [0, 1].
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must be within [0, 1]")
    if target not in tree:
        raise KeyError("target %r is not in the navigation tree" % (target,))
    session = NavigationSession(tree, strategy, params=params)
    wrong_turns = 0
    backtracks = 0
    steps = 0
    while not session.active.is_visible(target) and steps < max_steps:
        steps += 1
        correct = session.active.containing_root(target)
        wrong_options = [
            node for node in session.active.component_roots() if node != correct
        ]
        take_wrong = wrong_options and rng.random() < error_rate
        if take_wrong:
            victim = rng.choice(wrong_options)
            session.expand(victim)
            wrong_turns += 1
            # The user inspects the revealed labels (already charged),
            # sees the target is not down there, and undoes the step.
            session.backtrack()
            backtracks += 1
        else:
            session.expand(correct)
    reached = session.active.is_visible(target)
    return ImperfectOutcome(
        reached=reached,
        navigation_cost=session.navigation_cost,
        expand_actions=session.ledger.expand_actions,
        wrong_turns=wrong_turns,
        backtracks=backtracks,
    )
