"""GoPubMed-style navigation (paper §IX).

GoPubMed — the closest system to BioNav — "lists a predefined list of
high-level MeSH concepts, such as Chemicals and Drugs, Biological Sciences
and so on, and for each one of them displays the top-10 concepts.  After a
node expansion, its children are revealed and ranked by the number of
their attached citations."

This strategy reproduces that behaviour on our navigation trees:

* expanding the **root** reveals the predefined top-level categories that
  are present in the query's navigation tree (all of them — the fixed
  category bar), and
* expanding any **other** concept reveals its top-``k`` children by
  subtree citation count (default 10), with repeat expansions paging in
  the rest (the interface's "more" affordance).

The paper could not compare against GoPubMed directly (different
indexing); like the paper, we use it as a static-family baseline whose
navigation cost the benchmarks contrast with BioNav's.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from repro.core.active_tree import ActiveTree
from repro.core.edgecut import component_children
from repro.core.navigation_tree import NavigationTree
from repro.core.strategy import CutDecision, ExpansionStrategy, SolverCapabilities

__all__ = ["GoPubMedNavigation"]


class GoPubMedNavigation(ExpansionStrategy):
    """Fixed top-level categories + top-k children per expansion."""

    name = "gopubmed"
    capabilities = SolverCapabilities(
        name="gopubmed",
        optimal=False,
        exact_below=None,
        max_nodes=None,
        estimates_cost=False,
        cost_bound=None,
        description="fixed top-level categories + top-k children per expansion",
    )

    def __init__(
        self,
        tree: NavigationTree,
        top_k: int = 10,
        categories: Optional[Iterable[int]] = None,
    ):
        """
        Args:
            tree: the query's navigation tree.
            top_k: children revealed per expansion of a non-root concept.
            categories: node ids of the predefined top-level categories;
                defaults to the navigation tree's root children (the
                MeSH top-level concepts that survived the embedding).
        """
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        self.tree = tree
        self.top_k = top_k
        if categories is None:
            self._categories: Tuple[int, ...] = tuple(tree.children(tree.root))
        else:
            category_set = list(categories)
            for node in category_set:
                if node not in tree:
                    raise ValueError("category %r is not in the navigation tree" % node)
            self._categories = tuple(category_set)

    @property
    def categories(self) -> Tuple[int, ...]:
        """The predefined top-level category bar."""
        return self._categories

    def choose_cut(self, active: ActiveTree, node: int) -> CutDecision:
        component = active.component(node)
        return self.best_cut(component, node)

    def best_cut(self, component: FrozenSet[int], root: int) -> CutDecision:
        """Category bar at the root; top-k children elsewhere."""
        if root == self.tree.root:
            # The fixed category bar: reveal every predefined category
            # still hidden inside the root component.
            cut = tuple(
                (self.tree.parent(category), category)
                for category in self._categories
                if category in component and category != root
            )
            if cut:
                return CutDecision(cut=cut, reduced_size=len(component))
            # Categories all revealed: fall through to top-k paging.
        children = component_children(self.tree, component, root)
        ranked = sorted(
            children,
            key=lambda child: (-len(self.tree.subtree_results(child)), child),
        )
        cut = tuple((root, child) for child in ranked[: self.top_k])
        return CutDecision(cut=cut, reduced_size=len(component))
