"""Opt-EdgeCut lifted into the :class:`ExpansionStrategy` protocol.

The optimal solvers (the bitmask engine and the retained exhaustive
reference) operate on :class:`~repro.core.opt_edgecut.CutTree` index
trees, not on navigation-tree components, so they cannot drive a
:class:`~repro.core.session.NavigationSession` directly.  These wrappers
close that gap: each EXPAND lifts the component into a ``CutTree``,
solves it exactly, and maps the winning cut back through the payload —
exactly the plumbing :class:`~repro.core.heuristic.HeuristicReducedOpt`
performs for components small enough to skip the reduction.

Both wrappers refuse components above ``MAX_OPT_NODES`` (Opt-EdgeCut is
exponential); the solver registry advertises that cap through their
capability records so callers can fall back to the heuristic instead of
tripping the engine's guard.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from repro.core.active_tree import ActiveTree
from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import MAX_OPT_NODES, CutTree, OptEdgeCut
from repro.core.opt_edgecut_reference import ReferenceOptEdgeCut
from repro.core.probabilities import ProbabilityModel
from repro.core.strategy import CutDecision, ExpansionStrategy, SolverCapabilities

__all__ = ["OptEdgeCutStrategy", "ReferenceOptEdgeCutStrategy"]

Edge = Tuple[int, int]


class OptEdgeCutStrategy(ExpansionStrategy):
    """Exact EXPAND strategy: every component solved with Opt-EdgeCut."""

    name = "opt-edgecut"
    capabilities = SolverCapabilities(
        name="opt_edgecut",
        optimal=True,
        exact_below=MAX_OPT_NODES,
        max_nodes=MAX_OPT_NODES,
        estimates_cost=True,
        cost_bound=None,
        description="bitmask Opt-EdgeCut on every component (exponential; size-capped)",
    )

    #: Engine class the wrapper instantiates per solve; the reference
    #: subclass swaps in the exhaustive oracle.
    engine = OptEdgeCut

    def __init__(
        self,
        tree: NavigationTree,
        probs: ProbabilityModel,
        params: Optional[CostParams] = None,
    ):
        self.tree = tree
        self.probs = probs
        self.params = params or CostParams()

    def choose_cut(self, active: ActiveTree, node: int) -> CutDecision:
        """Solve ``node``'s component exactly and return its best cut."""
        component = active.component(node)
        return self.best_cut(component, node)

    def best_cut(self, component: FrozenSet[int], root: int) -> CutDecision:
        """Optimal EdgeCut for one component (no active tree required).

        Raises:
            ValueError: component larger than the engine's size cap.
        """
        if len(component) <= 1:
            return CutDecision(cut=(), reduced_size=len(component))
        cut_tree = CutTree.from_component(self.tree, self.probs, component, root)
        solved = self.engine(cut_tree, self.probs, self.params).solve()
        cut: Tuple[Edge, ...] = tuple(
            (cut_tree.payload[p], cut_tree.payload[c]) for p, c in solved.cut
        )
        return CutDecision(
            cut=cut,
            reduced_size=len(cut_tree),
            expected_cost=solved.expected_cost,
        )


class ReferenceOptEdgeCutStrategy(OptEdgeCutStrategy):
    """The exhaustive reference engine behind the same strategy surface.

    Exists so the registry's cross-solver equivalence suite can compare
    every optimal-capable solver against the oracle through one
    interface; never use it on a hot path.
    """

    name = "opt-edgecut-reference"
    capabilities = SolverCapabilities(
        name="opt_edgecut_reference",
        optimal=True,
        exact_below=MAX_OPT_NODES,
        max_nodes=MAX_OPT_NODES,
        estimates_cost=True,
        cost_bound=None,
        description="exhaustive reference Opt-EdgeCut (test oracle; slow)",
    )

    engine = ReferenceOptEdgeCut
