"""Duplication analysis of navigation trees (paper §I).

The paper motivates cost-aware expansion with duplication arithmetic: the
313 prothymosin citations appear 30,895 times across the static tree, yet
the four concepts the user actually wants share only 38 duplicates among
their 185 attached citations.  "The user would like to know which concepts
fragment the query result into subsets of citations with as few duplicate
citations as possible across them."

This module computes those statistics — per node set, per EdgeCut, and
tree-wide — and finds low-overlap concept groups, the quantity the NP-hard
optimization implicitly chases.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.navigation_tree import NavigationTree

__all__ = [
    "DuplicationStats",
    "group_stats",
    "cut_duplication",
    "tree_duplication",
    "least_overlapping_groups",
]


@dataclass(frozen=True)
class DuplicationStats:
    """Duplication arithmetic for a group of node sets.

    Attributes:
        total_attachments: Σ over sets of their attachment counts.
        distinct_citations: |union of all attached citations|.
        duplicates: total_attachments − distinct_citations — the number of
            redundant inspections a user pays when reading every set.
    """

    total_attachments: int
    distinct_citations: int

    @property
    def duplicates(self) -> int:
        """Redundant attachments: total minus distinct."""
        return self.total_attachments - self.distinct_citations

    @property
    def duplication_ratio(self) -> float:
        """Duplicates per distinct citation (0 = perfectly disjoint)."""
        if self.distinct_citations == 0:
            return 0.0
        return self.duplicates / self.distinct_citations


def group_stats(tree: NavigationTree, nodes: Iterable[int]) -> DuplicationStats:
    """Duplication across the *subtrees* of the given concepts.

    This is the paper's §I measure: each concept contributes its subtree's
    distinct citations (what SHOWRESULTS would list), and overlaps between
    concepts count as duplicates.
    """
    total = 0
    union: Set[int] = set()
    for node in nodes:
        results = tree.subtree_results(node)
        total += len(results)
        union |= results
    return DuplicationStats(total_attachments=total, distinct_citations=len(union))


def cut_duplication(
    tree: NavigationTree, components: Sequence[FrozenSet[int]]
) -> DuplicationStats:
    """Duplication across the components an EdgeCut creates.

    Each component contributes its distinct citations; a citation attached
    inside k components counts k−1 duplicates.
    """
    total = 0
    union: Set[int] = set()
    for component in components:
        results = tree.distinct_results(component)
        total += len(results)
        union |= results
    return DuplicationStats(total_attachments=total, distinct_citations=len(union))


def tree_duplication(tree: NavigationTree) -> DuplicationStats:
    """Tree-wide duplication: every attachment vs distinct citations.

    For prothymosin the paper reports 30,895 attachments over 313
    citations — the "substantial number of duplicate citations" of Fig. 1.
    """
    return DuplicationStats(
        total_attachments=tree.citations_with_duplicates(),
        distinct_citations=len(tree.all_results()),
    )


def least_overlapping_groups(
    tree: NavigationTree,
    candidates: Sequence[int],
    group_size: int,
    min_coverage: float = 0.0,
) -> List[Tuple[Tuple[int, ...], DuplicationStats]]:
    """Concept groups that fragment the result with minimal duplication.

    Exhaustively scores every ``group_size``-subset of ``candidates`` (use
    modest candidate lists) and returns them sorted by ascending
    duplicates, ties broken by descending coverage.

    Args:
        tree: the navigation tree.
        candidates: concept nodes to choose among.
        group_size: number of concepts per group.
        min_coverage: keep only groups whose union covers at least this
            fraction of the query result.

    Raises:
        ValueError: when group_size exceeds the candidate count.
    """
    candidates = list(candidates)
    if group_size > len(candidates):
        raise ValueError("group_size exceeds number of candidates")
    total_results = len(tree.all_results())
    scored: List[Tuple[Tuple[int, ...], DuplicationStats]] = []
    for group in itertools.combinations(candidates, group_size):
        stats = group_stats(tree, group)
        if total_results and stats.distinct_citations / total_results < min_coverage:
            continue
        scored.append((group, stats))
    scored.sort(key=lambda item: (item[1].duplicates, -item[1].distinct_citations))
    return scored
