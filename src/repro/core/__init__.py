"""The paper's contribution: navigation trees, EdgeCuts, cost model, algorithms."""

from repro.core.active_tree import ActiveTree, VisNode
from repro.core.cost_model import CostLedger, CostParams, cost_improves, costs_equal
from repro.core.edgecut import component_edges, cut_components, is_valid_edgecut
from repro.core.duplication import (
    DuplicationStats,
    cut_duplication,
    group_stats,
    least_overlapping_groups,
    tree_duplication,
)
from repro.core.evaluation import expected_strategy_cost
from repro.core.exact import OptEdgeCutStrategy, ReferenceOptEdgeCutStrategy
from repro.core.explain import CutAlternative, ExpansionExplanation, explain_expansion
from repro.core.gopubmed import GoPubMedNavigation
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.imperfect import ImperfectOutcome, navigate_with_errors
from repro.core.montecarlo import WalkOutcome, estimate_expected_cost, sample_walk
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import BestCut, CutTree, OptEdgeCut
from repro.core.paged_static import PagedStaticNavigation
from repro.core.partition import k_partition, partition_with_limit
from repro.core.probabilities import ProbabilityModel
from repro.core.relevance import ranked_visualization, relevance_of
from repro.core.replay import SessionLog, record_session, replay_session
from repro.core.session import ExpandOutcome, NavigationSession
from repro.core.simulator import ExpandRecord, NavigationOutcome, navigate_to_target
from repro.core.static_nav import StaticNavigation
from repro.core.strategy import CutDecision, ExpansionStrategy, SolverCapabilities

__all__ = [
    "ActiveTree",
    "BestCut",
    "CostLedger",
    "CostParams",
    "CutAlternative",
    "CutDecision",
    "DuplicationStats",
    "CutTree",
    "ExpandOutcome",
    "ExpansionExplanation",
    "ExpandRecord",
    "ExpansionStrategy",
    "GoPubMedNavigation",
    "HeuristicReducedOpt",
    "ImperfectOutcome",
    "NavigationOutcome",
    "NavigationSession",
    "NavigationTree",
    "PagedStaticNavigation",
    "OptEdgeCut",
    "OptEdgeCutStrategy",
    "ProbabilityModel",
    "ReferenceOptEdgeCutStrategy",
    "SessionLog",
    "SolverCapabilities",
    "StaticNavigation",
    "VisNode",
    "WalkOutcome",
    "component_edges",
    "cost_improves",
    "costs_equal",
    "cut_components",
    "cut_duplication",
    "estimate_expected_cost",
    "expected_strategy_cost",
    "explain_expansion",
    "group_stats",
    "is_valid_edgecut",
    "k_partition",
    "least_overlapping_groups",
    "navigate_to_target",
    "navigate_with_errors",
    "ranked_visualization",
    "record_session",
    "sample_walk",
    "relevance_of",
    "replay_session",
    "partition_with_limit",
    "tree_duplication",
]
