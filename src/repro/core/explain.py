"""Explanation of EXPAND decisions.

Why did BioNav reveal *these* concepts?  The optimizer's choice is an
argmin over valid EdgeCuts of the reduced tree; this module re-runs that
comparison transparently and reports the top alternatives with their
expansion terms, the revealed concepts each would surface, and the margin
to the winner — the information a curious user (or a debugging developer)
needs to audit a cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core.cost_model import CostParams
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import CutTree, OptEdgeCut
from repro.core.probabilities import ProbabilityModel

__all__ = ["CutAlternative", "ExpansionExplanation", "explain_expansion"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class CutAlternative:
    """One candidate EdgeCut and its score.

    Attributes:
        cut: original-tree edges the candidate would sever.
        revealed_labels: labels of the concepts it would reveal.
        expansion_term: the cost term the optimizer minimizes.
        margin: excess over the winning cut's term (0 for the winner).
    """

    cut: Tuple[Edge, ...]
    revealed_labels: Tuple[str, ...]
    expansion_term: float
    margin: float


@dataclass(frozen=True)
class ExpansionExplanation:
    """The audited decision for one component expansion.

    Attributes:
        chosen: the winning alternative (margin 0).
        alternatives: the top runner-up cuts, ascending by term.
        reduced_size: supernode count of the tree the comparison ran on.
        explore_probability: pE of the expanded component (within the
            whole tree's normalization).
        expand_probability: pX of the expanded component.
    """

    chosen: CutAlternative
    alternatives: Tuple[CutAlternative, ...]
    reduced_size: int
    explore_probability: float
    expand_probability: float


def explain_expansion(
    tree: NavigationTree,
    probs: ProbabilityModel,
    component: FrozenSet[int],
    root: int,
    top_k: int = 5,
    max_reduced_nodes: int = 10,
    params: Optional[CostParams] = None,
) -> ExpansionExplanation:
    """Audit the Heuristic-ReducedOpt decision for one component.

    Re-builds the (possibly reduced) CutTree the heuristic would use,
    scores **every** valid EdgeCut with the optimizer's expansion term,
    and returns the winner plus the ``top_k`` closest alternatives.

    Raises:
        ValueError: for singleton components (nothing to expand).
    """
    if len(component) <= 1:
        raise ValueError("singleton components have no expansion to explain")
    params = params or CostParams()
    heuristic = HeuristicReducedOpt(
        tree, probs, max_reduced_nodes=max_reduced_nodes, params=params
    )
    if len(component) <= max_reduced_nodes:
        cut_tree = CutTree.from_component(tree, probs, component, root)
        to_original = {i: (payload, payload) for i, payload in enumerate(cut_tree.payload)}
    else:
        cut_tree, part_roots = heuristic._reduce(component, root)
        to_original = {
            i: (part_roots[i], part_roots[i]) for i in range(len(cut_tree))
        }
    solver = OptEdgeCut(cut_tree, probs, params)
    full = frozenset(range(len(cut_tree)))
    scored: List[Tuple[float, Tuple[Edge, ...], Tuple[str, ...]]] = []
    for cut in solver._enumerate_cuts(0, full):
        if not cut:
            continue
        term = solver._expansion_term(full, 0, cut)
        original_cut = tuple(
            (tree.parent(to_original[c][0]), to_original[c][0]) for _, c in cut
        )
        labels = tuple(tree.label(child) for _, child in original_cut)
        scored.append((term, original_cut, labels))
    scored.sort(key=lambda item: item[0])
    best_term = scored[0][0]
    alternatives = tuple(
        CutAlternative(
            cut=cut,
            revealed_labels=labels,
            expansion_term=term,
            margin=term - best_term,
        )
        for term, cut, labels in scored[: top_k + 1]
    )
    return ExpansionExplanation(
        chosen=alternatives[0],
        alternatives=alternatives[1:],
        reduced_size=len(cut_tree),
        explore_probability=probs.explore(component),
        expand_probability=probs.expand(component, root),
    )
