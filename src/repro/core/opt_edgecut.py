"""Opt-EdgeCut: the optimal (exponential) best-EdgeCut algorithm (paper §VI-A).

``Opt-EdgeCut`` computes, for a (small) component subtree, the valid
EdgeCut minimizing the expected TOPDOWN navigation cost.  It enumerates all
valid EdgeCuts of the subtree and recursively costs every component each
cut creates, memoizing costs per component (the paper's dynamic-programming
reuse).  The complexity is exponential — O(2^|T|) components in the worst
case — which is exactly why the paper only runs it on reduced trees of at
most ~10 supernodes (see :mod:`repro.core.heuristic`).

The algorithm operates on a :class:`CutTree`, a tiny standalone tree
carrying per-node result sets and EXPLORE mass.  Both raw navigation-tree
components and the heuristic's reduced supernode trees are converted into
this form, so the optimal machinery is shared.

Engine internals (the bitmask representation)
---------------------------------------------

Because solvable trees are capped at :data:`MAX_OPT_NODES` (= 16) nodes,
every component is represented as an ``int`` bitmask over the CutTree's
dense node indices instead of a ``FrozenSet[int]``:

* per-node **subtree masks** are precomputed once at solver construction,
  so deriving the upper/lower components of a cut is two bitwise ops
  instead of a DFS per lower root;
* the per-component **cost memo** (:attr:`OptEdgeCut._memo`) and the
  per-component **statistics memo** (EXPLORE mass, distinct-result count,
  member-count histogram) are keyed on masks, making lookups integer
  hashes;
* distinct-result counting ORs precomputed per-node **citation bitmaps**
  and takes a popcount, instead of unioning Python sets;
* cut enumeration is a **lazy depth-first search** over per-child choices
  (cut the edge, or recurse into the child) that prunes whole prefixes of
  the cut space once the accumulated lower-component cost can no longer
  beat the best expansion term found so far.

The engine is observationally identical to the retained legacy
implementation (:mod:`repro.core.opt_edgecut_reference`): it enumerates
cuts in the same order, accumulates cost terms in the same floating-point
order, and breaks ties identically, so both return bit-identical
:class:`BestCut` values — a property test enforces this on randomized
trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.cost_arrays import POPCOUNT_TABLE
from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel

__all__ = ["CutTree", "BestCut", "OptEdgeCut", "MAX_OPT_NODES"]

# Above this size the exhaustive enumeration is intractable in real time;
# the paper caps reduced trees at N = 10.  The bitmask engine additionally
# relies on this cap to key components by machine-word masks.
MAX_OPT_NODES = 16

CutTreeEdge = Tuple[int, int]


@dataclass
class CutTree:
    """A small rooted tree ready for exhaustive EdgeCut optimization.

    Nodes are dense indices 0..k-1 with node 0 as the root.

    Attributes:
        children: adjacency lists.
        results: distinct citation set attached to each node (for a
            supernode: the union over its members).
        explore: *unnormalized* EXPLORE mass ``|L(n)| / log LT(n)`` per node
            (for a supernode: the sum over its members).  Opt-EdgeCut
            normalizes over the whole CutTree, so the tree it is invoked on
            plays the role of "the initial active tree" with pE = 1
            (paper §IV) — each expansion conditions on the user having
            chosen to explore this component.
        member_counts: per node, the |L(m)| histogram used by the entropy
            term of the EXPAND probability.  For plain nodes this is
            ``[len(results)]``; for supernodes, one entry per member.
        payload: opaque caller identity per node (navigation-tree node id,
            or partition descriptor), used to map cuts back.
    """

    children: List[List[int]]
    results: List[FrozenSet[int]]
    explore: List[float]
    member_counts: List[List[int]]
    payload: List[object]

    def __post_init__(self) -> None:
        k = len(self.children)
        if not (len(self.results) == len(self.explore) == len(self.payload) == k):
            raise ValueError("CutTree field lengths disagree")
        if len(self.member_counts) != k:
            raise ValueError("CutTree field lengths disagree")

    def __len__(self) -> int:
        return len(self.children)

    @property
    def root(self) -> int:
        """The root index (always 0)."""
        return 0

    @classmethod
    def from_component(
        cls,
        tree: NavigationTree,
        probs: ProbabilityModel,
        component: FrozenSet[int],
        root: int,
    ) -> "CutTree":
        """Lift a navigation-tree component into a CutTree (payload = node id)."""
        order: List[int] = []
        index: Dict[int, int] = {}
        stack = [root]
        while stack:
            node = stack.pop()
            if node in index:
                continue
            index[node] = len(order)
            order.append(node)
            for child in tree.children(node):
                if child in component:
                    stack.append(child)
        if set(order) != set(component):
            raise ValueError("component is not a connected subtree at its root")
        children: List[List[int]] = [[] for _ in order]
        for node in order:
            for child in tree.children(node):
                if child in component:
                    children[index[node]].append(index[child])
        return cls(
            children=children,
            results=[tree.results(n) for n in order],
            explore=[probs.explore_mass(n) for n in order],
            member_counts=[[len(tree.results(n))] for n in order],
            payload=list(order),
        )

    def subtree_indices(self, node: int) -> FrozenSet[int]:
        """Indices of the subtree rooted at ``node``."""
        collected: Set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            collected.add(current)
            stack.extend(self.children[current])
        return frozenset(collected)


@dataclass(frozen=True)
class BestCut:
    """Outcome of an Opt-EdgeCut run on one component.

    Attributes:
        cut: chosen CutTree edges ((parent_index, child_index) pairs);
            empty for singletons/leaf components where no cut exists.
        expected_cost: the minimized expected navigation cost of the
            component under the full cost model.
        expansion_term: the minimized bracketed EXPAND term (the quantity
            the cut choice actually controls).
    """

    cut: Tuple[CutTreeEdge, ...]
    expected_cost: float
    expansion_term: float


class OptEdgeCut:
    """Exhaustive optimal EdgeCut selection with mask-keyed memoization.

    Components are integer bitmasks over the CutTree indices; the solver
    precomputes per-node subtree masks and citation bitmaps once, memoizes
    per-component costs and statistics on those masks, and searches the
    cut space lazily with cost-bound pruning (see the module docstring).
    """

    def __init__(
        self,
        cut_tree: CutTree,
        probs: ProbabilityModel,
        params: Optional[CostParams] = None,
        max_nodes: int = MAX_OPT_NODES,
    ):
        if len(cut_tree) > max_nodes:
            raise ValueError(
                "Opt-EdgeCut is exponential; refusing a %d-node tree (max %d). "
                "Use Heuristic-ReducedOpt for larger components."
                % (len(cut_tree), max_nodes)
            )
        self.tree = cut_tree
        self.probs = probs
        self.params = params or CostParams()
        total_mass = sum(cut_tree.explore)
        # The input tree is "the initial active tree" of this expansion:
        # its total EXPLORE probability is 1 (paper §IV).
        self._explore_norm = total_mass if total_mass > 0 else 1.0
        k = len(cut_tree)
        self._children: List[Tuple[int, ...]] = [
            tuple(kids) for kids in cut_tree.children
        ]
        self._parent: List[int] = [-1] * k
        for node, kids in enumerate(self._children):
            for child in kids:
                self._parent[child] = node
        # Subtree masks, bottom-up over a preorder (children have higher
        # positions than their parent in the traversal order).
        order: List[int] = []
        stack = [cut_tree.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(self._children[node])
        self._subtree_mask: List[int] = [0] * k
        for node in reversed(order):
            mask = 1 << node
            for child in self._children[node]:
                mask |= self._subtree_mask[child]
            self._subtree_mask[node] = mask
        # Citation bitmaps: each distinct citation id across the tree gets
        # one bit, so distinct-result counts are OR + popcount.
        citation_bit: Dict[int, int] = {}
        self._result_bits: List[int] = []
        for citations in cut_tree.results:
            bits = 0
            for citation in citations:
                bit = citation_bit.get(citation)
                if bit is None:
                    bit = 1 << len(citation_bit)
                    citation_bit[citation] = bit
                bits |= bit
            self._result_bits.append(bits)
        self._explore: List[float] = list(cut_tree.explore)
        self._member_counts: List[Tuple[int, ...]] = [
            tuple(counts) for counts in cut_tree.member_counts
        ]
        # Mask-keyed memos: best cut per component, and component
        # statistics (EXPLORE mass, distinct results, member histogram).
        self._memo: Dict[int, BestCut] = {}
        self._stats: Dict[int, Tuple[float, int, Tuple[int, ...]]] = {}
        self._seed_subtree_stats(citation_bit)

    # ------------------------------------------------------------------
    def _seed_subtree_stats(self, citation_bit: Dict[int, int]) -> None:
        """Batch-evaluate the statistics of every per-node subtree mask.

        EdgeCut search decomposes a component into its children's
        subtrees, so the per-node subtree masks are the most frequently
        keyed components of a solve: every lower component of the root
        solve is one of them.  Their distinct-result counts are computed
        in one vectorized pass — packed citation bitmaps, byte-wise OR
        per subtree segment (``np.bitwise_or.reduceat``), popcount table
        lookup — which is exact integer arithmetic and therefore
        bit-identical to the lazy per-mask path.  EXPLORE sums and
        member histograms are accumulated sequentially in ascending
        index order, the exact accumulation :meth:`_component_stats`
        performs, so the seeded floats match it to the last bit.
        """
        k = len(self._children)
        nbytes = max(1, (len(citation_bit) + 7) // 8)
        packed = np.zeros((k, nbytes), dtype=np.uint8)
        for index, bits in enumerate(self._result_bits):
            packed[index] = np.frombuffer(
                bits.to_bytes(nbytes, "little"), dtype=np.uint8
            )
        members_per_node: List[List[int]] = []
        flat: List[int] = []
        offsets: List[int] = []
        for node in range(k):
            offsets.append(len(flat))
            members = sorted(self._indices_of(self._subtree_mask[node]))
            members_per_node.append(members)
            flat.extend(members)
        orred = np.bitwise_or.reduceat(
            packed[np.asarray(flat, dtype=np.int64)],
            np.asarray(offsets, dtype=np.int64),
            axis=0,
        )
        distinct = POPCOUNT_TABLE[orred].sum(axis=1)
        for node in range(k):
            explore_sum = 0.0
            member_counts: List[int] = []
            for member in members_per_node[node]:
                explore_sum += self._explore[member]
                member_counts.extend(self._member_counts[member])
            self._stats[self._subtree_mask[node]] = (
                explore_sum,
                int(distinct[node]),
                tuple(member_counts),
            )

    # ------------------------------------------------------------------
    def solve(self) -> BestCut:
        """Best cut (and expected cost) for the whole CutTree."""
        root = self.tree.root
        return self.solve_component_mask(self._subtree_mask[root], root)

    def solve_component(self, component: FrozenSet[int], root: int) -> BestCut:
        """Best cut for a connected sub-component rooted at ``root``.

        Because costs are memoized per component, solving the full tree
        also yields the optimal cut of every component later expansions can
        produce — the reuse the paper exploits to call the optimizer once
        per user query rather than once per EXPAND.
        """
        return self.solve_component_mask(self._mask_of(component), root)

    def solve_component_mask(self, mask: int, root: int) -> BestCut:
        """Best cut for the component ``mask`` (bitmask) rooted at ``root``."""
        cached = self._memo.get(mask)
        if cached is not None:
            return cached
        result = self._solve(mask, root)
        self._memo[mask] = result
        return result

    def memo_items(self) -> List[Tuple[FrozenSet[int], "BestCut"]]:
        """All (component index set, BestCut) pairs solved so far.

        After :meth:`solve`, this covers every sub-component the chosen
        cuts can produce — the reuse Heuristic-ReducedOpt harvests.
        Component keys are materialized as frozensets; use
        :meth:`memo_masks` for the raw mask-keyed entries.
        """
        return [(self._indices_of(mask), best) for mask, best in self._memo.items()]

    def memo_masks(self) -> List[Tuple[int, "BestCut"]]:
        """All (component bitmask, BestCut) pairs solved so far."""
        return list(self._memo.items())

    # ------------------------------------------------------------------
    # Mask helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _mask_of(indices) -> int:
        mask = 0
        for index in indices:
            mask |= 1 << index
        return mask

    @staticmethod
    def _indices_of(mask: int) -> FrozenSet[int]:
        indices = []
        while mask:
            low = mask & -mask
            indices.append(low.bit_length() - 1)
            mask ^= low
        return frozenset(indices)

    def _component_stats(self, mask: int) -> Tuple[float, int, Tuple[int, ...]]:
        """(EXPLORE mass, distinct results, member histogram) for ``mask``."""
        stats = self._stats.get(mask)
        if stats is not None:
            return stats
        explore_sum = 0.0
        result_bits = 0
        member_counts: List[int] = []
        remaining = mask
        # Ascending index order — the same summation order the reference
        # engine's frozenset iteration produces for indices < 16.
        while remaining:
            low = remaining & -remaining
            index = low.bit_length() - 1
            explore_sum += self._explore[index]
            result_bits |= self._result_bits[index]
            member_counts.extend(self._member_counts[index])
            remaining ^= low
        stats = (explore_sum, result_bits.bit_count(), tuple(member_counts))
        self._stats[mask] = stats
        return stats

    # ------------------------------------------------------------------
    def _solve(self, mask: int, root: int) -> BestCut:
        explore_sum, result_count, member_counts = self._component_stats(mask)
        explore = explore_sum / self._explore_norm
        kids = [c for c in self._children[root] if (mask >> c) & 1]
        if not kids:
            # Singleton (or childless) component: only SHOWRESULTS remains.
            cost = explore * result_count
            return BestCut(cut=(), expected_cost=cost, expansion_term=0.0)

        p_expand = self.probs.expand_from_distribution(member_counts, result_count)
        best_term, best_children = self._search_cuts(mask, root, kids)
        best_cut = tuple((self._parent[c], c) for c in best_children)
        show_cost = (1.0 - p_expand) * result_count
        expected = explore * (show_cost + p_expand * best_term)
        return BestCut(cut=best_cut, expected_cost=expected, expansion_term=best_term)

    def _search_cuts(
        self, mask: int, root: int, kids: Sequence[int]
    ) -> Tuple[float, Tuple[int, ...]]:
        """Minimize the expansion term over all valid non-empty cuts.

        The search walks a stack of undecided edges ("slots"); each slot is
        either cut (its child becomes a lower root) or descended into (its
        child's edges become new slots).  ``acc`` carries the running lower
        bound ``expand_cost + Σ (reveal_cost + cost(lower))`` over decided
        cut edges, accumulated in the same floating-point order as the
        final term, so any prefix with ``acc >= best_term`` can be pruned
        without changing the argmin or its tie-breaking.
        """
        params = self.params
        expand_cost = params.expand_cost
        reveal_cost = params.reveal_cost
        subtree_mask = self._subtree_mask
        children = self._children
        memo = self._memo
        solve = self.solve_component_mask
        best_term = float("inf")
        best_children: Tuple[int, ...] = ()
        # The expected cost of each child's lower component is invariant
        # across every cut that severs that edge; compute it on demand once.
        lower_cost: Dict[int, float] = {}
        chosen: List[int] = []

        slots = None
        for kid in reversed(kids):
            slots = (kid, slots)
        # Explicit DFS stack (no per-prefix Python call): entries are
        # (slots, acc) visits, with ``None`` markers undoing the chosen
        # edge of the enclosing option-1 branch.  Option 1 (cut the edge)
        # is pushed last so it is explored first, preserving the legacy
        # enumeration order — and since a visit re-checks ``acc`` against
        # the current best at pop time, prefixes pushed before a better
        # cut was found still prune.
        # Option 1 (cut the edge) is always the next prefix explored, so it
        # runs as the inner loop; only option 2 round-trips the stack.
        stack: List[Optional[Tuple[object, float]]] = [(slots, expand_cost)]
        while stack:
            entry = stack.pop()
            if entry is None:
                chosen.pop()
                continue
            slots, acc = entry
            while True:
                # Every completion of this prefix costs at least ``acc``.
                if acc >= best_term:
                    break
                if slots is None:
                    if chosen:  # the empty cut is not a valid EXPAND
                        upper = mask
                        for child in chosen:
                            upper &= ~subtree_mask[child]
                        # Recompute the term in the legacy accumulation
                        # order (expand, upper, then lowers) for
                        # bit-identical floats.
                        best = memo.get(upper)
                        if best is None:
                            best = solve(upper, root)
                        term = expand_cost
                        term += reveal_cost + best.expected_cost
                        if term < best_term:
                            ok = True
                            for child in chosen:
                                term += reveal_cost + lower_cost[child]
                                if term >= best_term:
                                    ok = False
                                    break
                            if ok:
                                best_term = term
                                best_children = tuple(chosen)
                    break
                child, rest = slots
                # Option 1: cut this edge (lower component = its subtree).
                cost = lower_cost.get(child)
                if cost is None:
                    lower = subtree_mask[child] & mask
                    best = memo.get(lower)
                    if best is None:
                        best = solve(lower, child)
                    cost = best.expected_cost
                    lower_cost[child] = cost
                # Option 2: keep the edge and decide the child's own edges.
                child_slots = rest
                for grandchild in reversed(children[child]):
                    if (mask >> grandchild) & 1:
                        child_slots = (grandchild, child_slots)
                stack.append((child_slots, acc))
                stack.append(None)
                chosen.append(child)
                slots = rest
                acc = acc + (reveal_cost + cost)
        return best_term, best_children

    # ------------------------------------------------------------------
    # Introspection (kept for tests and repro.core.explain)
    # ------------------------------------------------------------------
    def _expansion_term(
        self, component: FrozenSet[int], root: int, cut: Sequence[CutTreeEdge]
    ) -> float:
        """Cost of executing this EXPAND: click + per-revealed-root terms."""
        params = self.params
        mask = self._mask_of(component)
        removed = 0
        for _, child in cut:
            removed |= self._subtree_mask[child] & mask
        upper = mask & ~removed
        term = params.expand_cost
        # The EdgeCut operation returns the upper root plus every lower
        # root; each contributes an examination cost and its own expected
        # exploration cost.
        term += params.reveal_cost + self.solve_component_mask(upper, root).expected_cost
        for _, child in cut:
            lower = self._subtree_mask[child] & mask
            term += (
                params.reveal_cost
                + self.solve_component_mask(lower, child).expected_cost
            )
        return term

    def _enumerate_cuts(
        self, node: int, component: FrozenSet[int]
    ) -> List[List[CutTreeEdge]]:
        """All valid EdgeCuts of the component subtree at ``node``.

        Materializes :meth:`_iter_cuts` (including the empty cut) in the
        legacy enumeration order; the solver itself never builds this list.
        """
        return [list(cut) for cut in self._iter_cuts(node, self._mask_of(component))]

    def _iter_cuts(self, node: int, mask: int) -> Iterator[Tuple[CutTreeEdge, ...]]:
        """Lazily yield every valid cut of the component subtree at ``node``.

        Validity — at most one cut edge per root-to-leaf path — is
        guaranteed structurally: once an edge is cut, no edge below it is
        considered.  The order matches the legacy engine's materialized
        product exactly (earlier children vary slowest; per child the cut
        edge precedes the child's own cuts, with the empty cut last).
        """
        kids = [c for c in self._children[node] if (mask >> c) & 1]

        def per_kid(i: int) -> Iterator[Tuple[CutTreeEdge, ...]]:
            if i == len(kids):
                yield ()
                return
            child = kids[i]
            for rest in per_kid(i + 1):
                yield ((node, child),) + rest
            for sub in self._iter_cuts(child, mask):
                for rest in per_kid(i + 1):
                    yield sub + rest

        return per_kid(0)
