"""Opt-EdgeCut: the optimal (exponential) best-EdgeCut algorithm (paper §VI-A).

``Opt-EdgeCut`` computes, for a (small) component subtree, the valid
EdgeCut minimizing the expected TOPDOWN navigation cost.  It enumerates all
valid EdgeCuts of the subtree and recursively costs every component each
cut creates, memoizing costs per component (the paper's dynamic-programming
reuse).  The complexity is exponential — O(2^|T|) components in the worst
case — which is exactly why the paper only runs it on reduced trees of at
most ~10 supernodes (see :mod:`repro.core.heuristic`).

The algorithm operates on a :class:`CutTree`, a tiny standalone tree
carrying per-node result sets and EXPLORE mass.  Both raw navigation-tree
components and the heuristic's reduced supernode trees are converted into
this form, so the optimal machinery is shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel

__all__ = ["CutTree", "BestCut", "OptEdgeCut", "MAX_OPT_NODES"]

# Above this size the exhaustive enumeration is intractable in real time;
# the paper caps reduced trees at N = 10.
MAX_OPT_NODES = 16

CutTreeEdge = Tuple[int, int]


@dataclass
class CutTree:
    """A small rooted tree ready for exhaustive EdgeCut optimization.

    Nodes are dense indices 0..k-1 with node 0 as the root.

    Attributes:
        children: adjacency lists.
        results: distinct citation set attached to each node (for a
            supernode: the union over its members).
        explore: *unnormalized* EXPLORE mass ``|L(n)| / log LT(n)`` per node
            (for a supernode: the sum over its members).  Opt-EdgeCut
            normalizes over the whole CutTree, so the tree it is invoked on
            plays the role of "the initial active tree" with pE = 1
            (paper §IV) — each expansion conditions on the user having
            chosen to explore this component.
        member_counts: per node, the |L(m)| histogram used by the entropy
            term of the EXPAND probability.  For plain nodes this is
            ``[len(results)]``; for supernodes, one entry per member.
        payload: opaque caller identity per node (navigation-tree node id,
            or partition descriptor), used to map cuts back.
    """

    children: List[List[int]]
    results: List[FrozenSet[int]]
    explore: List[float]
    member_counts: List[List[int]]
    payload: List[object]

    def __post_init__(self) -> None:
        k = len(self.children)
        if not (len(self.results) == len(self.explore) == len(self.payload) == k):
            raise ValueError("CutTree field lengths disagree")
        if len(self.member_counts) != k:
            raise ValueError("CutTree field lengths disagree")

    def __len__(self) -> int:
        return len(self.children)

    @property
    def root(self) -> int:
        """The root index (always 0)."""
        return 0

    @classmethod
    def from_component(
        cls,
        tree: NavigationTree,
        probs: ProbabilityModel,
        component: FrozenSet[int],
        root: int,
    ) -> "CutTree":
        """Lift a navigation-tree component into a CutTree (payload = node id)."""
        order: List[int] = []
        index: Dict[int, int] = {}
        stack = [root]
        while stack:
            node = stack.pop()
            if node in index:
                continue
            index[node] = len(order)
            order.append(node)
            for child in tree.children(node):
                if child in component:
                    stack.append(child)
        if set(order) != set(component):
            raise ValueError("component is not a connected subtree at its root")
        children: List[List[int]] = [[] for _ in order]
        for node in order:
            for child in tree.children(node):
                if child in component:
                    children[index[node]].append(index[child])
        return cls(
            children=children,
            results=[tree.results(n) for n in order],
            explore=[probs.explore_mass(n) for n in order],
            member_counts=[[len(tree.results(n))] for n in order],
            payload=list(order),
        )

    def subtree_indices(self, node: int) -> FrozenSet[int]:
        """Indices of the subtree rooted at ``node``."""
        collected: Set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            collected.add(current)
            stack.extend(self.children[current])
        return frozenset(collected)


@dataclass(frozen=True)
class BestCut:
    """Outcome of an Opt-EdgeCut run on one component.

    Attributes:
        cut: chosen CutTree edges ((parent_index, child_index) pairs);
            empty for singletons/leaf components where no cut exists.
        expected_cost: the minimized expected navigation cost of the
            component under the full cost model.
        expansion_term: the minimized bracketed EXPAND term (the quantity
            the cut choice actually controls).
    """

    cut: Tuple[CutTreeEdge, ...]
    expected_cost: float
    expansion_term: float


class OptEdgeCut:
    """Exhaustive optimal EdgeCut selection with component memoization."""

    def __init__(
        self,
        cut_tree: CutTree,
        probs: ProbabilityModel,
        params: Optional[CostParams] = None,
        max_nodes: int = MAX_OPT_NODES,
    ):
        if len(cut_tree) > max_nodes:
            raise ValueError(
                "Opt-EdgeCut is exponential; refusing a %d-node tree (max %d). "
                "Use Heuristic-ReducedOpt for larger components."
                % (len(cut_tree), max_nodes)
            )
        self.tree = cut_tree
        self.probs = probs
        self.params = params or CostParams()
        total_mass = sum(cut_tree.explore)
        # The input tree is "the initial active tree" of this expansion:
        # its total EXPLORE probability is 1 (paper §IV).
        self._explore_norm = total_mass if total_mass > 0 else 1.0
        self._memo: Dict[FrozenSet[int], BestCut] = {}

    # ------------------------------------------------------------------
    def solve(self) -> BestCut:
        """Best cut (and expected cost) for the whole CutTree."""
        return self.solve_component(self.tree.subtree_indices(self.tree.root), self.tree.root)

    def solve_component(self, component: FrozenSet[int], root: int) -> BestCut:
        """Best cut for a connected sub-component rooted at ``root``.

        Because costs are memoized per component, solving the full tree
        also yields the optimal cut of every component later expansions can
        produce — the reuse the paper exploits to call the optimizer once
        per user query rather than once per EXPAND.
        """
        cached = self._memo.get(component)
        if cached is not None:
            return cached
        result = self._solve(component, root)
        self._memo[component] = result
        return result

    def memo_items(self):
        """All (component index set, BestCut) pairs solved so far.

        After :meth:`solve`, this covers every sub-component reachable by
        future expansions — the reuse Heuristic-ReducedOpt harvests.
        """
        return list(self._memo.items())

    # ------------------------------------------------------------------
    def _solve(self, component: FrozenSet[int], root: int) -> BestCut:
        tree = self.tree
        explore = sum(tree.explore[i] for i in component) / self._explore_norm
        distinct: Set[int] = set()
        member_counts: List[int] = []
        for i in component:
            distinct.update(tree.results[i])
            member_counts.extend(tree.member_counts[i])
        result_count = len(distinct)

        cuts = [cut for cut in self._enumerate_cuts(root, component) if cut]
        if not cuts:
            # Singleton (or childless) component: only SHOWRESULTS remains.
            cost = explore * result_count
            return BestCut(cut=(), expected_cost=cost, expansion_term=0.0)

        p_expand = self.probs.expand_from_distribution(member_counts, result_count)
        best_term = float("inf")
        best_cut: Tuple[CutTreeEdge, ...] = ()
        for cut in cuts:
            term = self._expansion_term(component, root, cut)
            if term < best_term:
                best_term = term
                best_cut = tuple(cut)
        show_cost = (1.0 - p_expand) * result_count
        expected = explore * (show_cost + p_expand * best_term)
        return BestCut(cut=best_cut, expected_cost=expected, expansion_term=best_term)

    def _expansion_term(
        self, component: FrozenSet[int], root: int, cut: Sequence[CutTreeEdge]
    ) -> float:
        """Cost of executing this EXPAND: click + per-revealed-root terms."""
        params = self.params
        removed: Set[int] = set()
        lower_roots: List[int] = []
        for _, child in cut:
            lower = self.tree.subtree_indices(child) & component
            removed.update(lower)
            lower_roots.append(child)
        upper = frozenset(component - removed)
        term = params.expand_cost
        # The EdgeCut operation returns the upper root plus every lower
        # root; each contributes an examination cost and its own expected
        # exploration cost.
        term += params.reveal_cost + self.solve_component(upper, root).expected_cost
        for child in lower_roots:
            lower = self.tree.subtree_indices(child) & component
            term += params.reveal_cost + self.solve_component(lower, child).expected_cost
        return term

    def _enumerate_cuts(
        self, node: int, component: FrozenSet[int]
    ) -> List[List[CutTreeEdge]]:
        """All valid EdgeCuts of the component subtree at ``node``.

        Returns cut-sets (including the empty cut).  Validity — at most
        one cut edge per root-to-leaf path — is guaranteed structurally:
        once an edge is cut, no edge below it is considered.
        """
        options_per_child: List[List[List[CutTreeEdge]]] = []
        for child in self.tree.children[node]:
            if child not in component:
                continue
            child_options = [[(node, child)]]
            child_options.extend(self._enumerate_cuts(child, component))
            options_per_child.append(child_options)
        combos: List[List[CutTreeEdge]] = [[]]
        for child_options in options_per_child:
            combos = [base + extra for base in combos for extra in child_options]
        return combos
