"""Relevance ranking of revealed concepts (paper §I / §IX).

BioNav presents the concepts revealed by an EXPAND "ranked by their
estimated relevance to the user's query", in contrast to GoPubMed's plain
citation-count ordering.  Relevance of a visible concept is the EXPLORE
probability mass of its component — the same |L(n)| / log LT(n) quantity
the cost model uses — so concepts that are both selective for this query
and not globally ubiquitous float to the top.

:func:`rank_siblings` reorders a visualization's sibling groups in place
under either policy, leaving parent/child structure untouched.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.core.active_tree import ActiveTree, VisNode
from repro.core.probabilities import ProbabilityModel

__all__ = ["relevance_of", "rank_siblings", "ranked_visualization"]


def relevance_of(active: ActiveTree, probs: ProbabilityModel, node: int) -> float:
    """Query relevance of a visible node: its component's EXPLORE mass."""
    return sum(probs.explore_mass(m) for m in active.component(node))


def rank_siblings(
    rows: Sequence[VisNode], key: Callable[[VisNode], float]
) -> List[VisNode]:
    """Reorder a pre-order row list so siblings sort by descending key.

    The tree shape (each node listed before its visible subtree) is
    preserved; only the order among siblings changes.
    """
    children: Dict[int, List[VisNode]] = {}
    by_node: Dict[int, VisNode] = {}
    for row in rows:
        by_node[row.node] = row
        children.setdefault(row.parent, []).append(row)

    ordered: List[VisNode] = []

    def emit(row: VisNode) -> None:
        ordered.append(row)
        for child in sorted(
            children.get(row.node, []), key=key, reverse=True
        ):
            emit(child)

    roots = children.get(-1, [])
    for root in roots:
        emit(root)
    return ordered


def ranked_visualization(
    active: ActiveTree,
    probs: ProbabilityModel,
    by: str = "relevance",
) -> List[VisNode]:
    """The active-tree visualization with ranked siblings.

    Args:
        active: the active tree.
        probs: probability model of the current query.
        by: ``"relevance"`` (BioNav: EXPLORE mass) or ``"count"``
            (GoPubMed: component citation count).

    Raises:
        ValueError: unknown ranking policy.
    """
    rows = active.visualize()
    if by == "relevance":
        return rank_siblings(
            rows, lambda row: relevance_of(active, probs, row.node)
        )
    if by == "count":
        return rank_siblings(rows, lambda row: float(row.count))
    raise ValueError("unknown ranking policy %r (expected relevance|count)" % by)
