"""Navigation trees (paper §II, Definitions 1–2).

Given a concept hierarchy and the query result's concept annotations, the
*initial navigation tree* attaches to every concept the list of result
citations associated with it.  Since most concepts end up empty, BioNav
reduces it to the *navigation tree*: the maximum embedding of the initial
tree containing no empty-result nodes (except the root, kept to avoid a
forest), computed in a single depth-first traversal — an empty internal
node is spliced out and replaced by its children, an empty leaf is dropped.

Navigation-tree nodes keep their hierarchy node ids, so labels, depths and
ancestor tests delegate to the hierarchy; only the parent/child structure
is re-wired by the embedding.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.hierarchy.concept import ConceptHierarchy

__all__ = ["NavigationTree"]

Edge = Tuple[int, int]


class NavigationTree:
    """The maximum embedding of the initial navigation tree.

    Attributes:
        hierarchy: the underlying concept hierarchy.
        root: hierarchy node id of the tree root.
    """

    def __init__(
        self,
        hierarchy: ConceptHierarchy,
        parent: Dict[int, int],
        children: Dict[int, List[int]],
        results: Dict[int, FrozenSet[int]],
        root: int,
    ):
        self.hierarchy = hierarchy
        self.root = root
        self._parent = parent
        self._children = children
        self._results = results
        self._subtree_results: Dict[int, FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    # Construction (maximum embedding)
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        hierarchy: ConceptHierarchy,
        annotations: Mapping[int, Iterable[int]],
        root: Optional[int] = None,
    ) -> "NavigationTree":
        """Compute the navigation tree for one query result.

        Args:
            hierarchy: the concept hierarchy.
            annotations: concept node id → citation ids attached to it
                (the restriction of the association table to the result).
            root: subtree to embed within; defaults to the hierarchy root.

        Empty-result concepts are spliced out per Definition 2; the root is
        always kept.
        """
        if root is None:
            root = hierarchy.root
        results = {
            node: frozenset(ids)
            for node, ids in annotations.items()
            if ids
        }
        parent: Dict[int, int] = {root: -1}
        children: Dict[int, List[int]] = {root: []}

        def embed_children(hier_node: int, kept_ancestor: int) -> None:
            """Attach kept descendants of ``hier_node`` under ``kept_ancestor``."""
            stack = list(reversed(hierarchy.children(hier_node)))
            while stack:
                node = stack.pop()
                if node in results:
                    parent[node] = kept_ancestor
                    children[kept_ancestor].append(node)
                    children[node] = []
                    embed_children(node, node)
                else:
                    # Spliced out: its children compete for the same ancestor.
                    # Reverse to preserve left-to-right order under the stack.
                    stack.extend(reversed(hierarchy.children(node)))

        embed_children(root, root)
        kept_results = {
            node: results.get(node, frozenset()) for node in parent
        }
        return cls(hierarchy, parent, children, kept_results, root)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, node: int) -> bool:
        return node in self._parent

    def nodes(self) -> List[int]:
        """All node ids kept by the embedding."""
        return list(self._parent)

    def parent(self, node: int) -> int:
        """Embedded parent of ``node`` (-1 for the root)."""
        return self._parent[node]

    def children(self, node: int) -> Sequence[int]:
        """Embedded-tree children of ``node``, left to right."""
        return tuple(self._children[node])

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` has no embedded children."""
        return not self._children[node]

    def label(self, node: int) -> str:
        """Concept label of ``node`` (delegates to the hierarchy)."""
        self._require(node)
        return self.hierarchy.label(node)

    def edges(self) -> Iterator[Edge]:
        """All (parent, child) edges of the embedded tree."""
        for node, kids in self._children.items():
            for child in kids:
                yield (node, child)

    def iter_dfs(self, start: Optional[int] = None) -> Iterator[int]:
        """Pre-order traversal of the embedded tree."""
        if start is None:
            start = self.root
        self._require(start)
        stack = [start]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._children[node]))

    def subtree_nodes(self, node: int) -> FrozenSet[int]:
        """All embedded-tree nodes in the subtree rooted at ``node``."""
        return frozenset(self.iter_dfs(node))

    def is_tree_ancestor(self, ancestor: int, node: int) -> bool:
        """Ancestor test within the embedded tree (a node is its own ancestor)."""
        self._require(ancestor)
        self._require(node)
        while node != -1:
            if node == ancestor:
                return True
            node = self._parent[node]
        return False

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self, node: int) -> FrozenSet[int]:
        """Citations attached directly to ``node`` (L(n))."""
        self._require(node)
        return self._results[node]

    def subtree_results(self, node: int) -> FrozenSet[int]:
        """Distinct citations attached anywhere in the subtree of ``node``.

        This is the count shown next to each node in the static interface
        (Fig. 1).  Computed once per node, bottom-up, then cached.
        """
        self._require(node)
        cached = self._subtree_results.get(node)
        if cached is not None:
            return cached
        # Iterative post-order accumulation to avoid recursion limits.
        order: List[int] = []
        stack = [node]
        while stack:
            n = stack.pop()
            order.append(n)
            stack.extend(self._children[n])
        for n in reversed(order):
            if n in self._subtree_results:
                continue
            accumulated: Set[int] = set(self._results[n])
            for child in self._children[n]:
                accumulated.update(self._subtree_results[child])
            self._subtree_results[n] = frozenset(accumulated)
        return self._subtree_results[node]

    def distinct_results(self, nodes: Iterable[int]) -> FrozenSet[int]:
        """Distinct citations attached to any node in ``nodes``."""
        combined: Set[int] = set()
        for node in nodes:
            combined.update(self._results[node])
        return frozenset(combined)

    def all_results(self) -> FrozenSet[int]:
        """All distinct citations in the tree."""
        return self.subtree_results(self.root)

    # ------------------------------------------------------------------
    # Statistics (Table I columns)
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Navigation tree size (node count, Table I)."""
        return len(self._parent)

    def max_width(self) -> int:
        """Maximum number of nodes at one embedded-tree depth (Table I)."""
        counts: Dict[int, int] = {}
        for node, depth in self._iter_depths():
            counts[depth] = counts.get(depth, 0) + 1
        return max(counts.values())

    def height(self) -> int:
        """Longest root-to-leaf edge count in the embedded tree (Table I)."""
        return max(depth for _, depth in self._iter_depths())

    def citations_with_duplicates(self) -> int:
        """Total attachment count, duplicates included (Table I).

        Each citation counts once per concept it is attached to.
        """
        return sum(len(ids) for ids in self._results.values())

    def tree_depth(self, node: int) -> int:
        """Depth of ``node`` in the embedded tree (root = 0)."""
        self._require(node)
        depth = 0
        while self._parent[node] != -1:
            node = self._parent[node]
            depth += 1
        return depth

    # ------------------------------------------------------------------
    def _iter_depths(self) -> Iterator[Tuple[int, int]]:
        stack: List[Tuple[int, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            stack.extend((child, depth + 1) for child in self._children[node])

    def _require(self, node: int) -> None:
        if node not in self._parent:
            raise KeyError("node %r is not in the navigation tree" % (node,))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "NavigationTree(%d nodes, %d distinct citations)" % (
            len(self),
            len(self.all_results()),
        )
