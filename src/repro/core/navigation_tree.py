"""Navigation trees (paper §II, Definitions 1–2), array-native.

Given a concept hierarchy and the query result's concept annotations, the
*initial navigation tree* attaches to every concept the list of result
citations associated with it.  Since most concepts end up empty, BioNav
reduces it to the *navigation tree*: the maximum embedding of the initial
tree containing no empty-result nodes (except the root, kept to avoid a
forest), computed over the hierarchy's preorder-encoded positional arrays
(:class:`repro.hierarchy.arrays.HierarchyArrays`) — annotated concepts
become a boolean mask over the root's preorder interval, the nearest kept
ancestor of every node resolves with one array pass per tree level, and
embedded subtree sizes fall out of a cumulative sum of the kept mask.
No per-node Python objects are built on the cold path; at MEDLINE scale
this replaces a ~240ms dict-based construction with a few milliseconds
of whole-array passes (DESIGN.md §15).

Navigation-tree nodes keep their hierarchy node ids, so labels, depths
and ancestor tests delegate to the hierarchy; only the parent/child
structure is re-wired by the embedding.

The tree is immutable once built and stores its structure as flat arrays
in *embedded preorder*: node ids, parents, children-CSR, depths, subtree
sizes, and a per-node results-CSR of sorted citation ids.  Per-node
``frozenset`` views materialize lazily from CSR slices, and the cost
substrate (:class:`repro.core.cost_arrays.CostArrays`) ingests the
buffers whole via :meth:`NavigationTree.preorder_array` and friends.
``tree_depth``, ``is_tree_ancestor`` and ``subtree_size`` remain O(1)
lookups; ``iter_dfs``/``subtree_nodes`` are contiguous slices.

The original dict-based builder is retained verbatim as
:class:`repro.core.navigation_tree_reference.ReferenceNavigationTree`,
the oracle the equivalence suite pins this implementation against.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.hierarchy.concept import ConceptHierarchy

if TYPE_CHECKING:  # substrate imports core; keep the reverse edge lazy
    from repro.substrate.store import CorpusStore

__all__ = ["NavigationTree"]

Edge = Tuple[int, int]


def _freeze(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


class NavigationTree:
    """The maximum embedding of the initial navigation tree.

    Attributes:
        hierarchy: the underlying concept hierarchy.
        root: hierarchy node id of the tree root.
    """

    def __init__(
        self,
        hierarchy: ConceptHierarchy,
        parent: Dict[int, int],
        children: Dict[int, List[int]],
        results: Dict[int, FrozenSet[int]],
        root: int,
    ):
        """Build from explicit embedding mappings (compatibility path).

        :meth:`build` and :meth:`from_store` construct trees through the
        vectorized embedding and never pass through here; this constructor
        keeps the legacy mapping-based signature working by flattening the
        dicts into the internal array form.
        """
        order: List[int] = []
        depth_of: Dict[int, int] = {}
        stack: List[Tuple[int, int]] = [(root, 0)]
        while stack:
            node, depth = stack.pop()
            depth_of[node] = depth
            order.append(node)
            stack.extend((child, depth + 1) for child in reversed(children[node]))
        k = len(order)
        position = {node: index for index, node in enumerate(order)}
        subtree_size: Dict[int, int] = {}
        for node in reversed(order):
            subtree_size[node] = 1 + sum(
                subtree_size[child] for child in children[node]
            )
        child_lengths = np.fromiter(
            (len(children[n]) for n in order), dtype=np.int64, count=k
        )
        child_off = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(child_lengths, out=child_off[1:])
        child_val = np.fromiter(
            (child for n in order for child in children[n]),
            dtype=np.int64,
            count=int(child_off[-1]),
        )
        sorted_results = [sorted(results[n]) for n in order]
        res_lengths = np.fromiter(
            (len(r) for r in sorted_results), dtype=np.int64, count=k
        )
        res_off = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(res_lengths, out=res_off[1:])
        res_val = np.fromiter(
            (c for row in sorted_results for c in row),
            dtype=np.int64,
            count=int(res_off[-1]),
        )
        self._init_arrays(
            hierarchy,
            root,
            order=np.asarray(order, dtype=np.int64),
            eparent=np.fromiter(
                (parent[n] for n in order), dtype=np.int64, count=k
            ),
            edepth=np.fromiter(
                (depth_of[n] for n in order), dtype=np.int64, count=k
            ),
            esize=np.fromiter(
                (subtree_size[n] for n in order), dtype=np.int64, count=k
            ),
            child_off=child_off,
            child_val=child_val,
            res_off=res_off,
            res_val=res_val,
        )

    def _init_arrays(
        self,
        hierarchy: ConceptHierarchy,
        root: int,
        order: np.ndarray,
        eparent: np.ndarray,
        edepth: np.ndarray,
        esize: np.ndarray,
        child_off: np.ndarray,
        child_val: np.ndarray,
        res_off: np.ndarray,
        res_val: np.ndarray,
    ) -> None:
        self.hierarchy = hierarchy
        self.root = root
        self._order = _freeze(order)
        self._eparent = _freeze(eparent)
        self._edepth = _freeze(edepth)
        self._esize = _freeze(esize)
        self._child_off = _freeze(child_off)
        self._child_val = _freeze(child_val)
        self._res_off = _freeze(res_off)
        self._res_val = _freeze(res_val)
        pos_of = np.full(len(hierarchy), -1, dtype=np.int64)
        pos_of[order] = np.arange(len(order), dtype=np.int64)
        self._pos_of = _freeze(pos_of)
        self._results_cache: Dict[int, FrozenSet[int]] = {}
        self._subtree_cache: Dict[int, FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    # Construction (maximum embedding)
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        hierarchy: ConceptHierarchy,
        store: "CorpusStore",
        pmids: Iterable[int],
        root: Optional[int] = None,
    ) -> "NavigationTree":
        """Navigation tree for a result set answered by a corpus store.

        Args:
            hierarchy: the concept hierarchy.
            store: a :class:`~repro.substrate.store.CorpusStore`; its
                ``annotation_arrays`` provides the association restriction
                directly in CSR form (mmap-backed at substrate scale), so
                the tree builds without any per-citation Python objects.
            pmids: the query result's citation ids.
            root: subtree to embed within; defaults to the hierarchy root.
        """
        if root is None:
            root = hierarchy.root
        concepts, offsets, values = store.annotation_arrays(list(pmids))
        size = len(hierarchy)
        if len(concepts) and (
            int(concepts[0]) < 0 or int(concepts[-1]) >= size
        ):
            inside = (concepts >= 0) & (concepts < size)
            keep = np.repeat(inside, np.diff(offsets))
            values = values[keep]
            lengths = np.diff(offsets)[inside]
            concepts = concepts[inside]
            offsets = np.zeros(len(concepts) + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
        return cls._embed(hierarchy, root, concepts, offsets, values)

    @classmethod
    def build(
        cls,
        hierarchy: ConceptHierarchy,
        annotations: Mapping[int, Iterable[int]],
        root: Optional[int] = None,
    ) -> "NavigationTree":
        """Compute the navigation tree for one query result.

        Args:
            hierarchy: the concept hierarchy.
            annotations: concept node id → citation ids attached to it
                (the restriction of the association table to the result).
            root: subtree to embed within; defaults to the hierarchy root.

        Empty-result concepts are spliced out per Definition 2; the root is
        always kept.  Matching the reference builder, annotation entries
        whose value is falsy are treated as absent, and keys outside the
        hierarchy are ignored.
        """
        if root is None:
            root = hierarchy.root
        size = len(hierarchy)
        concept_list: List[int] = []
        value_lists: List[List[int]] = []
        for node, ids in annotations.items():
            if not ids:
                continue
            try:
                index = operator.index(node)
            except TypeError:
                continue
            if not 0 <= index < size:
                continue
            concept_list.append(index)
            value_lists.append(sorted(set(ids)))
        concepts = np.asarray(concept_list, dtype=np.int64)
        sort = np.argsort(concepts, kind="stable")
        concepts = concepts[sort]
        value_lists = [value_lists[i] for i in sort.tolist()]
        lengths = np.fromiter(
            (len(row) for row in value_lists),
            dtype=np.int64,
            count=len(value_lists),
        )
        offsets = np.zeros(len(value_lists) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        values = np.fromiter(
            (c for row in value_lists for c in row),
            dtype=np.int64,
            count=int(offsets[-1]),
        )
        return cls._embed(hierarchy, root, concepts, offsets, values)

    @classmethod
    def _embed(
        cls,
        hierarchy: ConceptHierarchy,
        root: int,
        concepts: np.ndarray,
        res_off: np.ndarray,
        res_val: np.ndarray,
    ) -> "NavigationTree":
        """Vectorized maximum embedding over the hierarchy arrays.

        ``concepts`` lists the annotated concept ids sorted ascending;
        row ``i`` of the (``res_off``, ``res_val``) CSR holds concept
        ``concepts[i]``'s citations, sorted.  Presence in ``concepts``
        marks a node annotated (kept) even when its row is empty, which
        mirrors the reference builder's truthiness test on the raw
        annotation value.

        Everything below runs in *hierarchy preorder position* space,
        restricted to the root's contiguous preorder window: the kept
        set becomes a boolean mask, nearest-kept-ancestor links resolve
        level-by-level (one vectorized pass per tree level, ~11 for
        MeSH), and embedded subtree sizes are differences of the kept
        mask's cumulative sum over hierarchy subtree intervals.
        """
        arrays = hierarchy.arrays()
        positions = arrays.positions
        preorder = arrays.preorder
        hsizes = arrays.subtree_sizes
        hdepths = arrays.depths
        hparents = arrays.parents

        window_begin = int(positions[root])
        window_len = int(hsizes[root])
        win_nodes = preorder[window_begin : window_begin + window_len]

        kept = np.zeros(window_len, dtype=bool)
        if len(concepts):
            cpos = positions[concepts].astype(np.int64) - window_begin
            inside = (cpos >= 0) & (cpos < window_len)
            kept[cpos[inside]] = True
        kept[0] = True  # the root survives every embedding

        kept_idx = np.flatnonzero(kept)
        k = len(kept_idx)
        kept_nodes = win_nodes[kept_idx].astype(np.int64)

        # Parent window index per window node; the root's is a sentinel.
        par_widx = np.empty(window_len, dtype=np.int64)
        par_widx[0] = 0
        if window_len > 1:
            par_widx[1:] = (
                positions[hparents[win_nodes[1:]]].astype(np.int64) - window_begin
            )

        # Group window nodes by relative depth once; each embedding pass
        # below is one slice per tree level.
        rdepth = hdepths[win_nodes].astype(np.int64) - int(hdepths[root])
        depth_order = np.argsort(rdepth, kind="stable")
        sorted_depth = rdepth[depth_order]
        max_depth = int(sorted_depth[-1])
        level_bounds = np.searchsorted(sorted_depth, np.arange(max_depth + 2))

        # Nearest kept ancestor-or-self, top-down: a kept node anchors
        # itself, a spliced-out node inherits its parent's anchor.
        nearest_kept = np.zeros(window_len, dtype=np.int64)
        for depth in range(1, max_depth + 1):
            level = depth_order[level_bounds[depth] : level_bounds[depth + 1]]
            nearest_kept[level] = np.where(
                kept[level], level, nearest_kept[par_widx[level]]
            )

        # Embedded position of each kept window index.
        epos_of_widx = np.cumsum(kept) - 1

        # Embedded parent, as an embedded position (-1 for the root).
        eparent_pos = np.full(k, -1, dtype=np.int64)
        if k > 1:
            eparent_pos[1:] = epos_of_widx[
                nearest_kept[par_widx[kept_idx[1:]]]
            ]

        # Embedded depth, level-synchronous: a kept node's embedded parent
        # sits at a strictly smaller hierarchy depth, so walking hierarchy
        # levels in order sees every parent before its children.
        edepth = np.zeros(k, dtype=np.int64)
        kept_rdepth = rdepth[kept_idx]
        korder = np.argsort(kept_rdepth, kind="stable")
        ksorted = kept_rdepth[korder]
        kmax = int(ksorted[-1])
        kbounds = np.searchsorted(ksorted, np.arange(kmax + 2))
        for depth in range(1, kmax + 1):
            level = korder[kbounds[depth] : kbounds[depth + 1]]
            edepth[level] = edepth[eparent_pos[level]] + 1

        # Embedded subtree size = kept nodes inside the hierarchy interval.
        kept_cumsum = np.zeros(window_len + 1, dtype=np.int64)
        np.cumsum(kept, out=kept_cumsum[1:])
        interval_end = kept_idx + hsizes[kept_nodes].astype(np.int64)
        esize = kept_cumsum[interval_end] - kept_cumsum[kept_idx]

        # Children CSR in embedded order (embedded preorder == hierarchy
        # preorder restricted to the kept set, so a stable sort by parent
        # lists each sibling group left to right).
        child_off = np.zeros(k + 1, dtype=np.int64)
        if k > 1:
            counts = np.bincount(eparent_pos[1:], minlength=k)
            np.cumsum(counts, out=child_off[1:])
            corder = np.argsort(eparent_pos[1:], kind="stable")
            child_val = kept_nodes[corder + 1]
        else:
            child_val = np.empty(0, dtype=np.int64)

        # Per-node results CSR, re-keyed from annotated-concept rows to
        # embedded preorder via one searchsorted + segmented gather.
        if len(concepts):
            row = np.minimum(
                np.searchsorted(concepts, kept_nodes), len(concepts) - 1
            )
            present = concepts[row] == kept_nodes
            src_lengths = np.diff(res_off)
            lengths = np.where(present, src_lengths[row], 0)
        else:
            lengths = np.zeros(k, dtype=np.int64)
        res_off_e = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(lengths, out=res_off_e[1:])
        total = int(res_off_e[-1])
        if total:
            present_rows = row[present]
            present_lengths = lengths[present]
            base = np.repeat(res_off[present_rows], present_lengths)
            reset = np.repeat(
                np.cumsum(present_lengths) - present_lengths, present_lengths
            )
            res_val_e = res_val[base + np.arange(total) - reset].astype(np.int64)
        else:
            res_val_e = np.empty(0, dtype=np.int64)

        self = object.__new__(cls)
        self._init_arrays(
            hierarchy,
            root,
            order=kept_nodes,
            eparent=np.where(
                eparent_pos >= 0, kept_nodes[np.maximum(eparent_pos, 0)], -1
            ),
            edepth=edepth,
            esize=esize.astype(np.int64),
            child_off=child_off,
            child_val=child_val,
            res_off=res_off_e,
            res_val=res_val_e,
        )
        return self

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, node: int) -> bool:
        return self._position_of(node) >= 0

    def nodes(self) -> List[int]:
        """All node ids kept by the embedding, in embedded preorder."""
        return self._order.tolist()

    def parent(self, node: int) -> int:
        """Embedded parent of ``node`` (-1 for the root)."""
        return int(self._eparent[self._require_raw(node)])

    def children(self, node: int) -> Sequence[int]:
        """Embedded-tree children of ``node``, left to right."""
        position = self._require_raw(node)
        begin, end = self._child_off[position], self._child_off[position + 1]
        return tuple(self._child_val[begin:end].tolist())

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` has no embedded children."""
        position = self._require_raw(node)
        return int(self._child_off[position]) == int(self._child_off[position + 1])

    def label(self, node: int) -> str:
        """Concept label of ``node`` (delegates to the hierarchy)."""
        self._require(node)
        return self.hierarchy.label(node)

    def edges(self) -> Iterator[Edge]:
        """All (parent, child) edges of the embedded tree."""
        order = self._order.tolist()
        offsets = self._child_off.tolist()
        child_val = self._child_val.tolist()
        for position, node in enumerate(order):
            for child in child_val[offsets[position] : offsets[position + 1]]:
                yield (node, child)

    def iter_dfs(self, start: Optional[int] = None) -> Iterator[int]:
        """Pre-order traversal of the embedded tree.

        Served from the stored preorder: the subtree of ``start`` is a
        contiguous slice of it, so iteration does no stack bookkeeping.
        """
        if start is None:
            start = self.root
        position = self._require(start)
        end = position + int(self._esize[position])
        return iter(self._order[position:end].tolist())

    def subtree_nodes(self, node: int) -> FrozenSet[int]:
        """All embedded-tree nodes in the subtree rooted at ``node``."""
        position = self._require(node)
        end = position + int(self._esize[position])
        return frozenset(self._order[position:end].tolist())

    def subtree_size(self, node: int) -> int:
        """Number of embedded-tree nodes in the subtree of ``node`` (O(1))."""
        return int(self._esize[self._require(node)])

    def is_tree_ancestor(self, ancestor: int, node: int) -> bool:
        """Ancestor test within the embedded tree (a node is its own ancestor).

        O(1) via preorder intervals: ``ancestor`` spans a contiguous
        preorder range, and ``node`` is a descendant iff its preorder
        position falls inside it.
        """
        begin = self._require(ancestor)
        position = self._require(node)
        return begin <= position < begin + int(self._esize[begin])

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self, node: int) -> FrozenSet[int]:
        """Citations attached directly to ``node`` (L(n))."""
        position = self._require(node)
        cached = self._results_cache.get(position)
        if cached is None:
            begin, end = self._res_off[position], self._res_off[position + 1]
            cached = frozenset(self._res_val[begin:end].tolist())
            self._results_cache[position] = cached
        return cached

    def subtree_results(self, node: int) -> FrozenSet[int]:
        """Distinct citations attached anywhere in the subtree of ``node``.

        This is the count shown next to each node in the static interface
        (Fig. 1).  The subtree's rows are contiguous in the results CSR,
        so the union is one ``np.unique`` over a slice; computed once per
        node, then cached.
        """
        position = self._require(node)
        cached = self._subtree_cache.get(position)
        if cached is None:
            end = position + int(self._esize[position])
            begin_v, end_v = self._res_off[position], self._res_off[end]
            cached = frozenset(np.unique(self._res_val[begin_v:end_v]).tolist())
            self._subtree_cache[position] = cached
        return cached

    def distinct_results(self, nodes: Iterable[int]) -> FrozenSet[int]:
        """Distinct citations attached to any node in ``nodes``."""
        combined: Set[int] = set()
        offsets = self._res_off
        values = self._res_val
        for node in nodes:
            position = self._require_raw(node)
            combined.update(
                values[offsets[position] : offsets[position + 1]].tolist()
            )
        return frozenset(combined)

    def all_results(self) -> FrozenSet[int]:
        """All distinct citations in the tree."""
        return self.subtree_results(self.root)

    # ------------------------------------------------------------------
    # Array views (the cost-substrate ingestion seam)
    # ------------------------------------------------------------------
    def preorder_array(self) -> np.ndarray:
        """Node ids in embedded preorder (``int64``, read-only)."""
        return self._order

    def subtree_size_array(self) -> np.ndarray:
        """Embedded subtree sizes per preorder position (read-only)."""
        return self._esize

    def result_offsets_array(self) -> np.ndarray:
        """Results-CSR offsets per preorder position (read-only)."""
        return self._res_off

    def result_values_array(self) -> np.ndarray:
        """Results-CSR values: per-node sorted citation ids (read-only)."""
        return self._res_val

    # ------------------------------------------------------------------
    # Statistics (Table I columns)
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Navigation tree size (node count, Table I)."""
        return len(self._order)

    def max_width(self) -> int:
        """Maximum number of nodes at one embedded-tree depth (Table I)."""
        return int(np.bincount(self._edepth).max())

    def height(self) -> int:
        """Longest root-to-leaf edge count in the embedded tree (Table I)."""
        return int(self._edepth.max())

    def citations_with_duplicates(self) -> int:
        """Total attachment count, duplicates included (Table I).

        Each citation counts once per concept it is attached to.
        """
        return len(self._res_val)

    def tree_depth(self, node: int) -> int:
        """Depth of ``node`` in the embedded tree (root = 0, O(1))."""
        return int(self._edepth[self._require(node)])

    # ------------------------------------------------------------------
    def _position_of(self, node: int) -> int:
        try:
            index = operator.index(node)
        except TypeError:
            return -1
        if not 0 <= index < len(self._pos_of):
            return -1
        return int(self._pos_of[index])

    def _require(self, node: int) -> int:
        position = self._position_of(node)
        if position < 0:
            raise KeyError("node %r is not in the navigation tree" % (node,))
        return position

    def _require_raw(self, node: int) -> int:
        """Like :meth:`_require` with the legacy dict-lookup exception.

        ``parent``/``children``/``is_leaf`` historically read straight
        out of per-node dicts, so their miss surface is a bare
        ``KeyError(node)``; preserved for observational parity.
        """
        position = self._position_of(node)
        if position < 0:
            raise KeyError(node)
        return position

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "NavigationTree(%d nodes, %d distinct citations)" % (
            len(self),
            len(self.all_results()),
        )
