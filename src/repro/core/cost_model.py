"""The TOPDOWN navigation cost model (paper §III).

The cost model charges the user:

* ``reveal_cost`` (1) for examining each concept node revealed by an
  EXPAND action,
* ``expand_cost`` (1) for executing each EXPAND action, and
* ``citation_cost`` (1) for each citation displayed by SHOWRESULTS.

The expected cost of exploring a component subtree ``I(n)`` is

    cost(I(n)) = pE(I(n)) * ( (1 - pX(I(n))) * |R(I(n))|
                            + pX(I(n)) * ( expand_cost
                                           + Σ_{m ∈ C} (reveal_cost + cost(I'(m))) ) )

where ``C`` is the set of component roots returned by the chosen EdgeCut
(the upper root plus every lower root), and ``I'`` the updated components.
Raising ``expand_cost`` makes each EXPAND reveal more concepts (paper §III,
final remark) — ablated in ``benchmarks/bench_ablation_expand_cost.py``.

This module also provides :class:`CostLedger`, the bookkeeping used to
report actual (not expected) navigation costs in the Fig. 8/9 experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CostParams", "CostLedger", "costs_equal", "cost_improves", "COST_RTOL"]

# Relative tolerance for comparing independently computed costs.  Costs
# are sums/products of O(tree-size) IEEE doubles, so equal quantities
# computed along different association orders agree to far better than
# 1e-9 relative; anything farther apart is a genuine difference.
COST_RTOL = 1e-9


def costs_equal(a: float, b: float, rtol: float = COST_RTOL) -> bool:
    """Tolerance equality for independently computed cost values.

    This is the sanctioned replacement for ``==`` on floats (the
    ``float-equality`` analyzer rule): two costs that agree within
    ``rtol`` relative tolerance are the same expected cost, differing
    only by floating-point association order.

    Note the solver engines themselves must NOT use this for tie-breaking
    — their bit-identical-to-reference guarantee requires exact strict
    ``<`` first-minimum comparisons on costs accumulated in canonical
    order (see DESIGN.md §8).  Use it in evaluation, tests, and callers
    comparing costs that were produced by different computation paths.
    """
    return math.isclose(a, b, rel_tol=rtol, abs_tol=rtol)


def cost_improves(candidate: float, best: float) -> bool:
    """First-minimum tie-break: does ``candidate`` strictly beat ``best``?

    The sanctioned solver comparison: strictly smaller wins, equal keeps
    the incumbent.  Both Opt-EdgeCut engines break ties this way, which
    is what makes their enumeration-order agreement observable as
    bit-identical ``BestCut`` values.
    """
    return candidate < best


@dataclass(frozen=True)
class CostParams:
    """Unit costs of the three user efforts (paper defaults: all 1)."""

    expand_cost: float = 1.0
    reveal_cost: float = 1.0
    citation_cost: float = 1.0

    def __post_init__(self) -> None:
        if min(self.expand_cost, self.reveal_cost, self.citation_cost) < 0:
            raise ValueError("costs must be non-negative")


@dataclass
class CostLedger:
    """Accumulates the actual cost of one navigation (Fig. 8 metric).

    ``navigation_cost`` is the paper's Fig. 8 measure — concepts revealed
    plus EXPAND actions — while ``total_cost`` additionally includes the
    citations displayed by SHOWRESULTS.
    """

    params: CostParams = field(default_factory=CostParams)
    expand_actions: int = 0
    concepts_revealed: int = 0
    citations_displayed: int = 0

    def charge_expand(self, concepts_revealed: int) -> None:
        """Record one EXPAND action revealing ``concepts_revealed`` nodes."""
        if concepts_revealed < 0:
            raise ValueError("cannot reveal a negative number of concepts")
        self.expand_actions += 1
        self.concepts_revealed += concepts_revealed

    def charge_show_results(self, citations: int) -> None:
        """Record one SHOWRESULTS action listing ``citations`` citations."""
        if citations < 0:
            raise ValueError("cannot display a negative number of citations")
        self.citations_displayed += citations

    @property
    def navigation_cost(self) -> float:
        """Concepts revealed + EXPAND actions (the Fig. 8 y-axis)."""
        return (
            self.params.reveal_cost * self.concepts_revealed
            + self.params.expand_cost * self.expand_actions
        )

    @property
    def total_cost(self) -> float:
        """Navigation cost plus the SHOWRESULTS citation cost."""
        return (
            self.navigation_cost
            + self.params.citation_cost * self.citations_displayed
        )
