"""Vectorized array substrate for the §IV cost model.

The scalar :class:`~repro.core.probabilities.ProbabilityModel` evaluates
one component at a time with Python loops — fine for a single EXPAND,
but the product p99 driver at MEDLINE scale is exactly that per-EXPAND
evaluation, repeated over every candidate component a cut enumeration
or a relevance ranking touches.  :class:`CostArrays` precomputes, once
per navigation tree, contiguous per-concept arrays in **preorder**:

* ``result_counts`` — ``|L(n)|`` per node;
* ``log_lt`` — the clamped ``log LT(n)`` IDF denominators;
* ``explore_mass`` — the unnormalized EXPLORE weights
  ``|L(n)| / log LT(n)`` (or plain ``|L(n)|`` without IDF);
* ``subtree_begin`` / ``subtree_size`` — the preorder interval indices
  (PR 1's tree indices, lifted into arrays), so every subtree is one
  contiguous slice;
* packed **citation bitmaps** (built lazily on first distinct-count
  use) — one bit per distinct citation of the tree, so distinct-result
  counting over any batch of components is a byte-wise OR plus a
  popcount table lookup, with no Python set unions.

On top of those it exposes batch kernels — :meth:`explore`,
:meth:`expand`, :meth:`distinct_counts`, :meth:`normalized_entropy` —
that evaluate **whole batches of candidate components in one shot**:
components are flattened into one member array plus segment offsets,
sums run as segmented reductions, the EXPAND thresholds become
``np.where`` selections, and the entropy term is a masked ``p·log p``
over the flattened member-count vector.

Equivalence contract (the scalar model stays the reference oracle)
------------------------------------------------------------------

Per-node quantities (``explore_mass``, ``result_counts``, ``log_lt``)
are elementwise and bit-identical to the scalar model, which now derives
its own per-node mass from this substrate.  *Aggregates* — component
EXPLORE sums and entropy terms — legitimately differ from the scalar
loops in the last ulps: numpy's segmented reductions use pairwise
summation, while the scalar oracle accumulates sequentially over sorted
members.  Both orders are deterministic, and the property suite
(``tests/test_cost_arrays.py``) pins the agreement to ≤ 1e-9 relative.
Threshold comparisons (``distinct_count`` against the lower/upper
bounds) are exact integer arithmetic on both sides, so batch and scalar
EXPAND always agree on which branch of the threshold logic applies.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.navigation_tree import NavigationTree

__all__ = ["CostArrays", "segment_sums", "POPCOUNT_TABLE"]

#: Bits set per byte value; ``POPCOUNT_TABLE[packed].sum()`` is the
#: population count of a packed bitmap.
POPCOUNT_TABLE = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.int64)
POPCOUNT_TABLE.setflags(write=False)


def segment_sums(
    values: np.ndarray, offsets: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Per-segment sums of a flattened batch (empty segments sum to 0).

    ``values`` holds every segment back to back; segment ``i`` spans
    ``values[offsets[i] : offsets[i] + lengths[i]]``.  Built on
    ``np.add.reduceat`` over ``values`` plus a zero sentinel: a trailing
    empty segment's offset equals ``len(values)``, which is a valid
    index into the extended array, so no offset ever has to be clamped
    onto the preceding segment's final element (clamping would shift
    that segment's reduction boundary and truncate its sum).  The
    remaining reduceat quirk — an empty segment reports the element *at*
    its offset — is masked out explicitly.
    """
    out = np.zeros(len(offsets), dtype=np.float64)
    if len(values) == 0 or len(offsets) == 0:
        return out
    extended = np.zeros(len(values) + 1, dtype=np.float64)
    extended[: len(values)] = values
    sums = np.add.reduceat(extended, offsets)
    nonempty = lengths > 0
    out[nonempty] = sums[nonempty]
    return out


class CostArrays:
    """Per-tree cost-model arrays plus batched evaluation kernels.

    Built once per navigation tree (the nav-tree pipeline stage carries
    it, content-keyed, so every session of a query shares one instance).
    All kernels take a *batch* of components — any iterable of node-id
    iterables — and return one numpy array with a value per component.

    Attributes:
        tree: the navigation tree the arrays describe.
        preorder_ids: node ids in preorder (``int64``).
        result_counts: ``|L(n)|`` per preorder position (``int64``).
        log_lt: clamped ``log LT(n)`` per preorder position.
        explore_mass: unnormalized EXPLORE weight per preorder position.
        normalizer: the scalar model's EXPLORE normalizer ``Z`` (the
            sequential preorder sum, kept bit-identical to the oracle).
        subtree_begin: preorder position of each node's subtree slice.
        subtree_size: node count of each node's subtree slice.
        upper_threshold: result count above which EXPAND is certain.
        lower_threshold: result count below which EXPAND never happens.
        use_idf: whether ``explore_mass`` carries the IDF discount.
        content_key: deterministic digest of the arrays (40 hex chars),
            shared by every session of the same tree + thresholds.
    """

    def __init__(
        self,
        tree: NavigationTree,
        medline_count: Callable[[int], int],
        upper_threshold: int = 50,
        lower_threshold: int = 10,
        use_idf: bool = True,
    ):
        self.tree = tree
        self.upper_threshold = upper_threshold
        self.lower_threshold = lower_threshold
        self.use_idf = use_idf
        # A corpus store (anything exposing a ``medline_count`` method)
        # is accepted in place of the bare LT callable.
        bound = getattr(medline_count, "medline_count", None)
        if callable(bound):
            medline_count = bound

        # Array-native trees hand their buffers over whole; the legacy
        # per-node loops remain for mapping-backed trees (including the
        # reference oracle) and stay bit-identical — preorder positions
        # are by construction 0..k-1, result counts are the CSR row
        # lengths, and the rows hold each node's sorted citations.
        array_native = hasattr(tree, "result_offsets_array")
        if array_native:
            self.preorder_ids = np.asarray(tree.preorder_array(), dtype=np.int64)
            preorder: List[int] = self.preorder_ids.tolist()
            k = len(preorder)
            self._position: Dict[int, int] = {
                node: index for index, node in enumerate(preorder)
            }
            self.result_counts = np.diff(
                np.asarray(tree.result_offsets_array(), dtype=np.int64)
            )
        else:
            preorder = list(tree.iter_dfs())
            k = len(preorder)
            self.preorder_ids = np.asarray(preorder, dtype=np.int64)
            self._position = {
                node: index for index, node in enumerate(preorder)
            }
            self.result_counts = np.fromiter(
                (len(tree.results(n)) for n in preorder), dtype=np.int64, count=k
            )
        lt = np.fromiter(
            (max(2, medline_count(n)) for n in preorder), dtype=np.float64, count=k
        )
        self.log_lt = np.log(lt)
        counts_f = self.result_counts.astype(np.float64)
        if use_idf:
            mass = counts_f / self.log_lt
        else:
            mass = counts_f
        # Empty nodes carry zero mass regardless of the IDF denominator.
        self.explore_mass = np.where(self.result_counts > 0, mass, 0.0)
        # ``|L(n)|·log |L(n)|`` per node (0 for empty nodes): the entropy
        # kernel's precomputed term — see :meth:`normalized_entropy`.
        self._count_log_count = np.where(
            self.result_counts > 0,
            counts_f * np.log(np.maximum(counts_f, 1.0)),
            0.0,
        )

        # The normalizer is accumulated sequentially in preorder — the
        # exact float the scalar oracle computes — so pE values agree to
        # the last bit wherever no other aggregation intervenes.
        total = 0.0
        for value in self.explore_mass.tolist():  # repro: ignore[vectorize]
            total += value
        self.normalizer = total if total > 0 else 1.0

        # Preorder interval indices: the subtree of a node is one
        # contiguous slice of the preorder (PR 1's positional indices).
        if array_native:
            self.subtree_begin = np.arange(k, dtype=np.int64)
            self.subtree_size = np.asarray(
                tree.subtree_size_array(), dtype=np.int64
            ).copy()
        else:
            self.subtree_begin = np.fromiter(
                (self._position[n] for n in preorder), dtype=np.int64, count=k
            )
            self.subtree_size = np.fromiter(
                (tree.subtree_size(n) for n in preorder), dtype=np.int64, count=k
            )

        # The packed citation bitmaps back only the distinct-count /
        # EXPAND batch kernels, and at MEDLINE scale they are the one
        # expensive part of the substrate — so they are built lazily on
        # first use (see :attr:`packed_results`).  Callers that only
        # need the per-node arrays (the scalar model derives its mass
        # table here) never pay for them.
        self.universe_size = len(tree.all_results())
        self._packed: "np.ndarray | None" = None

        # The substrate is shared by every session of a query (and, per
        # the ROADMAP, across serving processes): freeze the arrays so
        # any in-place write — which would silently corrupt every other
        # session's solves — raises immediately instead.  The lazy
        # bitmap build freezes its array in :meth:`_build_packed`.
        for array in (
            self.preorder_ids,
            self.result_counts,
            self.log_lt,
            self.explore_mass,
            self._count_log_count,
            self.subtree_begin,
            self.subtree_size,
        ):
            array.setflags(write=False)

        self.content_key = self._compute_key()

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def _compute_key(self) -> str:
        """Digest the arrays and thresholds into a 40-hex content key.

        Citation identity is hashed directly from the per-node sorted
        citation ids (``result_counts``, hashed first, delimits the
        per-node runs) rather than from the packed bitmaps, so keying
        never forces the lazy bitmap build.
        """
        hasher = hashlib.sha256()
        hasher.update(b"cost_arrays\x1e")
        hasher.update(
            ("%d|%d|%d" % (self.upper_threshold, self.lower_threshold, self.use_idf)).encode()
        )
        for array in (self.preorder_ids, self.result_counts, self.log_lt):
            hasher.update(array.tobytes())
        values_array = getattr(self.tree, "result_values_array", None)
        if values_array is not None:
            # The results CSR concatenates each node's sorted citations in
            # preorder, skipping empty nodes implicitly — byte for byte
            # the stream the per-node loop below produces.
            hasher.update(
                np.ascontiguousarray(values_array(), dtype=np.int64).tobytes()
            )
        else:
            for node in self.preorder_ids.tolist():  # repro: ignore[vectorize]
                citations = sorted(self.tree.results(node))
                if citations:
                    hasher.update(np.asarray(citations, dtype=np.int64).tobytes())
        return hasher.hexdigest()[:40]

    def __len__(self) -> int:
        return len(self.preorder_ids)

    # ------------------------------------------------------------------
    # Citation bitmaps (lazy)
    # ------------------------------------------------------------------
    @property
    def packed_results(self) -> np.ndarray:
        """Packed citation bitmaps, built on first batch-kernel use.

        Bit ``j`` of row ``i`` is set iff citation ``j`` (in sorted
        citation-id order, so the layout is content-deterministic) is
        attached to preorder node ``i``.  Rows are built in packed form
        directly — one byte per 8 citations, MSB first, matching
        ``np.packbits`` — never materializing the dense ``k × U`` byte
        matrix, whose 8× transient would reach gigabytes at MEDLINE
        scale.
        """
        if self._packed is None:
            self._packed = self._build_packed()
        return self._packed

    def _build_packed(self) -> np.ndarray:
        width = max(1, (self.universe_size + 7) // 8)
        packed = np.zeros((len(self.preorder_ids), width), dtype=np.uint8)
        values_array = getattr(self.tree, "result_values_array", None)
        if values_array is not None:
            # One scatter for the whole matrix: universe bit positions by
            # searchsorted over the distinct sorted citations, row index
            # by repeating each preorder position over its CSR run.
            values = np.asarray(values_array(), dtype=np.int64)
            if values.size:
                universe = np.unique(values)
                bits = np.searchsorted(universe, values)
                rows = np.repeat(
                    np.arange(len(self.preorder_ids), dtype=np.int64),
                    self.result_counts,
                )
                np.bitwise_or.at(
                    packed,
                    (rows, bits >> 3),
                    np.left_shift(1, 7 - (bits & 7)).astype(np.uint8),
                )
            packed.setflags(write=False)
            return packed
        citation_bit = {
            citation: bit
            for bit, citation in enumerate(sorted(self.tree.all_results()))
        }
        for index, node in enumerate(self.preorder_ids.tolist()):  # repro: ignore[vectorize]
            citations = self.tree.results(node)
            if not citations:
                continue
            bits = np.fromiter(
                (citation_bit[c] for c in citations),
                dtype=np.int64,
                count=len(citations),
            )
            np.bitwise_or.at(
                packed[index],
                bits >> 3,
                np.left_shift(1, 7 - (bits & 7)).astype(np.uint8),
            )
        packed.setflags(write=False)
        return packed

    # ------------------------------------------------------------------
    # Index helpers
    # ------------------------------------------------------------------
    def positions(self, nodes: Iterable[int]) -> np.ndarray:
        """Preorder positions of ``nodes``, in the given order."""
        position = self._position
        return np.fromiter((position[n] for n in nodes), dtype=np.int64)

    def subtree_interval(self, node: int) -> Tuple[int, int]:
        """``(begin, size)`` of the node's contiguous preorder slice."""
        index = self._position[node]
        return int(self.subtree_begin[index]), int(self.subtree_size[index])

    def flatten(
        self, components: Sequence[Iterable[int]]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten a batch of components into (positions, offsets, lengths).

        Members are taken in sorted node-id order — the scalar oracle's
        documented accumulation order — so the flattening (and therefore
        every kernel value) depends only on component contents.  One pass
        builds a single flat index list (one array allocation total):
        per-component numpy allocations would dominate the kernels at
        production component sizes.
        """
        position = self._position
        flat_list: List[int] = []
        length_list: List[int] = []
        for component in components:
            members = sorted(component)
            flat_list.extend(position[n] for n in members)
            length_list.append(len(members))
        lengths = np.asarray(length_list, dtype=np.int64)
        offsets = np.zeros(len(length_list), dtype=np.int64)
        if len(length_list) > 1:
            np.cumsum(lengths[:-1], out=offsets[1:])
        flat = np.asarray(flat_list, dtype=np.int64)
        return flat, offsets, lengths

    # ------------------------------------------------------------------
    # EXPLORE kernels
    # ------------------------------------------------------------------
    def explore_mass_sums(self, components: Sequence[Iterable[int]]) -> np.ndarray:
        """Unnormalized EXPLORE mass per component (batch)."""
        flat, offsets, lengths = self.flatten(components)
        return segment_sums(self.explore_mass[flat], offsets, lengths)

    def explore(self, components: Sequence[Iterable[int]]) -> np.ndarray:
        """``pE(I(n))`` per component (batch): mass sums over ``Z``."""
        return self.explore_mass_sums(components) / self.normalizer

    # ------------------------------------------------------------------
    # Distinct-result kernel (exact integers)
    # ------------------------------------------------------------------
    def distinct_counts(self, components: Sequence[Iterable[int]]) -> np.ndarray:
        """Distinct citations per component (batch, exact).

        Byte-wise OR of the members' packed bitmaps per segment, then a
        table popcount — integer arithmetic, so results equal
        ``len(tree.distinct_results(component))`` bit for bit.
        """
        flat, offsets, lengths = self.flatten(components)
        return self._distinct_from_flat(flat, offsets, lengths)

    def _distinct_from_flat(
        self, flat: np.ndarray, offsets: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        out = np.zeros(len(offsets), dtype=np.int64)
        if len(flat) == 0 or len(offsets) == 0:
            return out
        # Zero sentinel row, for the same reason as segment_sums: trailing
        # empty segments sit at offset len(flat), and clamping them onto
        # the previous row would truncate that segment's OR.
        rows = self.packed_results[flat]
        extended = np.zeros((len(flat) + 1, rows.shape[1]), dtype=np.uint8)
        extended[: len(flat)] = rows
        orred = np.bitwise_or.reduceat(extended, offsets, axis=0)
        counts = POPCOUNT_TABLE[orred].sum(axis=1)
        nonempty = lengths > 0
        out[nonempty] = counts[nonempty]
        return out

    # ------------------------------------------------------------------
    # EXPAND kernels
    # ------------------------------------------------------------------
    def normalized_entropy(
        self,
        member_counts: np.ndarray,
        offsets: np.ndarray,
        lengths: np.ndarray,
    ) -> np.ndarray:
        """Normalized entropy per segment of a flattened count batch.

        Mirrors the scalar ``_normalized_entropy``: the distribution is
        each member's ``|L(m)|`` over the segment total, the maximum is
        the uniform/no-duplicate ``log(members)`` (zero-count members
        included in the denominator), and the ratio is clamped to 1.
        Evaluated in the algebraic form ``log T − (Σ c·log c) / T`` —
        two segmented sums instead of a per-member division — which
        agrees with the scalar ``-Σ p·log p`` within the 1e-9 contract.
        """
        counts = member_counts.astype(np.float64)
        clogc = np.where(counts > 0, counts * np.log(np.maximum(counts, 1.0)), 0.0)
        return self._entropy_from_terms(counts, clogc, offsets, lengths)

    def _entropy_from_terms(
        self,
        counts: np.ndarray,
        clogc: np.ndarray,
        offsets: np.ndarray,
        lengths: np.ndarray,
    ) -> np.ndarray:
        totals = segment_sums(counts, offsets, lengths)
        safe_totals = np.where(totals > 0, totals, 1.0)
        entropy = (
            np.log(safe_totals) - segment_sums(clogc, offsets, lengths) / safe_totals
        )
        max_entropy = np.log(np.maximum(lengths, 1).astype(np.float64))
        ratio = np.minimum(1.0, entropy / np.where(max_entropy > 0, max_entropy, 1.0))
        return np.where((totals > 0) & (max_entropy > 0), ratio, 0.0)

    def expand_from_segments(
        self,
        member_counts: np.ndarray,
        offsets: np.ndarray,
        lengths: np.ndarray,
        distinct: np.ndarray,
    ) -> np.ndarray:
        """EXPAND probabilities from raw component statistics (batch).

        The batched counterpart of the scalar
        ``expand_from_distribution``: ``member_counts`` holds every
        component's ``|L(m)|`` histogram back to back, ``distinct`` the
        distinct-citation counts.  Heuristic reduced trees feed their
        supernode histograms through this kernel directly.
        """
        entropy = self.normalized_entropy(member_counts, offsets, lengths)
        return self._apply_thresholds(entropy, lengths, distinct)

    def _apply_thresholds(
        self, entropy: np.ndarray, lengths: np.ndarray, distinct: np.ndarray
    ) -> np.ndarray:
        return np.where(
            lengths <= 1,
            0.0,
            np.where(
                distinct > self.upper_threshold,
                1.0,
                np.where(distinct < self.lower_threshold, 0.0, entropy),
            ),
        )

    def expand(self, components: Sequence[Iterable[int]]) -> np.ndarray:
        """``pX(I(n))`` per component (batch).

        Zero for singletons, one above the upper result-count threshold,
        zero below the lower, normalized entropy in between — the same
        decision tree as the scalar ``expand``, applied as ``np.where``
        selections over the whole batch.  The entropy term reuses the
        precomputed per-node ``|L(n)|·log |L(n)|`` array, so the whole
        evaluation is gathers and segmented reductions.
        """
        flat, offsets, lengths = self.flatten(components)
        distinct = self._distinct_from_flat(flat, offsets, lengths)
        entropy = self._entropy_from_terms(
            self.result_counts[flat].astype(np.float64),
            self._count_log_count[flat],
            offsets,
            lengths,
        )
        return self._apply_thresholds(entropy, lengths, distinct)

    # ------------------------------------------------------------------
    # Scalar-compat conveniences
    # ------------------------------------------------------------------
    def member_counts(self, nodes: Iterable[int]) -> List[int]:
        """``|L(m)|`` per node, in the given order (exact integers)."""
        return self.result_counts[self.positions(nodes)].tolist()
