"""Model-expected navigation cost of a whole expansion strategy.

The simulator (``repro.core.simulator``) measures the cost a *targeted*
user pays; this module instead evaluates a strategy under the paper's own
probabilistic TOPDOWN cost model (§III): starting from the initial active
tree, recursively apply the strategy's cut to every component a user might
explore and accumulate

    cost(I(n)) = pE(I(n)) * ( (1 - pX) * |R| + pX * (K + Σ (1 + cost(I'(m)))) )

This yields a user-independent quality number, letting strategies be
compared without committing to a particular navigation goal — e.g. the
Opt-EdgeCut-vs-heuristic quality ablation, or cost-model parameter sweeps.
"""

from __future__ import annotations

import sys
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.cost_model import CostParams
from repro.core.edgecut import cut_components
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.core.strategy import ExpansionStrategy

__all__ = ["expected_strategy_cost"]


def expected_strategy_cost(
    tree: NavigationTree,
    probs: ProbabilityModel,
    strategy: ExpansionStrategy,
    params: Optional[CostParams] = None,
    max_components: int = 50_000,
) -> float:
    """Expected TOPDOWN cost of navigating ``tree`` with ``strategy``.

    Args:
        tree: the navigation tree.
        probs: probability model (pE / pX estimates).
        strategy: the expansion policy under evaluation; its ``best_cut``
            is applied recursively to every reachable component.
        params: unit costs (paper defaults when omitted).
        max_components: safety bound on distinct components evaluated.

    Raises:
        RuntimeError: if the strategy keeps producing components beyond
            ``max_components`` (a non-terminating policy).
    """
    params = params or CostParams()
    memo: Dict[Tuple[int, FrozenSet[int]], float] = {}
    evaluated = 0

    def cost(component: FrozenSet[int], root: int) -> float:
        nonlocal evaluated
        key = (root, component)
        cached = memo.get(key)
        if cached is not None:
            return cached
        evaluated += 1
        if evaluated > max_components:
            raise RuntimeError(
                "expected-cost evaluation exceeded %d components" % max_components
            )
        explore = probs.explore(component)
        result_count = len(tree.distinct_results(component))
        # EXPLORE mass is non-negative, so <= is the exact zero test
        # without comparing floats for equality (float-equality rule).
        if explore <= 0.0:
            memo[key] = 0.0
            return 0.0
        if len(component) == 1:
            value = explore * result_count
            memo[key] = value
            return value
        p_expand = probs.expand(component, root)
        decision = strategy.best_cut(component, root)
        if not decision.cut:
            value = explore * result_count
            memo[key] = value
            return value
        upper, lowers = cut_components(tree, component, root, decision.cut)
        expand_term = params.expand_cost
        expand_term += params.reveal_cost + cost(upper, root)
        for lower_root, members in lowers.items():
            expand_term += params.reveal_cost + cost(members, lower_root)
        value = explore * (
            (1.0 - p_expand) * result_count + p_expand * expand_term
        )
        memo[key] = value
        return value

    component = frozenset(tree.iter_dfs())
    # Lazy single-edge policies can nest expansions O(|tree|) deep; give
    # the recursion enough headroom for the trees this library targets.
    previous_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(previous_limit, 4 * len(component) + 1000))
    try:
        return cost(component, tree.root)
    finally:
        sys.setrecursionlimit(previous_limit)
