"""The active tree (paper §II, Definitions 4–5).

The active tree is a navigation tree in which every node ``n`` is annotated
with the set ``I(n)`` of nodes in the (invisible) component subtree rooted
at ``n``; non-singleton ``I`` sets are disjoint.  BioNav visualizes only
the nodes that do not appear inside any other node's component, showing
next to each one the distinct-citation count of its component and an
expand hyperlink when the component is expandable.

An EXPAND action performs an EdgeCut on one component, replacing it with
the upper component (same root) and one lower component per cut edge; the
active tree is closed under this operation, and a history stack supports
the BACKTRACK action of the general navigation model (§III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.edgecut import component_edges, cut_components
from repro.core.navigation_tree import NavigationTree

__all__ = ["VisNode", "ActiveTree"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class VisNode:
    """One row of the active-tree visualization (Definition 5).

    Attributes:
        node: navigation-tree node id.
        label: concept label.
        count: distinct citations attached within the node's component.
        expandable: True when a non-singleton component is rooted here
            (the ``>>>`` hyperlink in the paper's interface).
        depth: depth within the *visualized* (embedded visible) tree.
        parent: visible parent node id, or -1 for the root.
    """

    node: int
    label: str
    count: int
    expandable: bool
    depth: int
    parent: int


class ActiveTree:
    """Navigation tree + disjoint component subtrees, closed under EdgeCut."""

    def __init__(self, tree: NavigationTree):
        self.tree = tree
        # Non-singleton components only, keyed by their root node.
        self._components: Dict[int, FrozenSet[int]] = {}
        all_nodes = frozenset(tree.iter_dfs())
        if len(all_nodes) > 1:
            self._components[tree.root] = all_nodes
        self._hidden = frozenset(all_nodes - {tree.root})
        self._history: List[Tuple[Dict[int, FrozenSet[int]], FrozenSet[int]]] = []

    # ------------------------------------------------------------------
    # Component accessors
    # ------------------------------------------------------------------
    def component(self, node: int) -> FrozenSet[int]:
        """``I(node)``: the component rooted at ``node`` ({node} if singleton).

        Raises KeyError when ``node`` is hidden inside another component.
        """
        if node in self._components:
            return self._components[node]
        if node in self._hidden:
            raise KeyError("node %r is hidden inside another component" % (node,))
        if node not in self.tree:
            raise KeyError("node %r is not in the navigation tree" % (node,))
        return frozenset((node,))

    def component_roots(self) -> List[int]:
        """Roots of all non-singleton components."""
        return list(self._components)

    def is_visible(self, node: int) -> bool:
        """True when the node appears in the visualization."""
        return node in self.tree and node not in self._hidden

    def is_expandable(self, node: int) -> bool:
        """True when a non-singleton component is rooted at ``node``."""
        return node in self._components

    def visible_nodes(self) -> List[int]:
        """All visible nodes, in navigation-tree pre-order."""
        return [n for n in self.tree.iter_dfs() if n not in self._hidden]

    def component_count(self, node: int) -> int:
        """Distinct citations in ``I(node)`` — the number shown in the UI."""
        return len(self.tree.distinct_results(self.component(node)))

    def expandable_edges(self, node: int) -> List[Edge]:
        """Edges of the component rooted at ``node`` (EdgeCut candidates)."""
        return component_edges(self.tree, self.component(node))

    def containing_root(self, node: int) -> int:
        """Root of the component that contains ``node``.

        For visible nodes this is the node itself.
        """
        if node not in self.tree:
            raise KeyError("node %r is not in the navigation tree" % (node,))
        if node not in self._hidden:
            return node
        for root, members in self._components.items():
            if node in members:
                return root
        raise AssertionError("hidden node %r missing from all components" % (node,))

    # ------------------------------------------------------------------
    # EXPAND (EdgeCut) and BACKTRACK
    # ------------------------------------------------------------------
    def expand(self, node: int, cut: Sequence[Edge]) -> List[int]:
        """Perform EdgeCut ``cut`` on the component rooted at ``node``.

        Returns the roots of the created components (upper first, then the
        lower roots in cut order) — the set the EdgeCut operation returns
        in the paper.

        Raises:
            ValueError: empty cut, hidden/singleton node, or invalid cut.
        """
        if not cut:
            raise ValueError("an EXPAND action needs a non-empty EdgeCut")
        if node not in self._components:
            raise ValueError("node %r has no expandable component" % (node,))
        component = self._components[node]
        upper, lowers = cut_components(self.tree, component, node, cut)
        self._history.append((dict(self._components), self._hidden))
        del self._components[node]
        if len(upper) > 1:
            self._components[node] = upper
        newly_visible = {node}
        for lower_root, members in lowers.items():
            if len(members) > 1:
                self._components[lower_root] = members
            newly_visible.add(lower_root)
        hidden = set(self._hidden)
        hidden -= newly_visible
        self._hidden = frozenset(hidden)
        return [node] + [child for _, child in cut]

    def backtrack(self) -> bool:
        """Undo the most recent EXPAND; returns False when at initial state."""
        if not self._history:
            return False
        components, hidden = self._history.pop()
        self._components = components
        self._hidden = hidden
        return True

    @property
    def expansions_performed(self) -> int:
        """Number of EXPANDs applied (and undoable via backtrack)."""
        return len(self._history)

    # ------------------------------------------------------------------
    # Visualization (Definition 5)
    # ------------------------------------------------------------------
    def visualize(self) -> List[VisNode]:
        """The embedded visible tree, in pre-order, with counts.

        The visible parent of a node is its nearest visible ancestor in the
        navigation tree.  The walk is an explicit-stack pre-order (children
        pushed reversed so siblings emit left to right): deep MeSH chains
        must not depend on the interpreter recursion limit.
        """
        rows: List[VisNode] = []
        stack: List[Tuple[int, int, int]] = [(self.tree.root, 0, -1)]
        while stack:
            node, depth, parent = stack.pop()
            rows.append(
                VisNode(
                    node=node,
                    label=self.tree.label(node),
                    count=self.component_count(node),
                    expandable=self.is_expandable(node),
                    depth=depth,
                    parent=parent,
                )
            )
            for visible_child in reversed(self._visible_children(node)):
                stack.append((visible_child, depth + 1, node))
        return rows

    def _visible_children(self, node: int) -> List[int]:
        """Nearest visible descendants of a visible node, left to right.

        Hidden nodes are skipped over: the DFS descends through them and
        stops at the first visible node on each downward path.
        """
        found: List[int] = []
        stack = list(reversed(self.tree.children(node)))
        while stack:
            current = stack.pop()
            if current in self._hidden:
                stack.extend(reversed(self.tree.children(current)))
            else:
                found.append(current)
        return found
