"""The legacy (pre-bitmask) Opt-EdgeCut engine, retained as a test oracle.

This is the original frozenset-based implementation of the paper's §VI-A
algorithm: components are ``FrozenSet[int]`` index sets, every valid cut
is materialized up-front by a nested-list product, and each cut's
expansion term is computed in full before comparison.  It is kept —
verbatim, apart from hoisting the duplicated ``subtree_indices`` traversal
in :meth:`ReferenceOptEdgeCut._expansion_term` — for two purposes:

* the property suite asserts the production bitmask engine
  (:class:`repro.core.opt_edgecut.OptEdgeCut`) returns **bit-identical**
  :class:`~repro.core.opt_edgecut.BestCut` values (same cut edges, same
  expected cost, same expansion term) on randomized trees, and
* ``benchmarks/bench_opt_engine.py`` measures the speedup of the bitmask
  engine over this path.

Do not use this class in production code paths; it exists to keep the
optimized engine honest.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.cost_model import CostParams
from repro.core.opt_edgecut import MAX_OPT_NODES, BestCut, CutTree, CutTreeEdge
from repro.core.probabilities import ProbabilityModel

__all__ = ["ReferenceOptEdgeCut"]


class ReferenceOptEdgeCut:
    """Exhaustive optimal EdgeCut selection with component memoization.

    The legacy engine: frozenset component keys, fully-materialized cut
    enumeration, no pruning.  Kept as the oracle the bitmask engine is
    verified against.
    """

    def __init__(
        self,
        cut_tree: CutTree,
        probs: ProbabilityModel,
        params: Optional[CostParams] = None,
        max_nodes: int = MAX_OPT_NODES,
    ):
        if len(cut_tree) > max_nodes:
            raise ValueError(
                "Opt-EdgeCut is exponential; refusing a %d-node tree (max %d). "
                "Use Heuristic-ReducedOpt for larger components."
                % (len(cut_tree), max_nodes)
            )
        self.tree = cut_tree
        self.probs = probs
        self.params = params or CostParams()
        total_mass = sum(cut_tree.explore)
        # The input tree is "the initial active tree" of this expansion:
        # its total EXPLORE probability is 1 (paper §IV).
        self._explore_norm = total_mass if total_mass > 0 else 1.0
        self._memo: Dict[FrozenSet[int], BestCut] = {}

    # ------------------------------------------------------------------
    def solve(self) -> BestCut:
        """Best cut (and expected cost) for the whole CutTree."""
        return self.solve_component(self.tree.subtree_indices(self.tree.root), self.tree.root)

    def solve_component(self, component: FrozenSet[int], root: int) -> BestCut:
        """Best cut for a connected sub-component rooted at ``root``."""
        cached = self._memo.get(component)
        if cached is not None:
            return cached
        result = self._solve(component, root)
        self._memo[component] = result
        return result

    def memo_items(self) -> List[Tuple[FrozenSet[int], BestCut]]:
        """All (component index set, BestCut) pairs solved so far."""
        return list(self._memo.items())

    # ------------------------------------------------------------------
    def _solve(self, component: FrozenSet[int], root: int) -> BestCut:
        tree = self.tree
        # Ascending index order: the legacy code iterated the frozenset
        # directly, whose order is a CPython hashing accident once indices
        # collide modulo the set's table size.  Sorting pins the float
        # summation order to the one the bitmask engine uses, so the two
        # agree to the last ulp.
        members = sorted(component)
        explore = sum(tree.explore[i] for i in members) / self._explore_norm
        distinct: Set[int] = set()
        member_counts: List[int] = []
        for i in members:
            distinct.update(tree.results[i])
            member_counts.extend(tree.member_counts[i])
        result_count = len(distinct)

        cuts = [cut for cut in self._enumerate_cuts(root, component) if cut]
        if not cuts:
            # Singleton (or childless) component: only SHOWRESULTS remains.
            cost = explore * result_count
            return BestCut(cut=(), expected_cost=cost, expansion_term=0.0)

        p_expand = self.probs.expand_from_distribution(member_counts, result_count)
        best_term = float("inf")
        best_cut: Tuple[CutTreeEdge, ...] = ()
        for cut in cuts:
            term = self._expansion_term(component, root, cut)
            if term < best_term:
                best_term = term
                best_cut = tuple(cut)
        show_cost = (1.0 - p_expand) * result_count
        expected = explore * (show_cost + p_expand * best_term)
        return BestCut(cut=best_cut, expected_cost=expected, expansion_term=best_term)

    def _expansion_term(
        self, component: FrozenSet[int], root: int, cut: Sequence[CutTreeEdge]
    ) -> float:
        """Cost of executing this EXPAND: click + per-revealed-root terms."""
        params = self.params
        removed: Set[int] = set()
        lowers: List[Tuple[int, FrozenSet[int]]] = []
        for _, child in cut:
            lower = self.tree.subtree_indices(child) & component
            removed.update(lower)
            lowers.append((child, lower))
        upper = frozenset(component - removed)
        term = params.expand_cost
        # The EdgeCut operation returns the upper root plus every lower
        # root; each contributes an examination cost and its own expected
        # exploration cost.
        term += params.reveal_cost + self.solve_component(upper, root).expected_cost
        for child, lower in lowers:
            term += params.reveal_cost + self.solve_component(lower, child).expected_cost
        return term

    def _enumerate_cuts(
        self, node: int, component: FrozenSet[int]
    ) -> List[List[CutTreeEdge]]:
        """All valid EdgeCuts of the component subtree at ``node``.

        Returns cut-sets (including the empty cut).  Validity — at most
        one cut edge per root-to-leaf path — is guaranteed structurally:
        once an edge is cut, no edge below it is considered.
        """
        options_per_child: List[List[List[CutTreeEdge]]] = []
        for child in self.tree.children[node]:
            if child not in component:
                continue
            child_options = [[(node, child)]]
            child_options.extend(self._enumerate_cuts(child, component))
            options_per_child.append(child_options)
        combos: List[List[CutTreeEdge]] = [[]]
        for child_options in options_per_child:
            combos = [base + extra for base in combos for extra in child_options]
        return combos
