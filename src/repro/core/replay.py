"""Navigation-session recording and replay.

The deployed BioNav is a stateful web application; session logs are the
natural artifact for debugging user reports and for the kind of
navigation-cost analysis the evaluation performs.  This module serializes
a session's action stream to JSON and replays it onto a fresh session,
reconstructing the exact active-tree state and cost ledger.

Replay stores the *chosen cuts*, not just the expanded nodes, so a log
re-applies byte-for-byte even if the strategy implementation (or its
tie-breaking) changes between record and replay time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.session import NavigationSession
from repro.core.strategy import CutDecision, ExpansionStrategy

__all__ = ["SessionLog", "record_session", "replay_session"]

Edge = Tuple[int, int]


@dataclass
class SessionLog:
    """An ordered action stream: ('expand', node, cut) / ('show', node) /
    ('ignore', node) / ('backtrack',)."""

    actions: List[Tuple] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_expand(self, node: int, cut: Sequence[Edge]) -> None:
        """Append an EXPAND action with its chosen cut."""
        self.actions.append(("expand", node, [tuple(edge) for edge in cut]))

    def record_show(self, node: int) -> None:
        """Append a SHOWRESULTS action."""
        self.actions.append(("show", node))

    def record_ignore(self, node: int) -> None:
        """Append an IGNORE action."""
        self.actions.append(("ignore", node))

    def record_backtrack(self) -> None:
        """Append a BACKTRACK action."""
        self.actions.append(("backtrack",))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the log to a JSON string."""
        return json.dumps({"version": 1, "actions": self.actions})

    @classmethod
    def from_json(cls, payload: str) -> "SessionLog":
        """Parse a log serialized by :meth:`to_json`."""
        data = json.loads(payload)
        if data.get("version") != 1:
            raise ValueError("unsupported session log version %r" % data.get("version"))
        actions = []
        for action in data["actions"]:
            kind = action[0]
            if kind == "expand":
                actions.append(("expand", action[1], [tuple(e) for e in action[2]]))
            elif kind in ("show", "ignore"):
                actions.append((kind, action[1]))
            elif kind == "backtrack":
                actions.append(("backtrack",))
            else:
                raise ValueError("unknown action kind %r" % kind)
        return cls(actions=actions)


class _ScriptedStrategy(ExpansionStrategy):
    """Feeds recorded cuts back to the session, one expand at a time."""

    name = "scripted-replay"

    def __init__(self) -> None:
        self._next_cut: Optional[Tuple[Edge, ...]] = None

    def stage(self, cut: Sequence[Edge]) -> None:
        self._next_cut = tuple(tuple(edge) for edge in cut)

    def choose_cut(self, active, node) -> CutDecision:
        if self._next_cut is None:
            raise RuntimeError("no staged cut for replayed expand")
        cut, self._next_cut = self._next_cut, None
        return CutDecision(cut=cut)


def record_session(session: NavigationSession) -> SessionLog:
    """Extract a replayable log from a session's expand history.

    Only EXPAND actions are recoverable from a live session object (the
    session does not retain SHOWRESULTS/IGNORE ordering); for full logs,
    record actions as they happen via :class:`SessionLog`.
    """
    log = SessionLog()
    for outcome in session.expand_log:
        log.record_expand(outcome.node, outcome.decision.cut)
    return log


def replay_session(
    tree: NavigationTree,
    log: SessionLog,
    params: Optional[CostParams] = None,
) -> NavigationSession:
    """Apply a recorded log to a fresh session over ``tree``.

    Returns the reconstructed session (active tree + cost ledger).

    Raises:
        ValueError/KeyError: when the log references nodes or cuts that do
            not fit ``tree`` (e.g. a log replayed against the wrong query).
    """
    strategy = _ScriptedStrategy()
    session = NavigationSession(tree, strategy, params=params)
    for action in log.actions:
        kind = action[0]
        if kind == "expand":
            _, node, cut = action
            strategy.stage(cut)
            session.expand(node)
        elif kind == "show":
            session.show_results(action[1])
        elif kind == "ignore":
            session.ignore(action[1])
        elif kind == "backtrack":
            session.backtrack()
        else:  # pragma: no cover - from_json already validates
            raise ValueError("unknown action kind %r" % kind)
    return session
