"""Targeted-user navigation simulation (paper §VIII-A methodology).

The navigation-cost experiments assume a user who "always chooses the
right node to expand in order to finally reveal the target concept": at
every step she expands the visible node whose (invisible) component
contains the target, until the target itself becomes visible, then runs
SHOWRESULTS on it.  The simulator reproduces that protocol for any
expansion strategy and reports the per-query numbers behind Figures 8–10.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.session import NavigationSession
from repro.core.strategy import ExpansionStrategy

__all__ = ["ExpandRecord", "NavigationOutcome", "navigate_to_target"]


@dataclass(frozen=True)
class ExpandRecord:
    """Per-EXPAND instrumentation (drives the Fig. 11 experiment)."""

    step: int
    node: int
    revealed: int
    reduced_size: int
    elapsed_seconds: float


@dataclass(frozen=True)
class NavigationOutcome:
    """Result of one simulated targeted navigation.

    Attributes:
        target: the target concept node.
        reached: whether the target became visible within the step budget.
        expand_actions: number of EXPAND actions performed (Fig. 9).
        concepts_revealed: total concepts revealed (Fig. 8 component).
        navigation_cost: revealed + expands (the Fig. 8 y-axis).
        citations_displayed: size of the final SHOWRESULTS listing.
        expands: per-EXPAND records (timings and reduced-tree sizes).
    """

    target: int
    reached: bool
    expand_actions: int
    concepts_revealed: int
    navigation_cost: float
    citations_displayed: int
    expands: Tuple[ExpandRecord, ...]

    @property
    def average_expand_seconds(self) -> float:
        """Mean EXPAND latency (the Fig. 10 y-axis); 0 when no expands ran."""
        if not self.expands:
            return 0.0
        return sum(r.elapsed_seconds for r in self.expands) / len(self.expands)


def navigate_to_target(
    tree: NavigationTree,
    strategy: ExpansionStrategy,
    target: int,
    params: Optional[CostParams] = None,
    show_results: bool = True,
    max_steps: int = 200,
) -> NavigationOutcome:
    """Simulate a targeted TOPDOWN navigation to ``target``.

    Args:
        tree: the query's navigation tree (must contain ``target``).
        strategy: EXPAND implementation under evaluation.
        target: the target concept node id.
        params: cost-model unit charges.
        show_results: whether to run SHOWRESULTS when the target appears.
        max_steps: safety bound on EXPAND actions.

    Raises:
        KeyError: when the target is not part of the navigation tree.
    """
    if target not in tree:
        raise KeyError("target %r is not in the navigation tree" % (target,))
    session = NavigationSession(tree, strategy, params=params)
    records: List[ExpandRecord] = []
    step = 0
    while not session.active.is_visible(target) and step < max_steps:
        to_expand = session.active.containing_root(target)
        started = time.perf_counter()
        outcome = session.expand(to_expand)
        elapsed = time.perf_counter() - started
        step += 1
        records.append(
            ExpandRecord(
                step=step,
                node=to_expand,
                revealed=len(outcome.revealed),
                reduced_size=outcome.decision.reduced_size,
                elapsed_seconds=elapsed,
            )
        )
    reached = session.active.is_visible(target)
    citations = 0
    if reached and show_results:
        citations = len(session.show_results(target))
    return NavigationOutcome(
        target=target,
        reached=reached,
        expand_actions=session.ledger.expand_actions,
        concepts_revealed=session.ledger.concepts_revealed,
        navigation_cost=session.navigation_cost,
        citations_displayed=citations,
        expands=tuple(records),
    )
