"""Static navigation baseline (paper §VIII-A).

Current systems — GoPubMed, Amazon-style category browsers — expand a node
by revealing *all of its children*, ranked by citation count, regardless of
the query.  In EdgeCut terms, expanding a component rooted at ``n`` cuts
every edge from ``n`` to its children inside the component, leaving the
upper component as the singleton ``{n}``.

The paper notes that showing a few children at a time with a "more" button
does not change the navigation cost materially, since clicking "more" costs
an action too; the plain show-all-children form is what the evaluation
compares against.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.core.active_tree import ActiveTree
from repro.core.edgecut import component_children
from repro.core.navigation_tree import NavigationTree
from repro.core.strategy import CutDecision, ExpansionStrategy, SolverCapabilities

__all__ = ["StaticNavigation"]


class StaticNavigation(ExpansionStrategy):
    """Expand = reveal all children of the expanded concept."""

    name = "static"
    capabilities = SolverCapabilities(
        name="static_nav",
        optimal=False,
        exact_below=None,
        max_nodes=None,
        estimates_cost=False,
        cost_bound=None,
        description="show-all-children baseline (GoPubMed-family static expansion)",
    )

    def __init__(self, tree: NavigationTree):
        self.tree = tree

    def choose_cut(self, active: ActiveTree, node: int) -> CutDecision:
        component = active.component(node)
        return self.best_cut(component, node)

    def best_cut(self, component: FrozenSet[int], root: int) -> CutDecision:
        """Cut every root→child edge of the component."""
        children = component_children(self.tree, component, root)
        cut: Tuple[Tuple[int, int], ...] = tuple((root, child) for child in children)
        return CutDecision(cut=cut, reduced_size=len(component))
