"""Expansion-strategy interface.

A strategy decides which EdgeCut an EXPAND action performs on a component.
The paper compares two: BioNav's ``Heuristic-ReducedOpt`` and the static
show-all-children baseline (GoPubMed-style).  The optimal ``Opt-EdgeCut``
can also be wrapped as a strategy for small trees.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.active_tree import ActiveTree

__all__ = ["CutDecision", "ExpansionStrategy"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class CutDecision:
    """An EdgeCut chosen by a strategy, plus instrumentation.

    Attributes:
        cut: navigation-tree edges to cut (empty only for singletons).
        reduced_size: supernode count of the reduced tree the decision was
            computed on (equals the component size when no reduction
            happened; reported in the Fig. 11 experiment).
        expected_cost: the strategy's own estimate of the resulting
            expected navigation cost, when it computes one.
    """

    cut: Tuple[Edge, ...]
    reduced_size: int = 0
    expected_cost: Optional[float] = None


class ExpansionStrategy(abc.ABC):
    """Chooses the EdgeCut for an EXPAND on a given component."""

    name = "abstract"

    @abc.abstractmethod
    def choose_cut(self, active: ActiveTree, node: int) -> CutDecision:
        """Return the EdgeCut to apply to the component rooted at ``node``.

        Implementations must return a valid EdgeCut of that component;
        they must not mutate the active tree.
        """
