"""Expansion-strategy interface.

A strategy decides which EdgeCut an EXPAND action performs on a component.
The paper compares two: BioNav's ``Heuristic-ReducedOpt`` and the static
show-all-children baseline (GoPubMed-style).  The optimal ``Opt-EdgeCut``
can also be wrapped as a strategy for small trees.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple

from repro.core.active_tree import ActiveTree

__all__ = ["CutDecision", "SolverCapabilities", "ExpansionStrategy"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class SolverCapabilities:
    """Machine-readable capability metadata for one expansion strategy.

    The solver registry (:mod:`repro.pipeline.registry`) selects and
    validates strategies by this record instead of hard-coded imports.

    Attributes:
        name: canonical registry name of the solver.
        optimal: True when every accepted component is solved to the
            provable cost minimum (bit-identical to the reference
            oracle).
        exact_below: component size at or below which the solver's cut
            is exact (``None`` when it never is).  For
            Heuristic-ReducedOpt this is its ``max_reduced_nodes``
            default: components that skip the reduction are solved with
            Opt-EdgeCut directly.
        max_nodes: largest component the solver accepts, or ``None``
            when unbounded (Opt-EdgeCut refuses trees above the bitmask
            engine's cap).
        estimates_cost: True when :attr:`CutDecision.expected_cost` is
            populated by a cost model rather than left ``None``.
        cost_bound: documented upper bound on the ratio between the
            solver's expected navigation cost and the optimum, on trees
            the optimum can be computed for; ``None`` for exact solvers
            and for baselines that make no cost claim.  Enforced by the
            cross-solver equivalence suite (``tests/test_registry.py``).
        description: one-line catalog entry.
    """

    name: str
    optimal: bool
    exact_below: Optional[int]
    max_nodes: Optional[int]
    estimates_cost: bool
    cost_bound: Optional[float]
    description: str


@dataclass(frozen=True)
class CutDecision:
    """An EdgeCut chosen by a strategy, plus instrumentation.

    Attributes:
        cut: navigation-tree edges to cut (empty only for singletons).
        reduced_size: supernode count of the reduced tree the decision was
            computed on (equals the component size when no reduction
            happened; reported in the Fig. 11 experiment).
        expected_cost: the strategy's own estimate of the resulting
            expected navigation cost, when it computes one.
    """

    cut: Tuple[Edge, ...]
    reduced_size: int = 0
    expected_cost: Optional[float] = None


class ExpansionStrategy(abc.ABC):
    """Chooses the EdgeCut for an EXPAND on a given component.

    Concrete strategies advertise a :class:`SolverCapabilities` record
    as the ``capabilities`` class attribute; the solver registry reads
    it to answer "which solvers are optimal / cost-modelled / size-
    capped" without importing solver modules at call sites.
    """

    name = "abstract"
    capabilities: ClassVar[Optional[SolverCapabilities]] = None

    @abc.abstractmethod
    def choose_cut(self, active: ActiveTree, node: int) -> CutDecision:
        """Return the EdgeCut to apply to the component rooted at ``node``.

        Implementations must return a valid EdgeCut of that component;
        they must not mutate the active tree.
        """
