"""EdgeCuts over navigation-tree components (paper §II, Definition 3).

An EdgeCut of a tree is any set of its edges; removing them splits the tree
into one *upper* component (containing the root) and one *lower* component
per cut edge.  A cut is **valid** when no two of its edges lie on the same
root-to-leaf path — invalid cuts would reveal a node together with one of
its descendants as siblings, which the paper rules out as unintuitive.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.navigation_tree import NavigationTree

__all__ = [
    "is_valid_edgecut",
    "cut_components",
    "component_edges",
    "component_children",
]

Edge = Tuple[int, int]


def component_edges(tree: NavigationTree, component: FrozenSet[int]) -> List[Edge]:
    """Navigation-tree edges with both endpoints inside ``component``.

    Iterates the component in sorted order so the returned edge list is a
    deterministic function of the component's contents, not of CPython's
    set layout.
    """
    return [
        (node, child)
        for node in sorted(component)
        for child in tree.children(node)
        if child in component
    ]


def component_children(
    tree: NavigationTree, component: FrozenSet[int], node: int
) -> List[int]:
    """Children of ``node`` that lie within ``component``."""
    return [child for child in tree.children(node) if child in component]


def is_valid_edgecut(
    tree: NavigationTree, component: FrozenSet[int], edges: Iterable[Edge]
) -> bool:
    """Check Definition 3 for a cut of the component subtree.

    Requirements:
      * every edge is an edge of the component subtree, and
      * no cut edge's child endpoint is an ancestor of another cut edge's
        child endpoint (which is equivalent to no two edges sharing a
        root-to-leaf path).
    """
    edge_list = list(edges)
    child_endpoints: List[int] = []
    for parent, child in edge_list:
        if parent not in component or child not in component:
            return False
        if tree.parent(child) != parent:
            return False
        child_endpoints.append(child)
    if len(set(child_endpoints)) != len(child_endpoints):
        return False
    for i, a in enumerate(child_endpoints):
        for b in child_endpoints[i + 1 :]:
            if tree.is_tree_ancestor(a, b) or tree.is_tree_ancestor(b, a):
                return False
    return True


def cut_components(
    tree: NavigationTree,
    component: FrozenSet[int],
    root: int,
    edges: Sequence[Edge],
) -> Tuple[FrozenSet[int], Dict[int, FrozenSet[int]]]:
    """Apply a valid EdgeCut and return (upper, {lower_root: lower_nodes}).

    The lower component of a cut edge (p, c) is the component-subtree
    rooted at c; the upper component is everything else and keeps ``root``.

    Raises:
        ValueError: if the cut is not a valid EdgeCut of the component.
    """
    if not is_valid_edgecut(tree, component, edges):
        raise ValueError("not a valid EdgeCut of this component: %r" % (edges,))
    lowers: Dict[int, FrozenSet[int]] = {}
    removed: Set[int] = set()
    for _, child in edges:
        lower = _restricted_subtree(tree, component, child)
        lowers[child] = lower
        removed.update(lower)
    upper = frozenset(component - removed)
    if root not in upper:
        raise ValueError("cut would remove the component root")
    return upper, lowers


def _restricted_subtree(
    tree: NavigationTree, component: FrozenSet[int], node: int
) -> FrozenSet[int]:
    """Nodes of the component subtree rooted at ``node``."""
    collected: Set[int] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        collected.add(current)
        for child in tree.children(current):
            if child in component:
                stack.append(child)
    return frozenset(collected)
