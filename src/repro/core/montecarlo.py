"""Monte-Carlo simulation of the probabilistic TOPDOWN user (Fig. 6).

The cost model's expected cost (paper §III) is an analytic quantity over a
*random* user who explores each revealed component with probability
``pE``, then either expands (``pX``) or lists results.  This module samples
that user: starting from the initial active tree, it walks the Fig. 6
process with a seeded RNG, charging the paper's unit costs along the way.

Averaging many sampled walks gives an unbiased estimate of the expected
cost of a strategy — used to validate that the analytic evaluator
(:mod:`repro.core.evaluation`) and the closed-form recursion agree with
the process they claim to describe (``benchmarks/bench_montecarlo.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core.cost_model import CostParams
from repro.core.edgecut import cut_components
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.core.strategy import ExpansionStrategy

__all__ = ["WalkOutcome", "sample_walk", "estimate_expected_cost"]


@dataclass(frozen=True)
class WalkOutcome:
    """One sampled TOPDOWN walk.

    Attributes:
        cost: total cost charged along the walk.
        expands: EXPAND actions taken.
        show_results: SHOWRESULTS actions taken.
        ignored: components the user declined to explore.
    """

    cost: float
    expands: int
    show_results: int
    ignored: int


def sample_walk(
    tree: NavigationTree,
    probs: ProbabilityModel,
    strategy: ExpansionStrategy,
    rng: random.Random,
    params: Optional[CostParams] = None,
    max_expands: int = 10_000,
) -> WalkOutcome:
    """Sample one user walk under the Fig. 6 TOPDOWN process.

    The walk starts by exploring the root component (the paper's EXPLORE
    is initially certain: the initial active tree has pE = 1), then
    recursively: each explored component is expanded with probability
    ``pX`` (revealing the strategy's cut, charging 1 per EXPAND and 1 per
    revealed root) or listed with SHOWRESULTS (charging 1 per citation).
    Revealed components are explored independently with their conditional
    EXPLORE probabilities.
    """
    params = params or CostParams()
    cost = 0.0
    expands = 0
    shows = 0
    ignored = 0

    # Work stack of (component, root) pairs the user has chosen to explore.
    stack: List[Tuple[FrozenSet[int], int]] = [
        (frozenset(tree.iter_dfs()), tree.root)
    ]
    while stack:
        component, root = stack.pop()
        result_count = len(tree.distinct_results(component))
        p_expand = probs.expand(component, root)
        decision = strategy.best_cut(component, root)
        can_expand = bool(decision.cut) and expands < max_expands
        if can_expand and rng.random() < p_expand:
            expands += 1
            cost += params.expand_cost
            upper, lowers = cut_components(tree, component, root, decision.cut)
            produced = [(upper, root)] + [
                (members, lower_root) for lower_root, members in lowers.items()
            ]
            # Each revealed component is explored with its EXPLORE
            # probability normalized over the whole active tree (§IV).
            # Note this samples the paper's cost recursion *literally*:
            # the formula nests globally-normalized pE factors, so deep
            # components are explored with the product of their ancestors'
            # probabilities times their own — a conservative user model.
            for sub_component, sub_root in produced:
                cost += params.reveal_cost
                p_explore = probs.explore(sub_component)
                if rng.random() < p_explore:
                    stack.append((sub_component, sub_root))
                else:
                    ignored += 1
        else:
            shows += 1
            cost += params.citation_cost * result_count
    return WalkOutcome(cost=cost, expands=expands, show_results=shows, ignored=ignored)


def estimate_expected_cost(
    tree: NavigationTree,
    probs: ProbabilityModel,
    strategy: ExpansionStrategy,
    n_walks: int = 200,
    seed: int = 0,
    params: Optional[CostParams] = None,
) -> Tuple[float, float]:
    """Monte-Carlo mean and standard error of the walk cost.

    Returns (mean cost, standard error of the mean).
    """
    if n_walks < 1:
        raise ValueError("n_walks must be positive")
    rng = random.Random(seed)
    costs = [
        sample_walk(tree, probs, strategy, rng, params=params).cost
        for _ in range(n_walks)
    ]
    mean = sum(costs) / n_walks
    if n_walks == 1:
        return mean, 0.0
    variance = sum((c - mean) ** 2 for c in costs) / (n_walks - 1)
    stderr = (variance / n_walks) ** 0.5
    return mean, stderr
