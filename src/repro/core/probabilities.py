"""Estimation of navigation probabilities (paper §IV).

Two probabilities drive the cost model:

* **EXPLORE** — the probability that the user is interested in a component
  subtree.  Assuming all result citations are equally interesting, a
  concept ``n`` matters more when many result citations attach to it
  (``|L(n)|`` large) and less when it is globally common in MEDLINE
  (``LT(n)`` large) — an inverse-document-frequency intuition.  Per node:
  ``pE(n) = (|L(n)| / log LT(n)) / Z`` with ``Z`` normalizing over all
  navigation-tree nodes, so the initial tree has total EXPLORE probability
  1; a component's probability is the sum over its members.

* **EXPAND** — the probability that an interested user expands the
  component rather than listing its citations.  Zero for leaves and
  singletons; one above an upper result-count threshold (default 50);
  zero below a lower threshold (default 10); otherwise the entropy of the
  citation distribution over the component's concepts, normalized by the
  uniform/no-duplicate maximum — widely scattered citations make
  narrowing down worthwhile.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Iterable, Sequence

import numpy as np

from repro.core.cost_arrays import CostArrays
from repro.core.navigation_tree import NavigationTree

__all__ = ["ProbabilityModel"]


class ProbabilityModel:
    """EXPLORE / EXPAND probability estimator for one navigation tree.

    Construction builds the :class:`~repro.core.cost_arrays.CostArrays`
    substrate (exposed as :attr:`arrays`) and derives the per-node mass
    table from its elementwise arrays, so the scalar and vectorized
    paths share one source of truth per node.  The scalar methods remain
    the **reference oracle**: they accumulate sequentially over sorted
    members, and the batch kernels are pinned to them within 1e-9
    relative by the property suite (see the ``cost_arrays`` module
    docstring for where float accumulation order legitimately differs).
    """

    def __init__(
        self,
        tree: NavigationTree,
        medline_count: Callable[[int], int],
        upper_threshold: int = 50,
        lower_threshold: int = 10,
        use_idf: bool = True,
    ):
        """
        Args:
            tree: the navigation tree of the current query result.
            medline_count: concept node id → MEDLINE-wide citation count
                (``LT(n)``); counts below 2 are clamped so the logarithm
                stays positive.  A corpus store (or any object exposing
                a ``medline_count`` method) is accepted in place of the
                bare callable.
            upper_threshold: result count above which EXPAND is certain.
            lower_threshold: result count below which EXPAND never happens.
            use_idf: divide by ``log LT(n)`` (the paper's inverse-document-
                frequency discount of globally common concepts).  Disable
                for the ablation that measures what the IDF term buys
                (``benchmarks/bench_ablation_probability.py``).
        """
        if lower_threshold < 0 or upper_threshold < lower_threshold:
            raise ValueError("thresholds must satisfy 0 <= lower <= upper")
        self.tree = tree
        self.upper_threshold = upper_threshold
        self.lower_threshold = lower_threshold
        self.use_idf = use_idf
        self.arrays = CostArrays(
            tree,
            medline_count,
            upper_threshold=upper_threshold,
            lower_threshold=lower_threshold,
            use_idf=use_idf,
        )
        self._mass: Dict[int, float] = dict(
            zip(self.arrays.preorder_ids.tolist(), self.arrays.explore_mass.tolist())
        )
        self._normalizer = self.arrays.normalizer

    # ------------------------------------------------------------------
    # EXPLORE
    # ------------------------------------------------------------------
    def explore_node(self, node: int) -> float:
        """``pE(n)`` for a single concept node."""
        return self._mass[node] / self._normalizer

    def explore_mass(self, node: int) -> float:
        """Unnormalized EXPLORE weight ``|L(n)| / log LT(n)``."""
        return self._mass[node]

    def explore(self, component: Iterable[int]) -> float:
        """``pE(I(n))``: sum of member node probabilities.

        Members are summed in sorted order so the float accumulation
        order — and therefore the probability to the last ulp — depends
        only on the component's contents, never on set iteration order.
        """
        return sum(self._mass[m] for m in sorted(component)) / self._normalizer

    # ------------------------------------------------------------------
    # EXPAND
    # ------------------------------------------------------------------
    def expand(self, component: FrozenSet[int], root: int) -> float:
        """``pX(I(n))`` for a component rooted at ``root``."""
        if len(component) <= 1:
            return 0.0
        result_count = len(self.tree.distinct_results(component))
        # Sorted members pin the entropy summation order (see explore()).
        return self.expand_from_distribution(
            [len(self.tree.results(m)) for m in sorted(component)], result_count
        )

    def expand_from_distribution(
        self, member_counts: Sequence[int], distinct_count: int
    ) -> float:
        """EXPAND probability from raw component statistics.

        Args:
            member_counts: ``|L(m)|`` per member concept (zeros allowed).
            distinct_count: distinct citations in the component.

        Exposed separately so the reduced supernode trees of the heuristic
        can reuse the exact same estimate.
        """
        if len(member_counts) <= 1:
            return 0.0
        if distinct_count > self.upper_threshold:
            return 1.0
        if distinct_count < self.lower_threshold:
            return 0.0
        return self._normalized_entropy(member_counts)

    def _normalized_entropy(self, member_counts: Sequence[int]) -> float:
        """Entropy of the citation distribution, normalized to [0, 1].

        The maximum entropy corresponds to citations spread uniformly over
        all member concepts with no duplicates: ``log(len(members))``.
        Duplicates can push the raw entropy above the maximum, so the ratio
        is clamped to 1.
        """
        total = sum(member_counts)
        if total == 0:
            return 0.0
        entropy = 0.0
        for count in member_counts:
            if count == 0:
                continue
            p = count / total
            entropy -= p * math.log(p)
        max_entropy = math.log(len(member_counts))
        if max_entropy <= 0:
            return 0.0
        return min(1.0, entropy / max_entropy)

    # ------------------------------------------------------------------
    # Batched kernels (the vectorized hot path)
    # ------------------------------------------------------------------
    def explore_batch(self, components: Sequence[Iterable[int]]) -> np.ndarray:
        """``pE`` for a whole batch of components in one shot.

        Vectorized over the :attr:`arrays` substrate; agrees with
        :meth:`explore` within 1e-9 relative (pairwise vs sequential
        summation — see :mod:`repro.core.cost_arrays`).
        """
        return self.arrays.explore(components)

    def expand_batch(self, components: Sequence[Iterable[int]]) -> np.ndarray:
        """``pX`` for a whole batch of components in one shot.

        Threshold selection is exact (integer distinct counts on both
        paths); the entropy branch agrees with :meth:`expand` within
        1e-9 relative.
        """
        return self.arrays.expand(components)
