"""Paged static navigation — the "more button" baseline (paper footnote 2).

The paper remarks that showing "a few children at a time and displaying a
'more' button" does not considerably change static navigation's cost,
because executing "more" incurs an action cost too.  This strategy makes
that claim testable: an EXPAND on a node reveals at most ``page_size`` of
its children; expanding the same node again reveals the next page.

Within the EdgeCut machinery this falls out naturally: each page cuts the
next ``page_size`` root→child edges of the node's component, and the
remaining children stay inside the (shrinking) upper component whose
``>>>`` hyperlink plays the role of the "more" button.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.core.active_tree import ActiveTree
from repro.core.edgecut import component_children
from repro.core.navigation_tree import NavigationTree
from repro.core.strategy import CutDecision, ExpansionStrategy, SolverCapabilities

__all__ = ["PagedStaticNavigation"]


class PagedStaticNavigation(ExpansionStrategy):
    """Static navigation that reveals children one fixed-size page at a time."""

    name = "paged-static"
    capabilities = SolverCapabilities(
        name="paged_static",
        optimal=False,
        exact_below=None,
        max_nodes=None,
        estimates_cost=False,
        cost_bound=None,
        description='static navigation paged through a fixed-size "more" button',
    )

    def __init__(self, tree: NavigationTree, page_size: int = 5):
        if page_size < 1:
            raise ValueError("page_size must be at least 1")
        self.tree = tree
        self.page_size = page_size

    def choose_cut(self, active: ActiveTree, node: int) -> CutDecision:
        component = active.component(node)
        return self.best_cut(component, node)

    def best_cut(self, component: FrozenSet[int], root: int) -> CutDecision:
        """Cut the next page of root→child edges, ranked by citation count.

        Children still inside the component are the not-yet-shown ones;
        like GoPubMed, pages are ordered by descending subtree citation
        count so the heaviest categories surface first.
        """
        children = component_children(self.tree, component, root)
        ranked = sorted(
            children,
            key=lambda child: (-len(self.tree.subtree_results(child)), child),
        )
        page = ranked[: self.page_size]
        cut: Tuple[Tuple[int, int], ...] = tuple((root, child) for child in page)
        return CutDecision(cut=cut, reduced_size=len(component))
