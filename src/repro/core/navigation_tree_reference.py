"""The legacy dict-based navigation-tree builder, retained as a test oracle.

This is the original per-node implementation of the paper's §II maximum
embedding: annotations become a ``Dict[int, FrozenSet[int]]``, the
embedding walks the hierarchy with an explicit ``(node, kept_ancestor)``
stack, and every structural index (preorder, depth, subtree size) is a
per-node Python dict filled by a second traversal.  It is kept —
verbatim — for two purposes:

* the property suite (``tests/test_navigation_tree_equivalence.py``)
  asserts the array-native :class:`repro.core.navigation_tree.NavigationTree`
  produces a **bit-identical** tree (same nodes in the same preorder,
  same parent/children maps, same per-node result sets, same subtree
  sizes, and the same downstream Opt-EdgeCut costs) on randomized
  hierarchies × result sets, and
* ``benchmarks/bench_coldpath.py`` measures the cold-build speedup of
  the vectorized path over this one.

Do not use this class in production code paths; it exists to keep the
vectorized builder honest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.hierarchy.concept import ConceptHierarchy

if TYPE_CHECKING:  # substrate imports core; keep the reverse edge lazy
    from repro.substrate.store import CorpusStore

__all__ = ["ReferenceNavigationTree"]

Edge = Tuple[int, int]


class ReferenceNavigationTree:
    """The maximum embedding, built through per-node dicts (oracle).

    Attributes:
        hierarchy: the underlying concept hierarchy.
        root: hierarchy node id of the tree root.
    """

    def __init__(
        self,
        hierarchy: ConceptHierarchy,
        parent: Dict[int, int],
        children: Dict[int, List[int]],
        results: Dict[int, FrozenSet[int]],
        root: int,
    ):
        self.hierarchy = hierarchy
        self.root = root
        self._parent = parent
        self._children = children
        self._results = results
        self._subtree_results: Dict[int, FrozenSet[int]] = {}
        # Positional indices, one preorder pass (the tree never mutates):
        # depth, preorder position, and subtree size per node.  Preorder
        # numbers each subtree contiguously, so the subtree of ``n`` is
        # exactly ``_preorder[_position[n] : _position[n] + _subtree_size[n]]``
        # and ancestor tests reduce to interval containment.
        self._preorder: List[int] = []
        self._depth: Dict[int, int] = {}
        self._position: Dict[int, int] = {}
        self._subtree_size: Dict[int, int] = {}
        stack: List[Tuple[int, int]] = [(root, 0)]
        while stack:
            node, depth = stack.pop()
            self._depth[node] = depth
            self._position[node] = len(self._preorder)
            self._preorder.append(node)
            stack.extend((child, depth + 1) for child in reversed(children[node]))
        for node in reversed(self._preorder):
            self._subtree_size[node] = 1 + sum(
                self._subtree_size[child] for child in children[node]
            )

    # ------------------------------------------------------------------
    # Construction (maximum embedding)
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        hierarchy: ConceptHierarchy,
        store: "CorpusStore",
        pmids: Iterable[int],
        root: Optional[int] = None,
    ) -> "ReferenceNavigationTree":
        """Navigation tree for a result set answered by a corpus store."""
        return cls.build(
            hierarchy, store.annotations_for_result(list(pmids)), root=root
        )

    @classmethod
    def build(
        cls,
        hierarchy: ConceptHierarchy,
        annotations: Mapping[int, Iterable[int]],
        root: Optional[int] = None,
    ) -> "ReferenceNavigationTree":
        """Compute the navigation tree for one query result.

        Empty-result concepts are spliced out per Definition 2; the root is
        always kept.
        """
        if root is None:
            root = hierarchy.root
        results = {
            node: frozenset(ids)
            for node, ids in annotations.items()
            if ids
        }
        parent: Dict[int, int] = {root: -1}
        children: Dict[int, List[int]] = {root: []}

        # Iterative embedding (deep kept chains must not hit the recursion
        # limit): each stack entry pairs a hierarchy node with the nearest
        # kept ancestor it competes under.  A kept node becomes the
        # ancestor for its own descendants; a spliced-out node passes its
        # ancestor through.  Children are pushed reversed so siblings are
        # attached left to right.
        stack: List[Tuple[int, int]] = [
            (node, root) for node in reversed(hierarchy.children(root))
        ]
        while stack:
            node, kept_ancestor = stack.pop()
            if node in results:
                parent[node] = kept_ancestor
                children[kept_ancestor].append(node)
                children[node] = []
                kept_ancestor = node
            stack.extend(
                (child, kept_ancestor)
                for child in reversed(hierarchy.children(node))
            )
        kept_results = {
            node: results.get(node, frozenset()) for node in parent
        }
        return cls(hierarchy, parent, children, kept_results, root)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, node: int) -> bool:
        return node in self._parent

    def nodes(self) -> List[int]:
        """All node ids kept by the embedding."""
        return list(self._parent)

    def parent(self, node: int) -> int:
        """Embedded parent of ``node`` (-1 for the root)."""
        return self._parent[node]

    def children(self, node: int) -> Sequence[int]:
        """Embedded-tree children of ``node``, left to right."""
        return tuple(self._children[node])

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` has no embedded children."""
        return not self._children[node]

    def label(self, node: int) -> str:
        """Concept label of ``node`` (delegates to the hierarchy)."""
        self._require(node)
        return self.hierarchy.label(node)

    def edges(self) -> Iterator[Edge]:
        """All (parent, child) edges of the embedded tree."""
        for node, kids in self._children.items():
            for child in kids:
                yield (node, child)

    def iter_dfs(self, start: Optional[int] = None) -> Iterator[int]:
        """Pre-order traversal of the embedded tree."""
        if start is None:
            start = self.root
        self._require(start)
        begin = self._position[start]
        return iter(self._preorder[begin : begin + self._subtree_size[start]])

    def subtree_nodes(self, node: int) -> FrozenSet[int]:
        """All embedded-tree nodes in the subtree rooted at ``node``."""
        self._require(node)
        begin = self._position[node]
        return frozenset(self._preorder[begin : begin + self._subtree_size[node]])

    def subtree_size(self, node: int) -> int:
        """Number of embedded-tree nodes in the subtree of ``node`` (O(1))."""
        self._require(node)
        return self._subtree_size[node]

    def is_tree_ancestor(self, ancestor: int, node: int) -> bool:
        """Ancestor test within the embedded tree (a node is its own ancestor)."""
        self._require(ancestor)
        self._require(node)
        begin = self._position[ancestor]
        return begin <= self._position[node] < begin + self._subtree_size[ancestor]

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self, node: int) -> FrozenSet[int]:
        """Citations attached directly to ``node`` (L(n))."""
        self._require(node)
        return self._results[node]

    def subtree_results(self, node: int) -> FrozenSet[int]:
        """Distinct citations attached anywhere in the subtree of ``node``."""
        self._require(node)
        cached = self._subtree_results.get(node)
        if cached is not None:
            return cached
        # Iterative post-order accumulation (reversed preorder slice) to
        # avoid recursion limits.
        begin = self._position[node]
        order = self._preorder[begin : begin + self._subtree_size[node]]
        for n in reversed(order):
            if n in self._subtree_results:
                continue
            accumulated: Set[int] = set(self._results[n])
            for child in self._children[n]:
                accumulated.update(self._subtree_results[child])
            self._subtree_results[n] = frozenset(accumulated)
        return self._subtree_results[node]

    def distinct_results(self, nodes: Iterable[int]) -> FrozenSet[int]:
        """Distinct citations attached to any node in ``nodes``."""
        combined: Set[int] = set()
        for node in nodes:
            combined.update(self._results[node])
        return frozenset(combined)

    def all_results(self) -> FrozenSet[int]:
        """All distinct citations in the tree."""
        return self.subtree_results(self.root)

    # ------------------------------------------------------------------
    # Statistics (Table I columns)
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Navigation tree size (node count, Table I)."""
        return len(self._parent)

    def max_width(self) -> int:
        """Maximum number of nodes at one embedded-tree depth (Table I)."""
        counts: Dict[int, int] = {}
        for depth in self._depth.values():
            counts[depth] = counts.get(depth, 0) + 1
        return max(counts.values())

    def height(self) -> int:
        """Longest root-to-leaf edge count in the embedded tree (Table I)."""
        return max(self._depth.values())

    def citations_with_duplicates(self) -> int:
        """Total attachment count, duplicates included (Table I)."""
        return sum(len(ids) for ids in self._results.values())

    def tree_depth(self, node: int) -> int:
        """Depth of ``node`` in the embedded tree (root = 0, O(1))."""
        self._require(node)
        return self._depth[node]

    # ------------------------------------------------------------------
    def _require(self, node: int) -> None:
        if node not in self._parent:
            raise KeyError("node %r is not in the navigation tree" % (node,))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "ReferenceNavigationTree(%d nodes, %d distinct citations)" % (
            len(self),
            len(self.all_results()),
        )
