"""Bounded session registry with per-session locks.

Navigation sessions are stateful (an active tree plus an expand log), so
two threads interleaving EXPAND and BACKTRACK on one session can corrupt
it — the log can record an expand the active tree already undid.  The
registry therefore pairs every session with its own reentrant lock;
:meth:`SessionRegistry.checkout` hands the session out only with that
lock held, making each user action atomic with respect to the others
while leaving *different* sessions free to run in parallel.

Eviction is the second concern: the store is a bounded LRU (as in the
single-threaded web layer), but an evicted session used to surface as a
bare 404, indistinguishable from a typo'd id.  Session ids are issued
from one monotonic counter, so the registry can classify a miss exactly:
ids it has issued but no longer holds raise :class:`SessionExpired`
(clients re-run the search), ids it never issued raise ``KeyError``.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.core.session import NavigationSession

__all__ = ["SessionExpired", "SessionEntry", "SessionRegistry"]

_SID_RE = re.compile(r"^s(\d{6,})$")


class SessionExpired(KeyError):
    """A previously issued session was evicted from the bounded store.

    Subclasses ``KeyError`` so callers that only distinguish "found /
    not found" keep working; the web layer maps it to a distinct
    ``session_expired`` error so clients recover by re-running the
    search instead of retrying a dead id.
    """

    def __init__(self, sid: str):
        super().__init__(sid)
        self.sid = sid


@dataclass
class SessionEntry:
    """One live session plus everything its requests need.

    Attributes:
        query: the keyword query the session navigates.
        session: the navigation session itself.
        state: the shared per-query artifacts (tree/probs/decisions)
            the web layer caches; held here by reference so the session
            keeps working even after the query cache evicts the entry.
        lock: the per-session lock serializing this session's actions.
    """

    query: str
    session: NavigationSession
    state: object
    lock: threading.RLock = field(default_factory=threading.RLock)


class SessionRegistry:
    """A bounded, thread-safe LRU store of navigation sessions."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self._counter = 0
        self.evictions = 0
        self.expired_lookups = 0

    def create(self, query: str, session: NavigationSession, state: object) -> str:
        """Register a new session; returns its id (``s000001``, ...)."""
        with self._lock:
            self._counter += 1
            sid = "s%06d" % self._counter
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[sid] = SessionEntry(query=query, session=session, state=state)
            return sid

    @contextmanager
    def checkout(self, sid: str) -> Iterator[SessionEntry]:
        """Yield ``sid``'s entry with its per-session lock held.

        Raises:
            SessionExpired: the id was issued but has been evicted.
            KeyError: the id was never issued by this registry.
        """
        with self._lock:
            entry = self._entries.get(sid)
            if entry is None:
                match = _SID_RE.match(sid)
                if match and 1 <= int(match.group(1)) <= self._counter:
                    self.expired_lookups += 1
                    raise SessionExpired(sid)
                raise KeyError("session %s" % sid)
            self._entries.move_to_end(sid)
        with entry.lock:
            yield entry

    def __contains__(self, sid: str) -> bool:
        with self._lock:
            return sid in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def created(self) -> int:
        """How many sessions have ever been issued."""
        with self._lock:
            return self._counter

    def items(self) -> List[Tuple[str, SessionEntry]]:
        """Snapshot of (sid, entry) pairs, LRU first (no recency touch)."""
        with self._lock:
            return list(self._entries.items())

    def snapshot(self) -> Dict[str, int]:
        """One consistent reading of the store's counters."""
        with self._lock:
            return {
                "active": len(self._entries),
                "capacity": self.capacity,
                "created": self._counter,
                "evicted": self.evictions,
                "expired_lookups": self.expired_lookups,
            }
