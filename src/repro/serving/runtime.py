"""The :class:`ServingRuntime` facade the web layer mounts.

Every user action (search / view / EXPAND / SHOWRESULTS / BACKTRACK)
becomes one dispatched operation: admitted through the bounded queue,
executed on the worker pool, and returned as an immutable view object
the renderer (HTML or JSON) consumes without touching shared state.
The runtime owns all cross-request state and its locking:

* the staged :class:`~repro.pipeline.NavigationPipeline`, whose
  per-stage single-flight caches mean the hierarchy snapshot is shared
  by every query, a hot query's result set and navigation tree are
  built once no matter how many users issue it concurrently, and
  repeated EXPANDs replay cached cut plans;
* the session registry, whose per-session locks serialize interleaved
  EXPAND/BACKTRACK on one session;
* one atomic solver profile collecting per-EXPAND latency for
  ``/api/stats``.

``backend_latency`` models the per-request backend round-trip of the
deployed system (the paper's server calls NCBI Entrez over the network
on the user's behalf); the simulated corpus answers from memory, so the
bench sets this to a few milliseconds to reproduce the I/O-bound
request profile a real deployment schedules around.  The sleep runs on
the worker, outside every lock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # import cycle: repro.bionav builds on repro.pipeline,
    # whose cache layer reuses this package's SingleFlightCache.
    from repro.bionav import BioNav

from repro.core.active_tree import VisNode
from repro.core.relevance import ranked_visualization
from repro.corpus.citation import DocSummary
from repro.pipeline.pipeline import NavigationPipeline
from repro.pipeline.stages import NavTreeStage
from repro.serving.concurrency import AtomicSolverProfile, SingleFlightCache
from repro.serving.dispatcher import WorkerPoolDispatcher
from repro.serving.sessions import SessionEntry, SessionRegistry

__all__ = [
    "DEFAULT_RESULTS_PAGE_SIZE",
    "CostView",
    "SearchResult",
    "SessionView",
    "ResultsView",
    "ServingRuntime",
]

#: Citations a SHOWRESULTS response materializes ESummary records for;
#: the component's full pmid list is always returned, this only bounds
#: the per-request display payload (paper §VII: the deployed interface
#: pages the citation list).
DEFAULT_RESULTS_PAGE_SIZE = 50


@dataclass(frozen=True)
class CostView:
    """The cost ledger of one session at one point in time.

    Attributes:
        total: navigation cost plus SHOWRESULTS citation cost.
        navigation: concepts revealed + EXPAND actions (Fig. 8 metric).
        expands: EXPAND actions charged.
        revealed: concepts revealed.
        citations: citations displayed by SHOWRESULTS.
    """

    total: float
    navigation: float
    expands: int
    revealed: int
    citations: int


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one search request: a fresh session over the query.

    Attributes:
        session: the new session id.
        query: the keyword query.
        count: citations in the query result.
    """

    session: str
    query: str
    count: int


@dataclass(frozen=True)
class SessionView:
    """One session's visible interface state.

    Attributes:
        session: session id.
        query: the session's keyword query.
        rows: the ranked visualization rows.
        cost: the session's cost ledger snapshot.
    """

    session: str
    query: str
    rows: Tuple[VisNode, ...]
    cost: CostView


@dataclass(frozen=True)
class ResultsView:
    """One SHOWRESULTS answer.

    Attributes:
        session: session id.
        query: the session's keyword query.
        node: the concept whose component was listed.
        label: the concept's label.
        pmids: every citation id in the component (sorted).
        summaries: display records for the first ``results_page_size``
            citations (see :class:`ServingRuntime`).
        cost: the session's cost ledger snapshot after charging.
    """

    session: str
    query: str
    node: int
    label: str
    pmids: Tuple[int, ...]
    summaries: Tuple[DocSummary, ...]
    cost: CostView


class ServingRuntime:
    """Thread-safe serving facade over a :class:`~repro.bionav.BioNav`.

    Args:
        bionav: the system to serve.
        tree_cache_size: bound on cached result sets / navigation trees
            (the pipeline's ``results`` and ``nav_tree`` stages).
        max_sessions: bound on live sessions.
        workers: worker-pool size (the request concurrency cap).
        max_queue: admitted requests allowed to wait for a worker;
            beyond it requests are shed with ``Retry-After``.
        deadline: optional per-request budget in seconds; requests still
            queued past it are dropped.
        retry_after: client back-off hint attached to shed requests.
        backend_latency: simulated per-request backend round-trip in
            seconds (see the module docstring); 0 disables it.
        solver: registry name of the expansion strategy new sessions
            run (canonical or alias; resolved by the pipeline).
        results_page_size: citations per SHOWRESULTS display page
            (summaries materialized per request; the full pmid list is
            unaffected).  Surfaced in ``/api/health``.
        l2: optional cross-process stage store (the cluster's shared
            artifact cache); wired into the pipeline's
            :class:`~repro.pipeline.cache.StageCache` so stage misses
            consult it before building.
    """

    def __init__(
        self,
        bionav: BioNav,
        tree_cache_size: int = 32,
        max_sessions: int = 256,
        workers: int = 4,
        max_queue: int = 64,
        deadline: Optional[float] = None,
        retry_after: float = 1.0,
        backend_latency: float = 0.0,
        solver: str = "heuristic",
        results_page_size: int = DEFAULT_RESULTS_PAGE_SIZE,
        l2: Optional[object] = None,
    ):
        if results_page_size < 1:
            raise ValueError("results_page_size must be positive")
        self.bionav = bionav
        self.deadline = deadline
        self.backend_latency = backend_latency
        self.solver = bionav.registry.resolve(solver)
        self.results_page_size = results_page_size
        self.pipeline = NavigationPipeline(
            bionav.database,
            bionav.entrez,
            registry=bionav.registry,
            params=bionav.params,
            max_reduced_nodes=bionav.max_reduced_nodes,
            capacities={
                "results": tree_cache_size,
                "nav_tree": tree_cache_size,
            },
            l2=l2,
        )
        self.sessions = SessionRegistry(max_sessions)
        self.profile = AtomicSolverProfile()
        self.dispatcher = WorkerPoolDispatcher(
            workers, max_queue=max_queue, retry_after=retry_after
        )
        self._started = time.monotonic()

    @property
    def queries(self) -> SingleFlightCache:
        """The navigation-tree stage's cache (historical counter surface)."""
        return self.pipeline.cache.stage_cache(NavTreeStage.name)

    # ------------------------------------------------------------------
    # Dispatched operations (the request surface)
    # ------------------------------------------------------------------
    def search(self, query: str) -> SearchResult:
        """Resolve ``query`` (single-flight) and open a new session."""
        return self.dispatcher.call(lambda: self._do_search(query), self.deadline)

    def view(self, sid: str) -> SessionView:
        """The session's current interface rows and cost ledger."""
        return self.dispatcher.call(lambda: self._do_view(sid), self.deadline)

    def expand(self, sid: str, node: int) -> SessionView:
        """EXPAND ``node`` in the session; returns the new state."""
        return self.dispatcher.call(lambda: self._do_expand(sid, node), self.deadline)

    def results(self, sid: str, node: int) -> ResultsView:
        """SHOWRESULTS for ``node``'s component in the session."""
        return self.dispatcher.call(lambda: self._do_results(sid, node), self.deadline)

    def backtrack(self, sid: str) -> SessionView:
        """Undo the session's most recent EXPAND; returns the state."""
        return self.dispatcher.call(lambda: self._do_backtrack(sid), self.deadline)

    # ------------------------------------------------------------------
    # Operation bodies (run on the worker pool)
    # ------------------------------------------------------------------
    def _do_search(self, query: str) -> SearchResult:
        self._simulate_backend()
        nav = self.pipeline.nav_tree(query)
        artifact = self.pipeline.activate(
            nav, solver=self.solver, profiler=self.profile
        )
        sid = self.sessions.create(query, artifact.session, nav)
        return SearchResult(
            session=sid, query=query, count=len(nav.tree.all_results())
        )

    def _do_view(self, sid: str) -> SessionView:
        self._simulate_backend()
        with self.sessions.checkout(sid) as entry:
            return self._view_locked(sid, entry)

    def _do_expand(self, sid: str, node: int) -> SessionView:
        self._simulate_backend()
        with self.sessions.checkout(sid) as entry:
            if not entry.session.active.is_expandable(node):
                raise ValueError("node %d has nothing hidden to reveal" % node)
            entry.session.expand(node)
            return self._view_locked(sid, entry)

    def _do_results(self, sid: str, node: int) -> ResultsView:
        self._simulate_backend()
        with self.sessions.checkout(sid) as entry:
            if not entry.session.active.is_visible(node):
                raise ValueError("node %d is not visible" % node)
            pmids = tuple(entry.session.show_results(node))
            label = entry.session.tree.label(node)
            query = entry.query
            cost = self._cost_locked(entry)
        # ESummary fetch happens outside the session lock: it reads the
        # immutable corpus, not the session.
        summaries = tuple(
            self.bionav.summaries(list(pmids[: self.results_page_size]))
        )
        return ResultsView(
            session=sid,
            query=query,
            node=node,
            label=label,
            pmids=pmids,
            summaries=summaries,
            cost=cost,
        )

    def _do_backtrack(self, sid: str) -> SessionView:
        self._simulate_backend()
        with self.sessions.checkout(sid) as entry:
            entry.session.backtrack()
            return self._view_locked(sid, entry)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _simulate_backend(self) -> None:
        if self.backend_latency > 0:
            time.sleep(self.backend_latency)

    def _view_locked(self, sid: str, entry: SessionEntry) -> SessionView:
        """Render a session view; caller holds the session's lock."""
        state = entry.state
        rows = tuple(ranked_visualization(entry.session.active, state.probs))
        return SessionView(
            session=sid, query=entry.query, rows=rows, cost=self._cost_locked(entry)
        )

    @staticmethod
    def _cost_locked(entry: SessionEntry) -> CostView:
        """Snapshot the ledger; caller holds the session's lock."""
        session = entry.session
        return CostView(
            total=session.total_cost,
            navigation=session.navigation_cost,
            expands=session.ledger.expand_actions,
            revealed=session.ledger.concepts_revealed,
            citations=session.ledger.citations_displayed,
        )

    # ------------------------------------------------------------------
    # Observability (never dispatched: must answer even under overload)
    # ------------------------------------------------------------------
    @property
    def shed_retry_after(self) -> float:
        """Honest client back-off for shed requests, in seconds.

        A request dropped because its queueing deadline passed tells the
        client the queue needs at least the configured deadline to
        drain, so retrying sooner than that will hit the same wall; with
        no deadline configured, the admission controller's static
        ``retry_after`` hint applies.  The web layer rounds this up for
        the ``Retry-After`` header.
        """
        hint = self.dispatcher.admission.retry_after
        if self.deadline is not None:
            hint = max(hint, self.deadline)
        return hint

    def health(self) -> Dict[str, object]:
        """Liveness/saturation summary for ``GET /api/health``."""
        admission = self.dispatcher.stats()
        status = "ok"
        if admission.queue_depth >= self.dispatcher.admission.max_queue:
            status = "overloaded"
        return {
            "status": status,
            "workers": self.dispatcher.workers,
            "queue_depth": admission.queue_depth,
            "queue_capacity": self.dispatcher.admission.max_queue,
            "in_flight": admission.in_flight,
            "sessions_active": len(self.sessions),
            "solver": self.solver,
            "results_page_size": self.results_page_size,
            "uptime_seconds": time.monotonic() - self._started,
            # Which corpus backend this process serves from.  Cluster
            # tests assert every worker reports the same mmap directory
            # (one page-cached corpus, not N private copies).
            "store": self.bionav.database.store_info(),
        }

    def stats(self) -> Dict[str, object]:
        """Operational statistics for ``GET /api/stats``.

        The ``pipeline`` block reports every stage's cache hit/miss/
        latency counters; ``query_cache`` remains as the historical
        alias of the navigation-tree stage's counters.  Within it,
        ``hit_ratio`` is the canonical hit-fraction key (matching the
        per-stage ``pipeline`` rows); ``hit_rate`` is a **deprecated
        alias** kept for one release so existing dashboards keep
        reading — it always equals ``hit_ratio`` and will be removed.
        The ``solver`` block is the shared :class:`AtomicSolverProfile`
        summary of per-EXPAND decision timings (p50/p95/p99 in
        milliseconds) — the p99 is the warm-EXPAND latency
        ``bench_expand_hotpath`` gates sub-millisecond.
        """
        admission = self.dispatcher.stats()
        cache = self.queries.snapshot()
        query_rows = [
            {
                "query": nav.query,
                "tree_size": len(nav.tree),
                "decision_cache_size": len(nav.decisions),
            }
            for _, nav in self.pipeline.cache.items(NavTreeStage.name)
        ]
        return {
            "pipeline": self.pipeline.stage_stats(),
            "query_cache": {
                "size": cache["size"],
                "capacity": cache["capacity"],
                "hits": cache["hits"],
                "misses": cache["misses"],
                "evictions": cache["evictions"],
                # Deprecated alias of hit_ratio (see the docstring);
                # slated for removal once external readers migrate.
                "hit_rate": cache["hit_ratio"],
                "hit_ratio": cache["hit_ratio"],
                "single_flight_coalesced": cache["coalesced"],
            },
            "sessions": self.sessions.snapshot(),
            "serving": {
                "workers": self.dispatcher.workers,
                "queue_depth": admission.queue_depth,
                "queue_capacity": self.dispatcher.admission.max_queue,
                "in_flight": admission.in_flight,
                "admitted": admission.admitted,
                "completed": admission.completed,
                "shed": {
                    "overload": admission.shed_overload,
                    "deadline": admission.shed_deadline,
                    "total": admission.shed_total,
                },
            },
            "queries": query_rows,
            "solver": self.profile.summary(),
        }

    def close(self) -> None:
        """Shut the worker pool down, waiting for running requests."""
        self.dispatcher.close()

    def __enter__(self) -> "ServingRuntime":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the worker pool."""
        self.close()
