"""Concurrent serving runtime for the BioNav web deployment (paper §VII).

The paper's system is a multi-user web application, but the substrate
modules (`repro.web.app`, `repro.storage.cache`, the shared
Heuristic-ReducedOpt decision cache, `repro.analysis.runtime.SolverProfile`)
are single-threaded shared state.  This package supplies the runtime that
makes them safe to drive from many threads at once:

* :mod:`repro.serving.concurrency` — a locked LRU cache whose
  ``get_or_create`` is **single-flight** (concurrent misses on one query
  build the navigation tree exactly once) and an atomic wrapper around
  :class:`~repro.analysis.runtime.SolverProfile`.
* :mod:`repro.serving.sessions` — a bounded session registry handing out
  per-session locks, so interleaved EXPAND/BACKTRACK on one session stay
  serializable, and distinguishing *expired* sessions from unknown ones.
* :mod:`repro.serving.admission` — bounded admission with load shedding
  (503 + ``Retry-After`` instead of an unbounded queue) and per-request
  deadlines.
* :mod:`repro.serving.dispatcher` — the ``ThreadPoolExecutor``-backed
  worker pool the admission controller guards.
* :mod:`repro.serving.runtime` — the :class:`ServingRuntime` facade the
  web layer mounts; every user action becomes a dispatched, lock-correct
  operation returning plain view data.

Locking discipline in this package is machine-checked by the
``lock-discipline`` analyzer rule (``tools/analyzer/rules/locking.py``).
"""

from __future__ import annotations

from repro.serving.admission import (
    AdmissionController,
    AdmissionStats,
    DeadlineExceeded,
    RetryLater,
)
from repro.serving.concurrency import AtomicSolverProfile, SingleFlightCache
from repro.serving.dispatcher import WorkerPoolDispatcher
from repro.serving.runtime import (
    CostView,
    ResultsView,
    SearchResult,
    ServingRuntime,
    SessionView,
)
from repro.serving.sessions import SessionExpired, SessionRegistry

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AtomicSolverProfile",
    "CostView",
    "DeadlineExceeded",
    "ResultsView",
    "RetryLater",
    "SearchResult",
    "ServingRuntime",
    "SessionExpired",
    "SessionRegistry",
    "SessionView",
    "SingleFlightCache",
    "WorkerPoolDispatcher",
]
