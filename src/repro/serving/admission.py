"""Admission control: bounded queueing, deadlines, and load shedding.

An unbounded executor queue converts overload into unbounded latency —
every queued request eventually runs, long after its user gave up.  The
:class:`AdmissionController` instead caps how many admitted requests may
wait for a worker; past the cap it *sheds* the request immediately with
:class:`RetryLater` (the web layer answers ``503`` with a
``Retry-After`` header).  Admitted requests carry an optional deadline:
if one is still queued when its deadline passes, the worker drops it
with :class:`DeadlineExceeded` instead of doing work nobody is waiting
for.  Running requests are never preempted — deadlines bound *queueing*
delay, which is the component overload actually inflates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["RetryLater", "DeadlineExceeded", "AdmissionStats", "AdmissionController"]


class RetryLater(Exception):
    """The request was shed at admission because the queue is full.

    Attributes:
        retry_after: suggested client back-off in seconds (the value of
            the HTTP ``Retry-After`` header).
    """

    def __init__(self, retry_after: float):
        super().__init__(
            "serving queue is full; retry in %.0f second(s)" % retry_after
        )
        self.retry_after = retry_after


class DeadlineExceeded(Exception):
    """The request's deadline passed while it waited for a worker."""

    def __init__(self, waited: float):
        super().__init__(
            "request deadline exceeded after %.3fs in the queue" % waited
        )
        self.waited = waited


@dataclass(frozen=True)
class AdmissionStats:
    """One consistent snapshot of the controller's counters.

    Attributes:
        queue_depth: admitted requests not yet running.
        in_flight: requests currently executing on a worker.
        admitted: total requests accepted past admission.
        completed: total requests that finished executing.
        shed_overload: requests rejected because the queue was full.
        shed_deadline: requests dropped because their deadline passed
            while queued.
    """

    queue_depth: int
    in_flight: int
    admitted: int
    completed: int
    shed_overload: int
    shed_deadline: int

    @property
    def shed_total(self) -> int:
        """Every request shed for any reason."""
        return self.shed_overload + self.shed_deadline


class AdmissionController:
    """Bounded admission gate shared by one worker pool.

    Args:
        max_queue: how many admitted requests may wait for a worker at
            once (requests already running do not count).
        retry_after: back-off hint attached to shed requests.
    """

    def __init__(self, max_queue: int, retry_after: float = 1.0):
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        if retry_after <= 0:
            raise ValueError("retry_after must be positive")
        self.max_queue = max_queue
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._queued = 0
        self._running = 0
        self._admitted = 0
        self._completed = 0
        self._shed_overload = 0
        self._shed_deadline = 0

    def admit(self) -> None:
        """Accept one request into the queue, or shed it.

        Raises:
            RetryLater: the queue is at capacity.
        """
        with self._lock:
            if self._queued >= self.max_queue:
                self._shed_overload += 1
                raise RetryLater(self.retry_after)
            self._queued += 1
            self._admitted += 1

    def start(self, waited: float, expired: bool) -> None:
        """Move one admitted request from queued to running.

        Args:
            waited: seconds the request spent queued (for the error).
            expired: True when the request's deadline already passed —
                it is then dropped instead of started.

        Raises:
            DeadlineExceeded: the deadline passed while queued.
        """
        with self._lock:
            self._queued -= 1
            if expired:
                self._shed_deadline += 1
                raise DeadlineExceeded(waited)
            self._running += 1

    def finish(self) -> None:
        """Mark one running request as complete."""
        with self._lock:
            self._running -= 1
            self._completed += 1

    def abandon(self) -> None:
        """Return one queued slot without running (executor rejected it)."""
        with self._lock:
            self._queued -= 1

    def stats(self) -> AdmissionStats:
        """Snapshot every counter under the lock."""
        with self._lock:
            return AdmissionStats(
                queue_depth=self._queued,
                in_flight=self._running,
                admitted=self._admitted,
                completed=self._completed,
                shed_overload=self._shed_overload,
                shed_deadline=self._shed_deadline,
            )
