"""The worker pool: a ThreadPoolExecutor behind admission control.

Requests enter through :meth:`WorkerPoolDispatcher.call`, which blocks
the calling (WSGI) thread until its request ran — the pool's job is not
asynchrony but *capping concurrency*: at most ``workers`` requests
execute at once, at most ``max_queue`` wait, and everything beyond that
is shed immediately.  ``queue_depth`` in a request's accounting means
"admitted, not yet picked up by a worker", which is exactly the latency
component deadlines bound.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, TypeVar

from repro.serving.admission import AdmissionController, AdmissionStats, RetryLater

__all__ = ["WorkerPoolDispatcher"]

T = TypeVar("T")


class WorkerPoolDispatcher:
    """Bounded synchronous dispatch onto a thread pool.

    Args:
        workers: worker-thread count (the concurrency cap).
        max_queue: admitted requests allowed to wait for a worker.
        retry_after: back-off hint attached to shed requests.
    """

    def __init__(self, workers: int, max_queue: int = 64, retry_after: float = 1.0):
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.admission = AdmissionController(max_queue, retry_after=retry_after)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serving"
        )

    def call(self, fn: Callable[[], T], deadline: Optional[float] = None) -> T:
        """Run ``fn`` on the pool and return its result (or raise).

        Args:
            fn: the request body.
            deadline: optional per-request budget in seconds, measured
                from admission; a request still queued when it expires
                is dropped instead of executed.

        Raises:
            RetryLater: shed at admission (queue full).
            DeadlineExceeded: deadline passed while queued.
            Exception: whatever ``fn`` raised, unchanged.
        """
        self.admission.admit()
        admitted_at = time.monotonic()
        expires_at = None if deadline is None else admitted_at + deadline
        try:
            future = self._pool.submit(self._run, fn, admitted_at, expires_at)
        except RuntimeError:
            # The pool is shut down; give the queued slot back and shed.
            self.admission.abandon()
            raise RetryLater(self.admission.retry_after)
        return future.result()

    def _run(self, fn: Callable[[], T], admitted_at: float, expires_at: Optional[float]) -> T:
        now = time.monotonic()
        expired = expires_at is not None and now > expires_at
        self.admission.start(waited=now - admitted_at, expired=expired)
        try:
            return fn()
        finally:
            self.admission.finish()

    def stats(self) -> AdmissionStats:
        """The admission controller's counter snapshot."""
        return self.admission.stats()

    def close(self) -> None:
        """Shut the pool down, waiting for running requests."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "WorkerPoolDispatcher":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the pool."""
        self.close()
