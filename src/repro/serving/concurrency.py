"""Thread-safe cache and profiling primitives.

:class:`SingleFlightCache` — the locked LRU cache with single-flight
``get_or_create`` that every pipeline stage and the serving layer share
— lives in :mod:`repro.pipeline.concurrency` (the pipeline's stage
cache is its primary holder) and is re-exported here for the serving
layer and its historical importers.

:class:`AtomicSolverProfile` wraps the append-only
:class:`~repro.analysis.runtime.SolverProfile` so that recording an
EXPAND timing and snapshotting the summary are mutually exclusive; a
``summary()`` taken mid-append can otherwise observe a half-updated
record list.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.analysis.runtime import SolverProfile, SolverTiming
from repro.pipeline.concurrency import SingleFlightCache

__all__ = ["SingleFlightCache", "AtomicSolverProfile"]


class AtomicSolverProfile:
    """A :class:`SolverProfile` safe to share across request threads.

    Exposes the same duck-typed surface sessions feed
    (``record(node, seconds, reduced_size)``) plus the read side the
    stats endpoint consumes, with every operation serialized on one
    lock.  ``summary()`` therefore always describes a consistent prefix
    of the recording stream.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._profile = SolverProfile()

    def record(self, node: int, seconds: float, reduced_size: int) -> None:
        """Append one EXPAND decision's timing (thread-safe)."""
        with self._lock:
            self._profile.record(node=node, seconds=seconds, reduced_size=reduced_size)

    def __len__(self) -> int:
        with self._lock:
            return len(self._profile)

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics (see :meth:`SolverProfile.summary`)."""
        with self._lock:
            return self._profile.summary()

    def records(self) -> List[SolverTiming]:
        """A point-in-time copy of every recorded timing."""
        with self._lock:
            return list(self._profile.records)
