"""BioNav reproduction (ICDE 2009).

Cost-aware dynamic navigation of biomedical query results over a MeSH-like
concept hierarchy: navigation trees, EdgeCut-based expansion, the TOPDOWN
cost model, Opt-EdgeCut and Heuristic-ReducedOpt, plus every substrate the
paper's system depends on (simulated MEDLINE, Entrez eutils, storage and
search engines).

Quickstart::

    from repro import BioNav, build_workload

    workload = build_workload()
    bionav = BioNav(workload.database, workload.entrez)
    query = bionav.search("prothymosin")
    query.session.expand(query.tree.root)
    for row in query.session.visualize():
        print("  " * row.depth + row.label, row.count)
"""

from repro.bionav import BioNav, BioNavQuery
from repro.core.active_tree import ActiveTree, VisNode
from repro.core.cost_model import CostLedger, CostParams
from repro.core.evaluation import expected_strategy_cost
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import BestCut, CutTree, OptEdgeCut
from repro.core.paged_static import PagedStaticNavigation
from repro.core.probabilities import ProbabilityModel
from repro.core.relevance import ranked_visualization
from repro.core.replay import SessionLog, record_session, replay_session
from repro.core.session import NavigationSession
from repro.core.simulator import NavigationOutcome, navigate_to_target
from repro.core.static_nav import StaticNavigation
from repro.core.strategy import CutDecision, ExpansionStrategy
from repro.corpus.citation import Citation, DocSummary
from repro.corpus.medline import MedlineDatabase
from repro.eutils.client import EntrezClient
from repro.hierarchy.concept import Concept, ConceptHierarchy
from repro.hierarchy.generator import generate_hierarchy
from repro.hierarchy.mesh import paper_fragment
from repro.storage.database import BioNavDatabase
from repro.workload.builder import Workload, build_workload
from repro.workload.queries import TABLE_I_QUERIES, WorkloadQuery

__version__ = "1.0.0"

__all__ = [
    "ActiveTree",
    "BestCut",
    "BioNav",
    "BioNavDatabase",
    "BioNavQuery",
    "Citation",
    "Concept",
    "ConceptHierarchy",
    "CostLedger",
    "CostParams",
    "CutDecision",
    "CutTree",
    "DocSummary",
    "EntrezClient",
    "ExpansionStrategy",
    "HeuristicReducedOpt",
    "MedlineDatabase",
    "NavigationOutcome",
    "NavigationSession",
    "NavigationTree",
    "OptEdgeCut",
    "PagedStaticNavigation",
    "ProbabilityModel",
    "SessionLog",
    "StaticNavigation",
    "TABLE_I_QUERIES",
    "VisNode",
    "Workload",
    "WorkloadQuery",
    "build_workload",
    "expected_strategy_cost",
    "generate_hierarchy",
    "navigate_to_target",
    "paper_fragment",
    "ranked_visualization",
    "record_session",
    "replay_session",
]
