"""BioNav reproduction (ICDE 2009).

Cost-aware dynamic navigation of biomedical query results over a MeSH-like
concept hierarchy: navigation trees, EdgeCut-based expansion, the TOPDOWN
cost model, Opt-EdgeCut and Heuristic-ReducedOpt, plus every substrate the
paper's system depends on (simulated MEDLINE, Entrez eutils, storage and
search engines).

Quickstart::

    from repro import BioNav, build_workload

    workload = build_workload()
    bionav = BioNav(workload.database, workload.entrez)
    query = bionav.search("prothymosin")
    query.session.expand(query.tree.root)
    for row in query.session.visualize():
        print("  " * row.depth + row.label, row.count)
"""

from repro.bionav import BioNav, BioNavQuery
from repro.core import (
    ActiveTree,
    BestCut,
    CostLedger,
    CostParams,
    CutDecision,
    CutTree,
    ExpansionStrategy,
    HeuristicReducedOpt,
    NavigationOutcome,
    NavigationSession,
    NavigationTree,
    OptEdgeCut,
    PagedStaticNavigation,
    ProbabilityModel,
    SessionLog,
    SolverCapabilities,
    StaticNavigation,
    VisNode,
    expected_strategy_cost,
    navigate_to_target,
    ranked_visualization,
    record_session,
    replay_session,
)
from repro.corpus.citation import Citation, DocSummary
from repro.corpus.medline import MedlineDatabase
from repro.eutils.client import EntrezClient
from repro.hierarchy.concept import Concept, ConceptHierarchy
from repro.hierarchy.generator import generate_hierarchy
from repro.hierarchy.mesh import paper_fragment
from repro.pipeline.pipeline import NavigationPipeline, PipelineStrategy
from repro.pipeline.registry import SolverRegistry, default_registry
from repro.storage.database import BioNavDatabase
from repro.workload.builder import Workload, build_workload
from repro.workload.queries import TABLE_I_QUERIES, WorkloadQuery

__version__ = "1.0.0"

__all__ = [
    "ActiveTree",
    "BestCut",
    "BioNav",
    "BioNavDatabase",
    "BioNavQuery",
    "Citation",
    "Concept",
    "ConceptHierarchy",
    "CostLedger",
    "CostParams",
    "CutDecision",
    "CutTree",
    "DocSummary",
    "EntrezClient",
    "ExpansionStrategy",
    "HeuristicReducedOpt",
    "MedlineDatabase",
    "NavigationOutcome",
    "NavigationPipeline",
    "NavigationSession",
    "NavigationTree",
    "OptEdgeCut",
    "PagedStaticNavigation",
    "PipelineStrategy",
    "ProbabilityModel",
    "SessionLog",
    "SolverCapabilities",
    "SolverRegistry",
    "StaticNavigation",
    "TABLE_I_QUERIES",
    "VisNode",
    "Workload",
    "WorkloadQuery",
    "build_workload",
    "default_registry",
    "expected_strategy_cost",
    "generate_hierarchy",
    "navigate_to_target",
    "paper_fragment",
    "ranked_visualization",
    "record_session",
    "replay_session",
]
