"""Rendering of navigation state: ASCII (Figs. 1, 2, 5) and HTML export."""

from repro.viz.figures import bar_chart, grouped_bar_chart
from repro.viz.graph import active_tree_to_networkx, navigation_tree_to_networkx, to_dot
from repro.viz.html import active_tree_to_html, navigation_tree_to_html, rows_to_html
from repro.viz.render import render_active_tree, render_navigation_tree, render_rows

__all__ = [
    "active_tree_to_html",
    "active_tree_to_networkx",
    "bar_chart",
    "grouped_bar_chart",
    "navigation_tree_to_html",
    "navigation_tree_to_networkx",
    "render_active_tree",
    "render_navigation_tree",
    "render_rows",
    "rows_to_html",
    "to_dot",
]
