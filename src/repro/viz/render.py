"""ASCII rendering of navigation state (the paper's Figs. 1, 2 and 5).

Two views are provided:

* :func:`render_navigation_tree` — the *static* interface of Fig. 1: the
  whole navigation tree with per-subtree distinct citation counts, with
  optional per-level truncation ("47 more nodes") exactly like the figure,
  and
* :func:`render_active_tree` — BioNav's dynamic view of Figs. 2/5: the
  visible embedded tree with component counts and ``>>>`` expand marks.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.active_tree import ActiveTree
from repro.core.navigation_tree import NavigationTree

__all__ = ["render_navigation_tree", "render_active_tree", "render_rows"]

_INDENT = "  "


def render_navigation_tree(
    tree: NavigationTree,
    max_children: Optional[int] = None,
    max_depth: Optional[int] = None,
    highlight: Iterable[int] = (),
) -> str:
    """Fig. 1-style static rendering with subtree counts.

    Args:
        tree: the navigation tree.
        max_children: children shown per node before truncating to an
            ``N more nodes`` line (None = show all).
        max_depth: deepest level rendered (None = no limit).
        highlight: node ids to mark with ``*`` (the figure's highlights).
    """
    marked = set(highlight)
    lines: List[str] = []

    def visit(node: int, depth: int) -> None:
        count = len(tree.subtree_results(node))
        star = " *" if node in marked else ""
        lines.append("%s%s (%d)%s" % (_INDENT * depth, tree.label(node), count, star))
        if max_depth is not None and depth >= max_depth:
            children = tree.children(node)
            if children:
                lines.append("%s... %d subtree(s) below" % (_INDENT * (depth + 1), len(children)))
            return
        children = list(tree.children(node))
        shown = children if max_children is None else children[:max_children]
        for child in shown:
            visit(child, depth + 1)
        hidden = len(children) - len(shown)
        if hidden > 0:
            lines.append("%s%d more nodes" % (_INDENT * (depth + 1), hidden))

    visit(tree.root, 0)
    return "\n".join(lines)


def render_active_tree(active: ActiveTree, highlight: Iterable[int] = ()) -> str:
    """Fig. 2-style rendering of the current visible tree."""
    marked = set(highlight)
    return render_rows(active.visualize(), marked)


def render_rows(rows: Sequence, marked: Iterable[int] = ()) -> str:
    """Render a list of :class:`~repro.core.active_tree.VisNode` rows."""
    marked_set = set(marked)
    lines = []
    for row in rows:
        expand = " >>>" if row.expandable else ""
        star = " *" if row.node in marked_set else ""
        lines.append(
            "%s%s (%d)%s%s" % (_INDENT * row.depth, row.label, row.count, expand, star)
        )
    return "\n".join(lines)
