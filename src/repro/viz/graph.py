"""Graph exports: networkx interop and GraphViz DOT.

Downstream analysis of navigation trees (centrality, path statistics,
visual layout) is easiest in standard graph tooling.  This module converts
navigation trees and active-tree snapshots into ``networkx`` DiGraphs with
the BioNav attributes attached (labels, per-node and per-subtree citation
counts, visibility), and renders a GraphViz DOT form for figures.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.core.active_tree import ActiveTree
from repro.core.navigation_tree import NavigationTree

__all__ = ["navigation_tree_to_networkx", "active_tree_to_networkx", "to_dot"]


def navigation_tree_to_networkx(tree: NavigationTree) -> "nx.DiGraph":
    """The navigation tree as a DiGraph (edges parent → child).

    Node attributes: ``label``, ``results`` (|L(n)|), ``subtree_results``
    (the Fig. 1 counts), ``depth``.
    """
    graph = nx.DiGraph()
    for node in tree.iter_dfs():
        graph.add_node(
            node,
            label=tree.label(node),
            results=len(tree.results(node)),
            subtree_results=len(tree.subtree_results(node)),
            depth=tree.tree_depth(node),
        )
    for parent, child in tree.edges():
        graph.add_edge(parent, child)
    return graph


def active_tree_to_networkx(active: ActiveTree) -> "nx.DiGraph":
    """The full navigation tree annotated with the active-tree state.

    Adds ``visible`` and ``component_root`` node attributes, plus
    ``component_count`` (the Definition 5 display count) on visible nodes.
    """
    graph = navigation_tree_to_networkx(active.tree)
    roots = set(active.component_roots())
    for node in graph.nodes:
        visible = active.is_visible(node)
        graph.nodes[node]["visible"] = visible
        graph.nodes[node]["component_root"] = node in roots
        if visible:
            graph.nodes[node]["component_count"] = active.component_count(node)
    return graph


def to_dot(
    graph: "nx.DiGraph",
    highlight: Iterable[int] = (),
    max_label_length: int = 28,
) -> str:
    """Render a DiGraph produced above as GraphViz DOT.

    Visible nodes (when the attribute is present) are drawn solid, hidden
    ones dashed; highlighted nodes are filled.  Labels show the concept
    name and its display count.
    """
    marked = set(highlight)
    lines = ["digraph bionav {", '  rankdir="LR";', "  node [shape=box];"]
    for node, data in graph.nodes(data=True):
        label = str(data.get("label", node))
        if len(label) > max_label_length:
            label = label[: max_label_length - 1] + "…"
        count = data.get("component_count", data.get("subtree_results"))
        if count is not None:
            label = "%s (%d)" % (label, count)
        style_parts = []
        if data.get("visible") is False:
            style_parts.append("dashed")
        if node in marked:
            style_parts.append("filled")
        style = ' style="%s"' % ",".join(style_parts) if style_parts else ""
        lines.append('  n%d [label="%s"%s];' % (node, label.replace('"', "'"), style))
    for parent, child in graph.edges:
        lines.append("  n%d -> n%d;" % (parent, child))
    lines.append("}")
    return "\n".join(lines)
