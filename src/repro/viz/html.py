"""Self-contained HTML export of the BioNav interface state.

The deployed BioNav is a web application (the paper hosted it at
db.cse.buffalo.edu/bionav); this module renders the current active tree —
or a full static navigation tree — as a standalone HTML page with the same
visual vocabulary as the paper's screenshots: nested lists, per-node
citation counts, and ``>>>`` expand hyperlink markers.

The output has no external dependencies (inline CSS, no JavaScript), so it
can be opened directly or embedded in reports.
"""

from __future__ import annotations

import html
from typing import Iterable, List, Optional, Sequence

from repro.core.active_tree import ActiveTree, VisNode
from repro.core.navigation_tree import NavigationTree

__all__ = ["active_tree_to_html", "navigation_tree_to_html", "rows_to_html"]

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: sans-serif; margin: 1.5em; }}
h1 {{ font-size: 1.2em; }}
ul.bionav {{ list-style: none; padding-left: 1.2em; border-left: 1px dotted #bbb; }}
ul.bionav > li {{ margin: 0.15em 0; }}
span.count {{ color: #555; }}
a.expand {{ color: #0645ad; text-decoration: none; margin-left: 0.4em; }}
li.highlight > span.label {{ background: #fff3a0; }}
</style>
</head>
<body>
<h1>{title}</h1>
{body}
</body>
</html>
"""


def rows_to_html(rows: Sequence[VisNode], highlight: Iterable[int] = ()) -> str:
    """Render visualization rows as nested ``<ul>`` markup."""
    marked = set(highlight)
    parts: List[str] = []
    depth = -1
    for row in rows:
        while depth >= row.depth:
            parts.append("</ul>")
            depth -= 1
        while depth < row.depth - 1:
            parts.append('<ul class="bionav">')
            depth += 1
        parts.append('<ul class="bionav">')
        depth = row.depth
        css = ' class="highlight"' if row.node in marked else ""
        expand = ' <a class="expand" href="#" title="expand">&gt;&gt;&gt;</a>' if row.expandable else ""
        parts.append(
            '<li%s><span class="label">%s</span> <span class="count">(%d)</span>%s</li>'
            % (css, html.escape(row.label), row.count, expand)
        )
    while depth >= 0:
        parts.append("</ul>")
        depth -= 1
    return "\n".join(parts)


def active_tree_to_html(
    active: ActiveTree,
    title: str = "BioNav navigation",
    highlight: Iterable[int] = (),
    rows: Optional[Sequence[VisNode]] = None,
) -> str:
    """Full HTML page for the current active-tree state.

    Pass pre-ranked ``rows`` (e.g. from
    :func:`repro.core.relevance.ranked_visualization`) to control sibling
    order; defaults to the active tree's natural order.
    """
    if rows is None:
        rows = active.visualize()
    return _PAGE_TEMPLATE.format(
        title=html.escape(title), body=rows_to_html(rows, highlight)
    )


def navigation_tree_to_html(
    tree: NavigationTree,
    title: str = "Navigation tree",
    highlight: Iterable[int] = (),
) -> str:
    """Full HTML page for the static (fully expanded) navigation tree."""
    rows: List[VisNode] = []

    def visit(node: int, depth: int, parent: int) -> None:
        rows.append(
            VisNode(
                node=node,
                label=tree.label(node),
                count=len(tree.subtree_results(node)),
                expandable=False,
                depth=depth,
                parent=parent,
            )
        )
        for child in tree.children(node):
            visit(child, depth + 1, node)

    visit(tree.root, 0, -1)
    return _PAGE_TEMPLATE.format(
        title=html.escape(title), body=rows_to_html(rows, highlight)
    )
