"""ASCII bar charts for the experiment figures.

Dependency-free renderings of the Fig. 8/9/10-style comparisons, used by
the report generator and the examples so results read like the paper's
figures straight from the terminal::

    prothymosin          static  |############################| 197
                         bionav  |####|                          32
"""

from __future__ import annotations

from typing import List, Mapping

__all__ = ["bar_chart", "grouped_bar_chart"]

_FULL = "#"


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """One horizontal bar per labeled value, scaled to the maximum."""
    if not values:
        return "(no data)"
    longest_label = max(len(label) for label in values)
    peak = max(values.values())
    scale = (width / peak) if peak > 0 else 0.0
    lines = []
    for label, value in values.items():
        bar = _FULL * max(int(round(value * scale)), 1 if value > 0 else 0)
        lines.append(
            "%-*s |%-*s| %g%s" % (longest_label, label, width, bar, value, unit)
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 36,
    unit: str = "",
) -> str:
    """Fig. 8-style chart: one group per key, one bar per series.

    All bars share a single scale so series are comparable across groups.
    """
    if not groups:
        return "(no data)"
    series_labels = sorted({s for series in groups.values() for s in series})
    peak = max(
        (value for series in groups.values() for value in series.values()),
        default=0.0,
    )
    scale = (width / peak) if peak > 0 else 0.0
    label_width = max(len(g) for g in groups)
    series_width = max(len(s) for s in series_labels)
    lines: List[str] = []
    for group, series in groups.items():
        first = True
        for series_label in series_labels:
            if series_label not in series:
                continue
            value = series[series_label]
            bar = _FULL * max(int(round(value * scale)), 1 if value > 0 else 0)
            lines.append(
                "%-*s %-*s |%-*s| %g%s"
                % (
                    label_width,
                    group if first else "",
                    series_width,
                    series_label,
                    width,
                    bar,
                    value,
                    unit,
                )
            )
            first = False
        lines.append("")
    return "\n".join(lines).rstrip()
