"""Concept-hierarchy substrate: tree structures, MeSH helpers, generators."""

from repro.hierarchy.arrays import ArrayBackedHierarchy, HierarchyArrays
from repro.hierarchy.concept import Concept, ConceptHierarchy
from repro.hierarchy.generator import HierarchyGenerator, HierarchyShape, generate_hierarchy
from repro.hierarchy.mesh import paper_fragment
from repro.hierarchy.stats import ShapeStats, branching_histogram, level_widths, shape_stats
from repro.hierarchy.mesh_loader import (
    DescriptorRecord,
    dump_mesh_ascii,
    hierarchy_from_records,
    load_mesh_ascii,
    parse_descriptor_records,
)

__all__ = [
    "ArrayBackedHierarchy",
    "Concept",
    "DescriptorRecord",
    "ConceptHierarchy",
    "HierarchyArrays",
    "HierarchyGenerator",
    "HierarchyShape",
    "ShapeStats",
    "dump_mesh_ascii",
    "generate_hierarchy",
    "hierarchy_from_records",
    "load_mesh_ascii",
    "parse_descriptor_records",
    "branching_histogram",
    "level_widths",
    "shape_stats",
    "paper_fragment",
]
