"""Synthetic MeSH-like hierarchy generation.

The real MeSH 2008 hierarchy has ~48,000 concepts, is notably bushy at the
upper levels (98 children under the root in the paper's Fig. 1) and about
eleven levels deep.  The navigation algorithms only consume tree structure
and labels, so a synthetic hierarchy reproducing those shape statistics is a
faithful substrate (see DESIGN.md §4).

:class:`HierarchyGenerator` grows a tree level by level with a branching
factor that decays geometrically with depth, which yields the wide-top /
narrow-bottom silhouette of MeSH.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hierarchy.concept import ConceptHierarchy

__all__ = [
    "HierarchyShape",
    "HierarchyGenerator",
    "generate_hierarchy",
    "mesh_2008_hierarchy",
    "MESH_2008_SEED",
]

# Vocabulary for synthetic concept labels: biomedical-flavored stems so
# rendered navigation trees remain readable in examples and bench output.
_STEMS = [
    "Protein", "Receptor", "Kinase", "Pathway", "Cell", "Tissue", "Gene",
    "Enzyme", "Hormone", "Antigen", "Antibody", "Transporter", "Channel",
    "Factor", "Complex", "Signal", "Membrane", "Nucleus", "Cytokine",
    "Peptide", "Lipid", "Carbohydrate", "Metabolite", "Inhibitor", "Agonist",
]
_QUALIFIERS = [
    "Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Type I", "Type II",
    "Type III", "Neuronal", "Hepatic", "Cardiac", "Renal", "Pulmonary",
    "Vascular", "Epithelial", "Mitochondrial", "Nuclear", "Cytosolic",
    "Synaptic", "Embryonic",
]


@dataclass(frozen=True)
class HierarchyShape:
    """Shape parameters of a synthetic MeSH-like hierarchy.

    Attributes:
        target_size: approximate number of concepts to generate.
        root_fanout: number of top-level categories (MeSH has 98 under the
            root in the paper's navigation trees; default scaled down).
        branching: mean number of children of an internal non-root node at
            depth 1; decays by ``decay`` per extra level.
        decay: multiplicative per-level decay of the branching factor.
        max_depth: hard depth cap (MeSH is ~11 levels deep).
    """

    target_size: int = 5000
    root_fanout: int = 24
    branching: float = 4.0
    decay: float = 0.82
    max_depth: int = 11

    @classmethod
    def mesh_2008(cls) -> "HierarchyShape":
        """The shape of the real MeSH 2008 tree the paper navigates.

        ~48k concepts with a very bushy top (the paper's Fig. 1 shows 98
        children under the root) and ~11 levels of depth.  Generating at
        this size takes a few seconds; the algorithms are unchanged.
        """
        return cls(
            target_size=48_000,
            root_fanout=98,
            branching=5.0,
            decay=0.86,
            max_depth=11,
        )

    @classmethod
    def deep(cls, target_size: int = 5000) -> "HierarchyShape":
        """A deliberately deep variant (narrow top, slow decay).

        Useful for experiments where navigation depth matters more than
        width — targets end up 7-9 levels down instead of 4-5.
        """
        return cls(
            target_size=target_size,
            root_fanout=8,
            branching=3.0,
            decay=0.95,
            max_depth=14,
        )


class HierarchyGenerator:
    """Grows random MeSH-like hierarchies reproducibly from a seed."""

    def __init__(self, shape: Optional[HierarchyShape] = None, seed: int = 0):
        self.shape = shape or HierarchyShape()
        self._rng = random.Random(seed)

    def generate(self) -> ConceptHierarchy:
        """Generate one hierarchy of roughly ``shape.target_size`` concepts."""
        shape = self.shape
        hierarchy = ConceptHierarchy(root_label="MeSH")
        frontier: List[int] = []
        for _ in range(shape.root_fanout):
            node = hierarchy.add_child(hierarchy.root, self._make_label(1))
            frontier.append(node)
        depth = 1
        while frontier and len(hierarchy) < shape.target_size and depth < shape.max_depth:
            mean_children = shape.branching * (shape.decay ** (depth - 1))
            next_frontier: List[int] = []
            for node in frontier:
                if len(hierarchy) >= shape.target_size:
                    break
                for _ in range(self._sample_fanout(mean_children)):
                    if len(hierarchy) >= shape.target_size:
                        break
                    child = hierarchy.add_child(node, self._make_label(depth + 1))
                    next_frontier.append(child)
            frontier = next_frontier
            depth += 1
        return hierarchy

    # ------------------------------------------------------------------
    def _sample_fanout(self, mean: float) -> int:
        """Draw a child count with the given mean; some nodes stay leaves."""
        if self._rng.random() < 0.25:
            return 0
        # Geometric-ish draw centered on mean/(1-0.25) to keep the overall
        # expected fanout close to ``mean``.
        value = int(self._rng.expovariate(1.0 / max(mean / 0.75, 1e-9)) + 0.5)
        return min(value, 40)

    def _make_label(self, depth: int) -> str:
        stem = self._rng.choice(_STEMS)
        qualifier = self._rng.choice(_QUALIFIERS)
        return "%s, %s (L%d-%04d)" % (stem, qualifier, depth, self._rng.randrange(10000))


#: Seed of the canonical paper-scale hierarchy preset.  Fixed so every
#: consumer (the substrate bench, workload scenarios, two same-seed
#: builds in the determinism gate) generates the identical tree.
MESH_2008_SEED = 2008

#: Seed-keyed cache of paper-scale hierarchies.  Generation walks ~48k
#: Python-object insertions (~190ms); every bench/test that re-derives
#: the canonical tree would otherwise pay it again.
_MESH_2008_CACHE: Dict[int, ConceptHierarchy] = {}


def mesh_2008_hierarchy(seed: int = MESH_2008_SEED) -> ConceptHierarchy:
    """The deterministic paper-scale MeSH-shaped hierarchy (~48k concepts).

    :meth:`HierarchyShape.mesh_2008` shape statistics (98 root
    categories, geometric branching decay, 11 levels) generated from a
    fixed seed: the same tree — node ids, uids, labels — on every call,
    which is what lets the substrate build manifest fingerprint it.

    Cache-identity contract: same seed ⇒ the *same object*, not a fresh
    copy.  That is sound because the tree is a pure function of the seed
    and consumers treat hierarchies as immutable (nothing on the query
    path mutates one; the substrate digest pins the content).  Callers
    that genuinely need a private mutable tree must construct their own
    :class:`HierarchyGenerator` instead of mutating the shared instance.
    """
    hierarchy = _MESH_2008_CACHE.get(seed)
    if hierarchy is None:
        hierarchy = HierarchyGenerator(HierarchyShape.mesh_2008(), seed=seed).generate()
        _MESH_2008_CACHE[seed] = hierarchy
    return hierarchy


def generate_hierarchy(
    target_size: int = 5000,
    seed: int = 0,
    root_fanout: int = 24,
    branching: float = 4.0,
    max_depth: int = 11,
) -> ConceptHierarchy:
    """Convenience wrapper around :class:`HierarchyGenerator`."""
    shape = HierarchyShape(
        target_size=target_size,
        root_fanout=root_fanout,
        branching=branching,
        max_depth=max_depth,
    )
    return HierarchyGenerator(shape, seed=seed).generate()
