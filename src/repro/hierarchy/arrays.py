"""Positional array form of a concept hierarchy (the cold-path substrate).

A :class:`ConceptHierarchy` is a Python object graph — per-node lists and
dicts — which is the right shape for incremental construction but the
wrong shape for a cold query: regenerating the paper-scale 48k-concept
tree costs ~190ms before the first navigation tree can even be built.

:class:`HierarchyArrays` is the same tree flattened into a handful of
numpy arrays in *hierarchy preorder* encoding:

* ``parents``       int32[C]    parent node id, -1 for the root
* ``child_offsets`` int64[C+1]  CSR offsets into ``children``
* ``children``      int32[C-1]  child ids grouped by parent, ascending
* ``depths``        int32[C]    edge distance from the root
* ``preorder``      int32[C]    node ids in depth-first preorder
* ``positions``     int32[C]    preorder position of each node id
* ``subtree_sizes`` int64[C]    node count of each subtree
* ``label_blob`` / ``label_offsets`` and ``uid_blob`` / ``uid_offsets``
  — UTF-8 string pools for labels and uids

The preorder encoding gives every subtree a contiguous interval
``[positions[n], positions[n] + subtree_sizes[n])``, which is what lets
the navigation-tree embedding run as whole-array passes instead of a
per-node traversal (DESIGN.md §15).

Arrays persist as ``hier_*.npy`` files inside the substrate directory
and are memory-mapped on open, so cold hierarchy access is a file open.
:class:`ArrayBackedHierarchy` serves the full :class:`ConceptHierarchy`
API directly from the arrays, materializing the legacy list/dict form
lazily only if a caller mutates the tree or touches a slow-path helper.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.hierarchy.concept import ConceptHierarchy

__all__ = ["HierarchyArrays", "ArrayBackedHierarchy", "HIERARCHY_ARRAY_FILES"]

#: Files a persisted hierarchy-array set occupies inside a substrate
#: directory, in the order they are hashed into the manifest.
HIERARCHY_ARRAY_FILES: Tuple[str, ...] = (
    "hier_parents.npy",
    "hier_child_offsets.npy",
    "hier_children.npy",
    "hier_depths.npy",
    "hier_preorder.npy",
    "hier_positions.npy",
    "hier_subtree_sizes.npy",
    "hier_label_blob.npy",
    "hier_label_offsets.npy",
    "hier_uid_blob.npy",
    "hier_uid_offsets.npy",
)

# Attribute order mirrors HIERARCHY_ARRAY_FILES (strip "hier_"/".npy").
_FIELDS: Tuple[str, ...] = tuple(
    name[len("hier_") : -len(".npy")] for name in HIERARCHY_ARRAY_FILES
)


def _encode_strings(values: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Pack strings into a UTF-8 byte pool + int64 offsets array."""
    encoded = [value.encode("utf-8") for value in values]
    lengths = np.fromiter(
        (len(chunk) for chunk in encoded), dtype=np.int64, count=len(encoded)
    )
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    return blob, offsets


def _decode_strings(blob: np.ndarray, offsets: np.ndarray) -> List[str]:
    """Inverse of :func:`_encode_strings` (slow path, full materialization)."""
    raw = blob.tobytes()
    bounds = offsets.tolist()
    return [
        raw[bounds[i] : bounds[i + 1]].decode("utf-8")
        for i in range(len(bounds) - 1)
    ]


class HierarchyArrays:
    """Immutable positional-array encoding of one concept hierarchy.

    Instances come from :meth:`from_hierarchy` (offline build) or
    :meth:`load` (mmap open of a substrate directory).  All arrays are
    frozen; the structural arrays are int32/int64 in the layouts listed
    in the module docstring.
    """

    __slots__ = tuple(_FIELDS) + ("_content_key",)

    def __init__(self, **arrays: np.ndarray):
        for name in _FIELDS:
            value = arrays[name]
            if hasattr(value, "setflags"):
                try:
                    value.setflags(write=False)
                except ValueError:
                    pass  # mmap views opened read-only already are
            setattr(self, name, value)
        self._content_key: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_hierarchy(cls, hierarchy: ConceptHierarchy) -> "HierarchyArrays":
        """Flatten ``hierarchy`` into its positional-array form.

        Preorder positions and subtree sizes are computed with
        level-synchronous array passes (one pass per tree level, ~11 for
        MeSH) rather than a per-node traversal.
        """
        size = len(hierarchy)
        parents = np.fromiter(
            (hierarchy.parent(node) for node in range(size)),
            dtype=np.int32,
            count=size,
        )
        depths = np.fromiter(
            (hierarchy.depth(node) for node in range(size)),
            dtype=np.int32,
            count=size,
        )
        labels = [hierarchy.label(node) for node in range(size)]
        uids = [hierarchy.uid(node) for node in range(size)]
        return cls._from_parent_arrays(parents, depths, labels, uids)

    @classmethod
    def _from_parent_arrays(
        cls,
        parents: np.ndarray,
        depths: np.ndarray,
        labels: Sequence[str],
        uids: Sequence[str],
    ) -> "HierarchyArrays":
        size = len(parents)
        # Children CSR: node ids are assigned in insertion order, so a
        # stable sort of 1..C-1 by parent groups each sibling list in
        # ascending id order — exactly ConceptHierarchy._children.
        nonroot = np.arange(1, size, dtype=np.int32)
        counts = np.bincount(parents[1:].astype(np.int64), minlength=size)
        child_offsets = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(counts, out=child_offsets[1:])
        order = np.argsort(parents[1:], kind="stable")
        children = nonroot[order]

        # Group nodes by depth once; every later pass is one slice per level.
        depth_order = np.argsort(depths, kind="stable")
        sorted_depths = depths[depth_order]
        max_depth = int(sorted_depths[-1]) if size else 0
        level_bounds = np.searchsorted(
            sorted_depths, np.arange(max_depth + 2), side="left"
        )

        # Subtree sizes bottom-up: each level adds its sizes into parents.
        subtree_sizes = np.ones(size, dtype=np.int64)
        for depth in range(max_depth, 0, -1):
            level = depth_order[level_bounds[depth] : level_bounds[depth + 1]]
            gathered = np.bincount(
                parents[level].astype(np.int64),
                weights=subtree_sizes[level],
                minlength=size,
            )
            subtree_sizes += gathered.astype(np.int64)

        # Preorder positions top-down.  A node's position is its parent's
        # plus one plus the subtree sizes of its earlier siblings; the
        # sibling prefix sums come from one segmented cumsum over the CSR.
        child_sizes = subtree_sizes[children]
        inclusive = np.cumsum(child_sizes)
        # Exclusive prefix with a trailing total as sentinel, so offsets of
        # empty sibling segments at the end of the CSR stay in bounds.
        exclusive = np.concatenate(([0], inclusive))
        segment_base = np.repeat(
            exclusive[child_offsets[:-1]], np.diff(child_offsets)
        )
        sibling_prefix = exclusive[: len(children)] - segment_base

        positions = np.zeros(size, dtype=np.int64)
        offset = np.zeros(size, dtype=np.int64)
        offset[children] = 1 + sibling_prefix
        positions[:] = offset
        for depth in range(1, max_depth + 1):
            level = depth_order[level_bounds[depth] : level_bounds[depth + 1]]
            positions[level] += positions[parents[level]]
        preorder = np.empty(size, dtype=np.int32)
        preorder[positions] = np.arange(size, dtype=np.int32)

        label_blob, label_offsets = _encode_strings(labels)
        uid_blob, uid_offsets = _encode_strings(uids)
        return cls(
            parents=parents.astype(np.int32, copy=False),
            child_offsets=child_offsets,
            children=children.astype(np.int32, copy=False),
            depths=depths.astype(np.int32, copy=False),
            preorder=preorder,
            positions=positions.astype(np.int32, copy=False),
            subtree_sizes=subtree_sizes,
            label_blob=label_blob,
            label_offsets=label_offsets,
            uid_blob=uid_blob,
            uid_offsets=uid_offsets,
        )

    # ------------------------------------------------------------------
    # Identity and persistence
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.parents)

    @property
    def content_key(self) -> str:
        """40-hex sha-256 over every array; identical trees hash equal."""
        if self._content_key is None:
            digest = hashlib.sha256()
            for name in _FIELDS:
                array = getattr(self, name)
                digest.update(name.encode("ascii"))
                digest.update(str(array.dtype).encode("ascii"))
                digest.update(np.ascontiguousarray(array).tobytes())
            self._content_key = digest.hexdigest()[:40]
        return self._content_key

    def save(self, directory: str) -> List[str]:
        """Write the ``hier_*.npy`` files into ``directory``.

        Returns the file names written, in :data:`HIERARCHY_ARRAY_FILES`
        order, for manifest registration.
        """
        for file_name, field in zip(HIERARCHY_ARRAY_FILES, _FIELDS):
            np.save(
                os.path.join(directory, file_name),
                np.ascontiguousarray(getattr(self, field)),
                allow_pickle=False,
            )
        return list(HIERARCHY_ARRAY_FILES)

    @classmethod
    def load(cls, directory: str, mmap: bool = True) -> "HierarchyArrays":
        """Open persisted arrays; ``mmap=True`` maps them copy-free."""
        mode = "r" if mmap else None
        arrays = {
            field: np.load(
                os.path.join(directory, file_name),
                mmap_mode=mode,
                allow_pickle=False,
            )
            for file_name, field in zip(HIERARCHY_ARRAY_FILES, _FIELDS)
        }
        return cls(**arrays)

    @classmethod
    def present(cls, directory: str) -> bool:
        """True when ``directory`` holds a complete hier_*.npy set."""
        return all(
            os.path.exists(os.path.join(directory, name))
            for name in HIERARCHY_ARRAY_FILES
        )


# Base-class storage attributes materialized on demand by
# ArrayBackedHierarchy.__getattr__ when a slow-path helper needs them.
_LEGACY_ATTRS = frozenset(
    {
        "_labels",
        "_uids",
        "_parents",
        "_children",
        "_depths",
        "_uid_index",
        "_label_index",
    }
)


class ArrayBackedHierarchy(ConceptHierarchy):
    """A :class:`ConceptHierarchy` served from :class:`HierarchyArrays`.

    Hot accessors (``parent``, ``children``, ``depth``, ``label``,
    ``uid``, ``iter_dfs``, ``subtree_size``, ``is_ancestor``) read the
    arrays directly.  The legacy list/dict representation is built
    lazily the first time a slow-path helper (``tree_number``,
    ``by_label``, …) or a mutation needs it; after :meth:`add_child` or
    :meth:`relabel` every accessor falls back to the base class so the
    mutated tree stays authoritative and the stale arrays are dropped.
    """

    def __init__(self, arrays: HierarchyArrays, path: Optional[str] = None):
        # NOTE: deliberately does not call super().__init__ — the legacy
        # list attributes are absent until __getattr__ materializes them.
        self._arr = arrays
        self._path = path
        self._mutated = False
        self._arrays_cache = arrays

    @classmethod
    def open(cls, directory: str, mmap: bool = True) -> "ArrayBackedHierarchy":  # repro: ignore[shadowed-builtin]
        """Open a persisted hierarchy from its substrate directory."""
        return cls(HierarchyArrays.load(directory, mmap=mmap), path=directory)

    # ------------------------------------------------------------------
    # Lazy materialization of the legacy representation
    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        if name in _LEGACY_ATTRS:
            self._materialize()
            return self.__dict__[name]
        raise AttributeError(name)

    def _materialize(self) -> None:
        if "_labels" in self.__dict__:
            return
        arr = self._arr
        size = len(arr)
        labels = _decode_strings(arr.label_blob, arr.label_offsets)
        uids = _decode_strings(arr.uid_blob, arr.uid_offsets)
        offsets = arr.child_offsets.tolist()
        child_list = arr.children.tolist()
        self._labels = labels
        self._uids = uids
        self._parents = arr.parents.tolist()
        self._children = [
            child_list[offsets[node] : offsets[node + 1]] for node in range(size)
        ]
        self._depths = arr.depths.tolist()
        self._uid_index = {uid: node for node, uid in enumerate(uids)}
        label_index = {}
        for node, label in enumerate(labels):
            label_index.setdefault(label, node)
        self._label_index = label_index

    # ------------------------------------------------------------------
    # Mutation drops the array fast path
    # ------------------------------------------------------------------
    def add_child(self, parent: int, label: str, uid: Optional[str] = None) -> int:
        self._materialize()
        self._mutated = True
        self._arrays_cache = None
        return super().add_child(parent, label, uid=uid)

    def relabel(self, node: int, label: str) -> None:
        self._materialize()
        self._mutated = True
        self._arrays_cache = None
        super().relabel(node, label)

    # ------------------------------------------------------------------
    # Array fast paths for the hot accessors
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self):
            raise IndexError("node id %r out of range" % (node,))

    def __len__(self) -> int:
        if self._mutated:
            return len(self._labels)
        return len(self._arr)

    def label(self, node: int) -> str:
        if self._mutated:
            return super().label(node)
        self._check_node(node)
        offsets = self._arr.label_offsets
        chunk = self._arr.label_blob[offsets[node] : offsets[node + 1]]
        return bytes(chunk).decode("utf-8")

    def uid(self, node: int) -> str:
        if self._mutated:
            return super().uid(node)
        self._check_node(node)
        offsets = self._arr.uid_offsets
        chunk = self._arr.uid_blob[offsets[node] : offsets[node + 1]]
        return bytes(chunk).decode("utf-8")

    def parent(self, node: int) -> int:
        if self._mutated:
            return super().parent(node)
        self._check_node(node)
        return int(self._arr.parents[node])

    def children(self, node: int) -> Sequence[int]:
        if self._mutated:
            return super().children(node)
        self._check_node(node)
        offsets = self._arr.child_offsets
        return tuple(self._arr.children[offsets[node] : offsets[node + 1]].tolist())

    def depth(self, node: int) -> int:
        if self._mutated:
            return super().depth(node)
        self._check_node(node)
        return int(self._arr.depths[node])

    def is_leaf(self, node: int) -> bool:
        if self._mutated:
            return super().is_leaf(node)
        self._check_node(node)
        offsets = self._arr.child_offsets
        return int(offsets[node]) == int(offsets[node + 1])

    def iter_dfs(self, start: int = 0) -> Iterator[int]:
        if self._mutated:
            return super().iter_dfs(start)
        self._check_node(start)
        arr = self._arr
        begin = int(arr.positions[start])
        end = begin + int(arr.subtree_sizes[start])
        return iter(arr.preorder[begin:end].tolist())

    def subtree_size(self, node: int) -> int:
        if self._mutated:
            return super().subtree_size(node)
        self._check_node(node)
        return int(self._arr.subtree_sizes[node])

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        if self._mutated:
            return super().is_ancestor(ancestor, node)
        self._check_node(ancestor)
        self._check_node(node)
        begin = int(self._arr.positions[ancestor])
        end = begin + int(self._arr.subtree_sizes[ancestor])
        return begin <= int(self._arr.positions[node]) < end

    def path_to_root(self, node: int) -> List[int]:
        if self._mutated:
            return super().path_to_root(node)
        self._check_node(node)
        parents = self._arr.parents
        path = [node]
        while path[-1] != 0:
            path.append(int(parents[path[-1]]))
        return path

    def height(self, start: int = 0) -> int:
        if self._mutated:
            return super().height(start)
        self._check_node(start)
        arr = self._arr
        begin = int(arr.positions[start])
        end = begin + int(arr.subtree_sizes[start])
        interval = arr.preorder[begin:end]
        return int(arr.depths[interval].max()) - int(arr.depths[start])

    # ------------------------------------------------------------------
    def arrays(self) -> HierarchyArrays:
        if self._mutated:
            return super().arrays()
        return self._arr

    def __reduce__(self):
        # Directory-backed instances reopen by path on the receiving end
        # (cheap — the arrays mmap back in); mutated or in-memory ones
        # fall back to the record stream, which rebuilds an equivalent
        # plain ConceptHierarchy.
        if self._path is not None and not self._mutated:
            return (ArrayBackedHierarchy.open, (self._path,))
        return (ConceptHierarchy.from_records, (self.to_records(),))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "ArrayBackedHierarchy(%d nodes)" % len(self)
