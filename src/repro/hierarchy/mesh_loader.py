"""Parser/writer for the NLM MeSH descriptor ASCII format.

The paper populates its database from the MeSH 2008 distribution, which
NLM ships as ASCII descriptor records (``d2008.bin``)::

    *NEWRECORD
    RECTYPE = D
    MH = Apoptosis
    MN = G04.335.122
    UI = D017209

A descriptor may carry several ``MN`` tree numbers (MeSH is a polyhierarchy
presented as a forest of trees); following the paper's tree model, each
tree number becomes its own concept node carrying the descriptor's label.
Intermediate tree numbers that never appear as records (rare, but present
in real MeSH) are materialized as placeholder concepts so the result is a
proper tree.

This module lets the reproduction ingest a real MeSH dump when one is
available, and round-trips the synthetic hierarchies into the same format
for inspection with standard MeSH tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from repro.hierarchy.concept import ConceptHierarchy

__all__ = [
    "DescriptorRecord",
    "parse_descriptor_records",
    "hierarchy_from_records",
    "load_mesh_ascii",
    "dump_mesh_ascii",
]

_RECORD_MARKER = "*NEWRECORD"


@dataclass
class DescriptorRecord:
    """One MeSH descriptor: heading, unique id, and its tree numbers."""

    heading: str
    unique_id: str
    tree_numbers: List[str] = field(default_factory=list)


def parse_descriptor_records(lines: Iterable[str]) -> List[DescriptorRecord]:
    """Parse MeSH ASCII descriptor records from an iterable of lines.

    Only the fields the hierarchy needs are read (``MH``, ``MN``, ``UI``);
    all other fields are ignored, as are record types other than
    descriptors (``RECTYPE = D``).

    Raises:
        ValueError: on a record missing its heading or unique id.
    """
    records: List[DescriptorRecord] = []
    current: Optional[Dict[str, List[str]]] = None

    def flush() -> None:
        if current is None:
            return
        rectype = current.get("RECTYPE", ["D"])[0]
        if rectype != "D":
            return
        headings = current.get("MH")
        uids = current.get("UI")
        if not headings:
            raise ValueError("descriptor record missing MH field")
        if not uids:
            raise ValueError("descriptor record %r missing UI field" % headings[0])
        records.append(
            DescriptorRecord(
                heading=headings[0],
                unique_id=uids[0],
                tree_numbers=list(current.get("MN", [])),
            )
        )

    for raw_line in lines:
        line = raw_line.rstrip("\n")
        if line.strip() == _RECORD_MARKER:
            flush()
            current = {}
            continue
        if current is None or "=" not in line:
            continue
        key, _, value = line.partition("=")
        current.setdefault(key.strip(), []).append(value.strip())
    flush()
    return records


def hierarchy_from_records(
    records: Iterable[DescriptorRecord], root_label: str = "MeSH"
) -> ConceptHierarchy:
    """Build a concept hierarchy from descriptor records.

    Each tree number becomes one concept node; a descriptor with k tree
    numbers contributes k nodes sharing the heading (uids get a positional
    suffix past the first).  Missing intermediate tree numbers are created
    as placeholders labeled with their tree number.
    """
    by_tree_number: Dict[str, Tuple[str, str]] = {}
    for record in records:
        for position, tree_number in enumerate(record.tree_numbers):
            if not tree_number:
                continue
            if tree_number in by_tree_number:
                raise ValueError("duplicate tree number %r" % tree_number)
            uid = record.unique_id if position == 0 else "%s.%d" % (
                record.unique_id,
                position,
            )
            by_tree_number[tree_number] = (record.heading, uid)

    hierarchy = ConceptHierarchy(root_label=root_label)
    node_of: Dict[str, int] = {"": hierarchy.root}

    def ensure(tree_number: str) -> int:
        existing = node_of.get(tree_number)
        if existing is not None:
            return existing
        parent_number = _parent_tree_number(tree_number)
        parent = ensure(parent_number)
        heading, uid = by_tree_number.get(
            tree_number, ("[%s]" % tree_number, "PLACEHOLDER-%s" % tree_number)
        )
        node = hierarchy.add_child(parent, heading, uid=uid)
        node_of[tree_number] = node
        return node

    for tree_number in sorted(by_tree_number):
        ensure(tree_number)
    return hierarchy


def load_mesh_ascii(handle: TextIO, root_label: str = "MeSH") -> ConceptHierarchy:
    """Parse an open MeSH ASCII file into a concept hierarchy."""
    return hierarchy_from_records(parse_descriptor_records(handle), root_label)


def dump_mesh_ascii(hierarchy: ConceptHierarchy, handle: TextIO) -> int:
    """Write a hierarchy in MeSH descriptor ASCII format.

    Every non-root concept becomes one descriptor record with a single
    ``MN`` (its hierarchy tree number, letter-prefixed to look like MeSH).
    Returns the number of records written.
    """
    written = 0
    for node in hierarchy.iter_dfs():
        if node == hierarchy.root:
            continue
        handle.write("%s\n" % _RECORD_MARKER)
        handle.write("RECTYPE = D\n")
        handle.write("MH = %s\n" % hierarchy.label(node))
        handle.write("MN = %s\n" % _letter_tree_number(hierarchy, node))
        handle.write("UI = %s\n" % hierarchy.uid(node))
        handle.write("\n")
        written += 1
    return written


# ---------------------------------------------------------------------------
def _parent_tree_number(tree_number: str) -> str:
    """Parent tree number in MeSH notation.

    ``"G04.335.122"`` → ``"G04.335"``; top-level categories like ``"G04"``
    parent to the root (``""``).
    """
    if "." not in tree_number:
        return ""
    return tree_number.rsplit(".", 1)[0]


def _letter_tree_number(hierarchy: ConceptHierarchy, node: int) -> str:
    """MeSH-style tree number: letter-prefixed top level, dotted below.

    The top-level category at position i becomes ``A01``, ``A02``, ...
    (wrapping through the alphabet), deeper levels keep their 3-digit
    sibling positions.
    """
    path = list(reversed(hierarchy.path_to_root(node)))  # root .. node
    top = path[1]
    siblings = hierarchy.children(hierarchy.root)
    index = siblings.index(top)
    letter = chr(ord("A") + (index % 26))
    parts = ["%s%02d" % (letter, index + 1)]
    for ancestor, child in zip(path[1:], path[2:]):
        position = hierarchy.children(ancestor).index(child) + 1
        parts.append("%03d" % position)
    return ".".join(parts)
