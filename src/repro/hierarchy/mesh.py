"""MeSH specifics: tree-number utilities and an embedded real fragment.

The real MeSH 2008 hierarchy (~48k descriptors) is not redistributable here,
so this module provides two things instead:

* tree-number parsing/formatting helpers compatible with the dotted
  identifiers MeSH uses (``"G04.335.122"``), which BioNav's online phase
  relies on to place citations in the hierarchy, and
* :func:`paper_fragment`, a curated sub-hierarchy embedding the actual
  concept labels appearing in the paper's figures (Fig. 1–5), used by the
  worked examples and the unit tests so that the reproduced navigations read
  exactly like the paper's.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.hierarchy.concept import ConceptHierarchy

__all__ = [
    "parse_tree_number",
    "format_tree_number",
    "tree_number_parent",
    "is_tree_number_ancestor",
    "paper_fragment",
    "PAPER_FRAGMENT_EDGES",
]


def parse_tree_number(tree_number: str) -> Tuple[int, ...]:
    """Split a dotted MeSH tree number into integer components.

    The empty string (the root) parses to the empty tuple.

    Raises:
        ValueError: when a component is not a positive integer.
    """
    if tree_number == "":
        return ()
    parts = tree_number.split(".")
    values = []
    for part in parts:
        if not part.isdigit():
            raise ValueError("bad tree number component %r in %r" % (part, tree_number))
        value = int(part)
        if value <= 0:
            raise ValueError("tree number components are 1-based: %r" % tree_number)
        values.append(value)
    return tuple(values)


def format_tree_number(components: Sequence[int]) -> str:
    """Inverse of :func:`parse_tree_number` (three-digit zero padding)."""
    return ".".join("%03d" % c for c in components)


def tree_number_parent(tree_number: str) -> str:
    """Tree number of the parent concept ('' for depth-1 concepts).

    Raises:
        ValueError: when called on the root's empty tree number.
    """
    components = parse_tree_number(tree_number)
    if not components:
        raise ValueError("the root has no parent")
    return format_tree_number(components[:-1])


def is_tree_number_ancestor(ancestor: str, descendant: str) -> bool:
    """True when ``ancestor``'s tree number is a prefix of ``descendant``'s.

    Every tree number is an ancestor of itself; the root ('') is an
    ancestor of everything.
    """
    a = parse_tree_number(ancestor)
    d = parse_tree_number(descendant)
    return d[: len(a)] == a


# ---------------------------------------------------------------------------
# Embedded fragment with the paper's actual concepts
# ---------------------------------------------------------------------------

# (label, parent label) edges; parents always precede children.  The root is
# "MeSH".  Labels are taken from the paper's Figures 1-5 plus the Table I
# target concepts, arranged per the 2008 MeSH tree.
PAPER_FRAGMENT_EDGES: List[Tuple[str, str]] = [
    # --- Amino Acids, Peptides, and Proteins branch (Fig. 1) ---
    ("Amino Acids, Peptides, and Proteins", "MeSH"),
    ("Proteins", "Amino Acids, Peptides, and Proteins"),
    ("Nucleoproteins", "Proteins"),
    ("Chromatin", "Nucleoproteins"),
    ("Nucleosomes", "Chromatin"),
    ("Heterochromatin", "Chromatin"),
    ("Euchromatin", "Chromatin"),
    ("Histones", "Nucleoproteins"),
    ("Transcription Factors", "Proteins"),
    ("Membrane Proteins", "Proteins"),
    ("Membrane Transport Proteins", "Membrane Proteins"),
    ("GABA Plasma Membrane Transport Proteins", "Membrane Transport Proteins"),
    ("Carrier Proteins", "Proteins"),
    ("Intercellular Signaling Peptides and Proteins", "Proteins"),
    ("Follistatin", "Intercellular Signaling Peptides and Proteins"),
    ("Peptide Hormones", "Amino Acids, Peptides, and Proteins"),
    ("Follicle Stimulating Hormone", "Peptide Hormones"),
    # --- Biological Phenomena branch (Figs. 2-5) ---
    ("Biological Phenomena, Cell Phenomena, and Immunity", "MeSH"),
    ("Cell Physiology", "Biological Phenomena, Cell Phenomena, and Immunity"),
    ("Cell Death", "Cell Physiology"),
    ("Autophagy", "Cell Death"),
    ("Apoptosis", "Cell Death"),
    ("Necrosis", "Cell Death"),
    ("Cell Growth Processes", "Cell Physiology"),
    ("Cell Proliferation", "Cell Growth Processes"),
    ("Cell Division", "Cell Proliferation"),
    ("Cell Differentiation", "Cell Physiology"),
    ("Immunity", "Biological Phenomena, Cell Phenomena, and Immunity"),
    ("Immunity, Innate", "Immunity"),
    ("Adaptation, Physiological", "Biological Phenomena, Cell Phenomena, and Immunity"),
    # --- Genetic Processes branch (Fig. 1) ---
    ("Genetic Processes", "MeSH"),
    ("Gene Expression", "Genetic Processes"),
    ("Transcription, Genetic", "Gene Expression"),
    ("Reverse Transcription", "Transcription, Genetic"),
    ("Gene Expression Regulation", "Genetic Processes"),
    ("Polymorphism, Single Nucleotide", "Genetic Processes"),
    # --- Chemicals and Drugs (Table I targets) ---
    ("Chemicals and Drugs", "MeSH"),
    ("Nicotinic Agonists", "Chemicals and Drugs"),
    ("Phosphodiesterase Inhibitors", "Chemicals and Drugs"),
    ("Perchloric Acid", "Chemicals and Drugs"),
    ("Inorganic Chemicals", "Chemicals and Drugs"),
    # --- Organisms (Table I targets) ---
    ("Organisms", "MeSH"),
    ("Animals", "Organisms"),
    ("Mice", "Animals"),
    ("Mice, Transgenic", "Mice"),
    ("Plants", "Organisms"),
    ("Plants, Genetically Modified", "Plants"),
    # --- Phenomena and Processes (Table I targets) ---
    ("Phenomena and Processes", "MeSH"),
    ("Metabolic Phenomena", "Phenomena and Processes"),
    ("Substrate Specificity", "Metabolic Phenomena"),
    ("Chemical Phenomena", "Phenomena and Processes"),
]


def paper_fragment() -> ConceptHierarchy:
    """Build the embedded MeSH fragment used by examples and tests.

    Returns a :class:`ConceptHierarchy` whose labels match the paper's
    figures; concept uids are autogenerated.
    """
    hierarchy = ConceptHierarchy(root_label="MeSH")
    ids: Dict[str, int] = {"MeSH": hierarchy.root}
    for label, parent_label in PAPER_FRAGMENT_EDGES:
        if parent_label not in ids:
            raise ValueError("fragment edge references unknown parent %r" % parent_label)
        if label in ids:
            raise ValueError("duplicate fragment label %r" % label)
        ids[label] = hierarchy.add_child(ids[parent_label], label)
    return hierarchy
