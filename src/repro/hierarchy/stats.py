"""Hierarchy shape statistics.

DESIGN.md claims the synthetic hierarchies reproduce the shape properties
of real MeSH that the algorithms depend on — bushy upper levels, ~11
levels of depth, long-tailed branching.  This module computes those
statistics so the claim is checkable (and checked, in the generator tests
and workload builder) rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hierarchy.concept import ConceptHierarchy

__all__ = ["ShapeStats", "shape_stats", "level_widths", "branching_histogram"]


@dataclass(frozen=True)
class ShapeStats:
    """Summary shape statistics of one hierarchy.

    Attributes:
        size: number of concepts (root included).
        height: deepest level.
        root_fanout: children of the root.
        max_width: widest level's node count.
        widest_level: depth of the widest level.
        leaf_fraction: share of concepts that are leaves.
        mean_branching: mean child count over internal (non-leaf) nodes.
        max_branching: largest child count of any node.
    """

    size: int
    height: int
    root_fanout: int
    max_width: int
    widest_level: int
    leaf_fraction: float
    mean_branching: float
    max_branching: int


def level_widths(hierarchy: ConceptHierarchy) -> Dict[int, int]:
    """Node count per depth level."""
    widths: Dict[int, int] = {}
    for node in hierarchy.iter_dfs():
        depth = hierarchy.depth(node)
        widths[depth] = widths.get(depth, 0) + 1
    return widths


def branching_histogram(hierarchy: ConceptHierarchy) -> Dict[int, int]:
    """Histogram of child counts over all nodes (leaves included as 0)."""
    histogram: Dict[int, int] = {}
    for node in hierarchy.iter_dfs():
        fanout = len(hierarchy.children(node))
        histogram[fanout] = histogram.get(fanout, 0) + 1
    return histogram


def shape_stats(hierarchy: ConceptHierarchy) -> ShapeStats:
    """Compute the full shape summary for one hierarchy."""
    widths = level_widths(hierarchy)
    widest_level, max_width = max(widths.items(), key=lambda item: (item[1], -item[0]))
    leaves = 0
    internal_children: List[int] = []
    max_branching = 0
    for node in hierarchy.iter_dfs():
        fanout = len(hierarchy.children(node))
        max_branching = max(max_branching, fanout)
        if fanout == 0:
            leaves += 1
        else:
            internal_children.append(fanout)
    size = len(hierarchy)
    return ShapeStats(
        size=size,
        height=max(widths),
        root_fanout=len(hierarchy.children(hierarchy.root)),
        max_width=max_width,
        widest_level=widest_level,
        leaf_fraction=leaves / size if size else 0.0,
        mean_branching=(
            sum(internal_children) / len(internal_children)
            if internal_children
            else 0.0
        ),
        max_branching=max_branching,
    )
