"""Consistent hashing: pin keys to workers with minimal re-mapping.

The router must send every operation of a session to the worker that
holds it, and should keep sending sessions of one shard to the same
worker so its caches stay warm.  A modulo hash re-maps almost every key
when the worker count changes; a *consistent-hash ring* re-maps only the
keys whose arc a new member claims — on average ``1/(N+1)`` of them when
growing ``N → N+1`` members, and exactly the crashed member's keys when
a worker is replaced under the same name.

Each member is hashed onto the ring at ``replicas`` positions (virtual
nodes), which evens out arc lengths: with the default 128 virtual nodes
per member, per-member load at 1k keys stays within a few percent of
uniform (property-tested in ``tests/test_hashring.py``).  Positions come
from sha-256, so placement is deterministic across processes and runs —
a requirement, since the router may be rebuilt while session ids minted
against the old ring are still live.

The ring is a plain data structure with no internal locking: the router
mutates it only while holding its own lock (worker membership changes
are rare — deliberate resizes; crash respawns reuse the dead member's
name and leave the ring untouched).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

__all__ = ["ConsistentHashRing"]

#: Virtual nodes per member unless the caller says otherwise.
DEFAULT_REPLICAS = 128


def _position(token: str) -> int:
    """Ring position of ``token``: the first 8 bytes of its sha-256."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """A deterministic consistent-hash ring over named members.

    Args:
        members: initial member names (order-insensitive; placement
            depends only on the set of names).
        replicas: virtual nodes per member.  More virtual nodes mean
            more even load at the price of a larger sorted ring; 128 is
            comfortable for tens of workers.
    """

    def __init__(self, members: Sequence[str] = (), replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._ring: List[Tuple[int, str]] = []
        self._positions: List[int] = []
        self._members: Dict[str, List[int]] = {}
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add(self, member: str) -> None:
        """Insert ``member`` at its ``replicas`` ring positions.

        Raises:
            ValueError: the member is already on the ring.
        """
        if member in self._members:
            raise ValueError("member %r already on the ring" % member)
        positions = []
        for replica in range(self.replicas):
            position = _position("%s#%d" % (member, replica))
            index = bisect.bisect(self._positions, position)
            self._positions.insert(index, position)
            self._ring.insert(index, (position, member))
            positions.append(position)
        self._members[member] = positions

    def remove(self, member: str) -> None:
        """Remove ``member``; its arcs fall to the next members clockwise.

        Raises:
            KeyError: the member is not on the ring.
        """
        del self._members[member]
        self._ring = [(pos, name) for pos, name in self._ring if name != member]
        self._positions = [pos for pos, _ in self._ring]

    @property
    def members(self) -> Tuple[str, ...]:
        """The member names currently on the ring, sorted."""
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> str:
        """The member owning ``key``: first virtual node clockwise.

        Raises:
            LookupError: the ring has no members.
        """
        if not self._ring:
            raise LookupError("consistent-hash ring is empty")
        position = _position(key)
        index = bisect.bisect(self._positions, position)
        if index == len(self._ring):  # wrap past the highest position
            index = 0
        return self._ring[index][1]

    def assignments(self, keys: Sequence[str]) -> Dict[str, str]:
        """key → owning member, for a batch of keys."""
        return {key: self.lookup(key) for key in keys}

    def snapshot(self) -> Dict[str, object]:
        """Membership and sizing summary for the merged stats surface."""
        return {
            "members": list(self.members),
            "replicas": self.replicas,
            "virtual_nodes": len(self._ring),
        }
