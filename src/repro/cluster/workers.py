"""Worker lifecycle: process-per-shard serving with supervised respawn.

Each worker is one forked process hosting a full
:class:`~repro.serving.runtime.ServingRuntime` (its own GIL, thread
pool, session registry, and L1 stage caches) wired to the shared
:class:`~repro.cluster.stagecache.ClusterStageCache` as its L2.  The
parent-side :class:`WorkerSupervisor` owns the fleet: it spawns
workers, relays requests over per-worker queues, watches heartbeats,
and respawns crashed or wedged workers in place.

Wire protocol (plain picklable tuples over ``multiprocessing`` queues):

* request — ``("op", req_id, generation, name, kwargs)`` or
  ``("stop",)``;
* response — ``("res", req_id, outcome)`` where *outcome* is
  ``("ok", value)`` or ``("err", code, details)``;
* heartbeat — ``("hb", index, generation, payload)`` on the shared
  response queue, every ``heartbeat_interval`` seconds.

Workers never pickle exceptions (their ``args`` round-trip is not
reliable for the serving layer's rich constructors); they return
structured error codes that :meth:`WorkerSupervisor.call` decodes back
into the *same* exception types a local runtime would raise, so the web
layer's error mapping works unchanged against a cluster.

Crash semantics: when a worker dies, its in-flight requests fail with
:class:`WorkerCrashed`, its **generation** is bumped, and a replacement
is forked onto the same request queue under the same ring member name —
so the hash ring never re-maps and other shards' sessions are
untouched.  Requests queued for the dead generation are answered
``worker_restarted`` by the replacement and dropped.  Session ids embed
the generation (see :mod:`repro.cluster.router`), which is what turns
"my worker was respawned" into an honest ``410 Gone``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.bionav import BioNav
from repro.cluster.shardmap import ShardMap
from repro.cluster.stagecache import ClusterStageCache
from repro.serving.admission import DeadlineExceeded, RetryLater
from repro.serving.runtime import ServingRuntime
from repro.serving.sessions import SessionExpired

__all__ = [
    "WorkerCrashed",
    "WorkerUnavailable",
    "worker_main",
    "WorkerHandle",
    "WorkerSupervisor",
]

Outcome = Tuple[Any, ...]


class WorkerCrashed(Exception):
    """The owning worker died (or was restarted) before answering."""


class WorkerUnavailable(Exception):
    """No live worker answered within the supervisor's request timeout."""


# ----------------------------------------------------------------------
# Child-process side
# ----------------------------------------------------------------------
def _execute(
    runtime: ServingRuntime,
    shardmap: ShardMap,
    l2: Optional[ClusterStageCache],
    generation: int,
    op: str,
    kwargs: Dict[str, Any],
) -> Outcome:
    """Run one operation, mapping exceptions to wire error codes."""
    try:
        if op == "search":
            result = runtime.search(kwargs["query"])
            # The navigation tree is an L1 hit after the search; its
            # node set tells the router the query's true shard key.
            nav = runtime.pipeline.nav_tree(kwargs["query"])
            hint = shardmap.shard_key(kwargs["query"], nav.tree.nodes())
            return (
                "ok",
                {"result": result, "shard_hint": hint, "generation": generation},
            )
        if op == "view":
            return ("ok", runtime.view(kwargs["sid"]))
        if op == "expand":
            return ("ok", runtime.expand(kwargs["sid"], kwargs["node"]))
        if op == "results":
            return ("ok", runtime.results(kwargs["sid"], kwargs["node"]))
        if op == "backtrack":
            return ("ok", runtime.backtrack(kwargs["sid"]))
        if op == "health":
            return ("ok", runtime.health())
        if op == "stats":
            stats = dict(runtime.stats())
            stats["l2"] = l2.stats() if l2 is not None else None
            return ("ok", stats)
        if op == "ping":
            return ("ok", "pong")
        return ("err", "bad_request", {"message": "unknown operation %r" % op})
    except SessionExpired as exc:
        return ("err", "session_expired", {"sid": exc.sid})
    except RetryLater as exc:
        return ("err", "overloaded", {"retry_after": exc.retry_after})
    except DeadlineExceeded as exc:
        return ("err", "deadline", {"waited": exc.waited})
    except KeyError as exc:
        return ("err", "not_found", {"message": str(exc)})
    except ValueError as exc:
        return ("err", "bad_request", {"message": str(exc)})
    except Exception as exc:  # pragma: no cover - defensive catch-all
        return ("err", "internal", {"message": repr(exc)})


def worker_main(
    index: int,
    generation: int,
    bionav: BioNav,
    requests: "multiprocessing.Queue",
    responses: "multiprocessing.Queue",
    options: Optional[Dict[str, Any]] = None,
) -> None:
    """Entry point of one worker process (fork start method).

    Args:
        index: the worker's slot in the fleet (stable across respawns).
        generation: incarnation number; requests stamped with an older
            generation are answered ``worker_restarted``.
        bionav: the system to serve (inherited via fork).  Toy corpora
            are shared copy-on-write; a substrate-backed system carries
            an :class:`~repro.substrate.store.MmapStore`, whose
            read-only memmaps mean every worker reads the *same* OS
            page cache — the corpus lives once regardless of fleet
            size.  Each heartbeat reports the store identity so the
            supervisor (and tests) can verify the fleet shares one
            store rather than N private copies.
        requests: this worker's inbound operation queue.
        responses: the fleet-shared outbound queue (results + beats).
        options: ``cache_dir`` (L2 store directory, optional),
            ``heartbeat_interval`` (seconds), plus any
            :class:`~repro.serving.runtime.ServingRuntime` keyword.
    """
    options = dict(options or {})
    heartbeat_interval = float(options.pop("heartbeat_interval", 0.25))
    cache_dir = options.pop("cache_dir", None)
    l2 = ClusterStageCache(cache_dir) if cache_dir else None
    shardmap = ShardMap(bionav.database.hierarchy)
    stop = threading.Event()

    with ServingRuntime(bionav, l2=l2, **options) as runtime:
        store_info = bionav.database.store_info()

        def beat() -> None:
            while not stop.is_set():
                try:
                    responses.put(
                        (
                            "hb",
                            index,
                            generation,
                            {
                                "pid": os.getpid(),
                                "sessions_active": len(runtime.sessions),
                                "store": {
                                    "backend": store_info["backend"],
                                    "path": store_info["path"],
                                    "manifest": store_info["manifest"],
                                },
                            },
                        )
                    )
                except (OSError, ValueError):  # queue torn down mid-exit
                    return
                stop.wait(heartbeat_interval)

        heart = threading.Thread(
            target=beat, name="bionav-heartbeat-%d" % index, daemon=True
        )
        heart.start()
        try:
            while True:
                message = requests.get()
                if message is None or message[0] == "stop":
                    break
                _, req_id, expected, op, kwargs = message
                if expected != generation:
                    # Queued for a dead incarnation: the caller's pending
                    # slot was already failed by the supervisor.
                    responses.put(("res", req_id, ("err", "worker_restarted", {})))
                    continue
                responses.put(
                    ("res", req_id, _execute(runtime, shardmap, l2, generation, op, kwargs))
                )
        finally:
            stop.set()


# ----------------------------------------------------------------------
# Parent-process side
# ----------------------------------------------------------------------
class _Pending:
    """One awaited response: event + outcome + owning worker index."""

    __slots__ = ("event", "outcome", "worker")

    def __init__(self, worker: int):
        self.event = threading.Event()
        self.outcome: Optional[Outcome] = None
        self.worker = worker


class WorkerHandle:
    """Parent-side view of one worker slot (mutated under the supervisor lock).

    Attributes:
        index: fleet slot (stable across respawns).
        name: ring member name, ``w<index>`` (stable across respawns).
        generation: current incarnation (bumped on every respawn).
        process: the live child process.
        requests: the incarnation's inbound queue (fresh per respawn).
        responses: the incarnation's outbound queue (fresh per respawn).
        last_heartbeat: monotonic time of the newest heartbeat.
        heartbeat: the newest heartbeat payload.
        respawns: incarnations after the first.
    """

    __slots__ = (
        "index",
        "name",
        "generation",
        "process",
        "requests",
        "responses",
        "last_heartbeat",
        "heartbeat",
        "respawns",
    )

    def __init__(
        self,
        index: int,
        process: "multiprocessing.process.BaseProcess",
        requests: "multiprocessing.Queue",
        responses: "multiprocessing.Queue",
    ):
        self.index = index
        self.name = "w%d" % index
        self.generation = 0
        self.process = process
        self.requests = requests
        self.responses = responses
        self.last_heartbeat = time.monotonic()
        self.heartbeat: Dict[str, Any] = {}
        self.respawns = 0


class WorkerSupervisor:
    """Spawn, monitor, and talk to a fleet of serving workers.

    Args:
        bionav: the system every worker serves (shared via fork).
        count: fleet size.
        options: per-worker options passed to :func:`worker_main`
            (``cache_dir``, ``heartbeat_interval``, runtime keywords).
        heartbeat_timeout: seconds without a heartbeat before a live
            process is declared wedged and restarted.
        poll_interval: monitor thread's sampling period.
        request_timeout: default cap on one :meth:`call`'s wait.

    Thread safety: every mutation of supervisor state (handles, pending
    requests, counters) happens inside ``self._lock``; queue puts and
    process management run outside it.
    """

    def __init__(
        self,
        bionav: BioNav,
        count: int,
        options: Optional[Dict[str, Any]] = None,
        heartbeat_timeout: float = 30.0,
        poll_interval: float = 0.05,
        request_timeout: float = 60.0,
    ):
        if count < 1:
            raise ValueError("count must be positive")
        self._lock = threading.Lock()
        self._bionav = bionav
        self._options = dict(options or {})
        self._ctx = multiprocessing.get_context("fork")
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self.request_timeout = request_timeout
        self._handles: Dict[int, WorkerHandle] = {}
        self._pending: Dict[int, _Pending] = {}
        self._collectors: List[threading.Thread] = []
        self._next_request = 0
        self._crashes = 0
        self._closed = False
        self._stop = threading.Event()
        for index in range(count):
            requests = self._ctx.Queue()
            responses = self._ctx.Queue()
            process = self._spawn(index, 0, requests, responses)
            self._handles[index] = WorkerHandle(
                index, process, requests, responses
            )
        for index in sorted(self._handles):
            handle = self._handles[index]
            self._start_collector(handle.index, 0, handle.responses)
        self._monitor = threading.Thread(
            target=self._watch, name="bionav-cluster-monitor", daemon=True
        )
        self._monitor.start()

    # ------------------------------------------------------------------
    # Fleet shape
    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """Ring member names, one per slot (stable across respawns)."""
        with self._lock:
            return tuple(self._handles[i].name for i in sorted(self._handles))

    def __len__(self) -> int:
        """Fleet size."""
        with self._lock:
            return len(self._handles)

    def index_of(self, name: str) -> int:
        """Slot index for a ring member name (``w<index>``)."""
        with self._lock:
            for handle in self._handles.values():
                if handle.name == name:
                    return handle.index
        raise KeyError("no worker named %r" % name)

    def generation_of(self, index: int) -> int:
        """Current incarnation of slot ``index``."""
        with self._lock:
            return self._handles[index].generation

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def call(
        self,
        index: int,
        op: str,
        kwargs: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Run ``op`` on worker ``index`` and return its value.

        Raises the same exception the operation would raise in-process
        (``SessionExpired``/``RetryLater``/``DeadlineExceeded``/
        ``KeyError``/``ValueError``), :class:`WorkerCrashed` when the
        worker died mid-request, or :class:`WorkerUnavailable` on
        timeout.
        """
        with self._lock:
            if self._closed:
                raise WorkerUnavailable("supervisor is closed")
            handle = self._handles[index]
            req_id = self._next_request
            self._next_request += 1
            slot = _Pending(index)
            self._pending[req_id] = slot
            requests = handle.requests
            generation = handle.generation
        try:
            requests.put(("op", req_id, generation, op, dict(kwargs or {})))
        except (OSError, ValueError):
            # The queue was retired by a concurrent respawn between our
            # snapshot and the put; the worker of that generation is gone.
            with self._lock:
                self._pending.pop(req_id, None)
            raise WorkerCrashed(
                "worker %d restarted during %s" % (index, op)
            ) from None
        budget = self.request_timeout if timeout is None else timeout
        if not slot.event.wait(budget):
            with self._lock:
                self._pending.pop(req_id, None)
            raise WorkerUnavailable(
                "worker %d did not answer %s within %.1fs" % (index, op, budget)
            )
        outcome = slot.outcome
        assert outcome is not None
        if outcome[0] == "ok":
            return outcome[1]
        if outcome[0] == "crashed":
            raise WorkerCrashed("worker %d died during %s" % (index, op))
        _, code, details = outcome
        self._raise(code, details, index, op)

    @staticmethod
    def _raise(code: str, details: Dict[str, Any], index: int, op: str) -> None:
        """Decode a wire error back into the in-process exception."""
        if code == "session_expired":
            raise SessionExpired(str(details.get("sid", "?")))
        if code == "overloaded":
            raise RetryLater(float(details.get("retry_after", 1.0)))
        if code == "deadline":
            raise DeadlineExceeded(float(details.get("waited", 0.0)))
        if code == "not_found":
            raise KeyError(str(details.get("message", "not found")))
        if code == "bad_request":
            raise ValueError(str(details.get("message", "bad request")))
        if code == "worker_restarted":
            raise WorkerCrashed("worker %d restarted during %s" % (index, op))
        raise WorkerUnavailable(
            "worker %d failed %s: %s" % (index, op, details.get("message", code))
        )

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _start_collector(
        self,
        index: int,
        generation: int,
        responses: "multiprocessing.Queue",
    ) -> None:
        """Start the drain thread for one worker incarnation's responses.

        Each incarnation gets its own response queue and collector:
        queue locks live in shared memory, so a SIGKILLed worker dying
        mid-``put`` would wedge every *other* writer of a shared queue
        — poisoning heartbeats fleet-wide and cascading one crash into
        false respawns of healthy workers.  Per-worker queues confine
        the blast radius to the incarnation that died.
        """
        thread = threading.Thread(
            target=self._collect,
            args=(index, generation, responses),
            name="bionav-cluster-collect-w%d-g%d" % (index, generation),
            daemon=True,
        )
        thread.start()
        self._collectors.append(thread)

    def _collect(
        self,
        index: int,
        generation: int,
        responses: "multiprocessing.Queue",
    ) -> None:
        """Drain one incarnation's responses (results and heartbeats)."""
        while True:
            try:
                message = responses.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set():
                    return
                with self._lock:
                    handle = self._handles.get(index)
                    retired = (
                        handle is None or handle.generation != generation
                    )
                if retired:
                    return  # this incarnation was respawned; queue is dead
                continue
            except (OSError, ValueError):  # queue closed during shutdown
                return
            if message[0] == "hb":
                _, hb_index, hb_generation, payload = message
                with self._lock:
                    handle = self._handles.get(hb_index)
                    if handle is not None and handle.generation == hb_generation:
                        handle.last_heartbeat = time.monotonic()
                        handle.heartbeat = payload
            elif message[0] == "res":
                _, req_id, outcome = message
                with self._lock:
                    slot = self._pending.pop(req_id, None)
                if slot is not None:
                    slot.outcome = outcome
                    slot.event.set()

    def _watch(self) -> None:
        """Detect dead or wedged workers and respawn them in place."""
        while not self._stop.wait(self.poll_interval):
            with self._lock:
                handles = list(self._handles.values())
            now = time.monotonic()
            for handle in handles:
                if not handle.process.is_alive():
                    self._respawn(handle)
                elif now - handle.last_heartbeat > self.heartbeat_timeout:
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
                    self._respawn(handle)

    def _respawn(self, stale: WorkerHandle) -> None:
        """Replace one dead worker: fail its in-flight work, fork anew.

        The replacement gets *fresh* request and response queues: a
        SIGKILLed worker can die holding a queue's shared reader or
        writer lock, which would wedge any successor (or, for a shared
        response queue, every healthy worker) touching the same queue
        forever.  The dead generation's queued messages go down with
        its queues — their pending slots are failed right here, so no
        caller waits on them.
        """
        with self._lock:
            handle = self._handles.get(stale.index)
            if handle is not stale or self._closed or handle.process.is_alive():
                return  # already replaced, or shutting down
            failed = [
                (req_id, slot)
                for req_id, slot in self._pending.items()
                if slot.worker == handle.index
            ]
            for req_id, _ in failed:
                del self._pending[req_id]
            handle.generation += 1
            handle.respawns += 1
            self._crashes += 1
            generation = handle.generation
            poisoned = (handle.requests, handle.responses)
            handle.requests = self._ctx.Queue()
            handle.responses = self._ctx.Queue()
            requests = handle.requests
            responses = handle.responses
        for _, slot in failed:
            slot.outcome = ("crashed",)
            slot.event.set()
        for dead_queue in poisoned:
            dead_queue.close()
            dead_queue.cancel_join_thread()
        process = self._spawn(stale.index, generation, requests, responses)
        with self._lock:
            handle.process = process
            handle.last_heartbeat = time.monotonic()
        self._start_collector(stale.index, generation, responses)

    def _spawn(
        self,
        index: int,
        generation: int,
        requests: "multiprocessing.Queue",
        responses: "multiprocessing.Queue",
    ) -> "multiprocessing.process.BaseProcess":
        """Fork one worker process onto its incarnation's queue pair."""
        process = self._ctx.Process(
            target=worker_main,
            args=(
                index,
                generation,
                self._bionav,
                requests,
                responses,
                self._options,
            ),
            name="bionav-worker-%d" % index,
            daemon=True,
        )
        process.start()
        return process

    def kill(self, index: int) -> None:
        """Hard-kill one worker (crash injection for tests/benchmarks)."""
        with self._lock:
            process = self._handles[index].process
        process.kill()
        process.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def describe(self) -> List[Dict[str, Any]]:
        """Per-worker liveness rows for the merged health surface."""
        with self._lock:
            rows = []
            now = time.monotonic()
            for index in sorted(self._handles):
                handle = self._handles[index]
                rows.append(
                    {
                        "name": handle.name,
                        "index": handle.index,
                        "generation": handle.generation,
                        "alive": handle.process.is_alive(),
                        "respawns": handle.respawns,
                        "queue_depth": handle.requests.qsize(),
                        "heartbeat_age": now - handle.last_heartbeat,
                        "heartbeat": dict(handle.heartbeat),
                    }
                )
        return rows

    @property
    def crashes(self) -> int:
        """Workers respawned over the supervisor's lifetime."""
        with self._lock:
            return self._crashes

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop monitoring, shut workers down, and fail pending work."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles.values())
        self._stop.set()
        for handle in handles:
            try:
                handle.requests.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover
                pass
        for handle in handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        self._monitor.join(timeout=5.0)
        for collector in self._collectors:
            collector.join(timeout=5.0)
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for slot in pending:
            slot.outcome = ("crashed",)
            slot.event.set()
        for handle in handles:
            handle.requests.cancel_join_thread()
            handle.responses.cancel_join_thread()

    def __enter__(self) -> "WorkerSupervisor":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: shut the fleet down."""
        self.close()
