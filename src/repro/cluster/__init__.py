"""Sharded multiprocess serving over a shared stage cache.

The serving runtime (:mod:`repro.serving`) is one process: a
``ThreadPoolExecutor`` over CPU-bound solver work, so the GIL caps real
scaling.  This package is the horizontal scale-out layer the ROADMAP
calls for — the shape of the deployed BioNav system (paper §VII), where
many concurrent navigation sessions front one shared MEDLINE/MeSH
store:

* :class:`~repro.cluster.hashring.ConsistentHashRing` — session/shard
  placement with minimal re-mapping when the worker count changes;
* :class:`~repro.cluster.shardmap.ShardMap` — partitions the concept
  hierarchy by MeSH top-level subtree, with a hash-of-query fallback
  for queries whose results span branches;
* :class:`~repro.cluster.stagecache.ClusterStageCache` — a file-backed,
  content-addressed artifact store the per-process
  :class:`~repro.pipeline.cache.StageCache` consults as an L2, so a
  navigation tree built by one worker is never rebuilt by another;
* :mod:`~repro.cluster.workers` — worker-process lifecycle: spawn,
  heartbeats, crash detection, automatic respawn;
* :class:`~repro.cluster.router.BioNavCluster` — the front-end facade
  that routes search/EXPAND/BACKTRACK to the owning worker and merges
  ``/api/health`` / ``/api/stats`` across the fleet.  It exposes the
  same operation surface as :class:`~repro.serving.runtime.ServingRuntime`,
  so :class:`~repro.web.app.BioNavWebApp` mounts either interchangeably
  (``python -m repro.web --cluster N``).
"""

from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.router import BioNavCluster, ClusterConfig
from repro.cluster.shardmap import ShardMap
from repro.cluster.stagecache import ClusterStageCache

__all__ = [
    "BioNavCluster",
    "ClusterConfig",
    "ClusterStageCache",
    "ConsistentHashRing",
    "ShardMap",
]
