"""Shard identity: partition the concept hierarchy by top-level subtree.

The paper's MeSH hierarchy is bushy at the top (98 branches under the
root in Fig. 1), and a navigation session lives almost entirely inside
the branches its query results attach to — which makes the *top-level
subtree* the natural shard unit (the taxonomy-partitioning argument of
the Cost-Effective Conceptual Design line of work).  A
:class:`ShardMap` names those shards: every top-level concept (child of
the hierarchy root) is one shard key, and a query whose navigation tree
lives under exactly one branch carries that branch's key.  Queries that
span branches — common for broad keywords — fall back to a
deterministic hash of the query string, so they still pin to one worker
(cache affinity) without pretending to have a branch identity.

Shard keys are *strings*, fed to the
:class:`~repro.cluster.hashring.ConsistentHashRing` for worker
placement.  The map itself holds no worker knowledge: it answers "what
is this query's shard key", the ring answers "which worker owns that
key", and the two compose in the router.

The router cannot know a query's branches before the first search
resolves it, so routing is two-phase: the first search of a query
routes by the hash fallback, the owning worker classifies the built
navigation tree (:meth:`ShardMap.classify`), and the router remembers
the returned key for subsequent searches of the same query.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.hierarchy.concept import ConceptHierarchy

__all__ = ["ShardMap"]


class ShardMap:
    """Query → shard-key mapping over one concept hierarchy.

    Args:
        hierarchy: the deployment's concept hierarchy; its root children
            become the branch shards.
    """

    def __init__(self, hierarchy: ConceptHierarchy):
        self._root = hierarchy.root
        # node id of each top-level branch → its stable shard key.  The
        # uid (MeSH descriptor style) keeps keys meaningful in stats.
        self._branch_keys: Dict[int, str] = {
            branch: "branch:%s" % hierarchy.uid(branch)
            for branch in hierarchy.children(hierarchy.root)
        }
        # Any node id → its top-level ancestor, resolved lazily through
        # the parent chain (the hierarchy is append-only, so caching by
        # node id is safe).
        self._hierarchy = hierarchy
        self._top_level: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Shard identities
    # ------------------------------------------------------------------
    @property
    def branches(self) -> Tuple[str, ...]:
        """Every branch shard key, sorted (one per top-level concept)."""
        return tuple(sorted(self._branch_keys.values()))

    def branch_of(self, node: int) -> Optional[int]:
        """Top-level ancestor of ``node`` (None for the root itself)."""
        if node == self._root:
            return None
        cached = self._top_level.get(node)
        if cached is not None:
            return cached
        walk: List[int] = []
        current = node
        while current != self._root and current not in self._top_level:
            walk.append(current)
            current = self._hierarchy.parent(current)
        top = current if current != self._root else walk[-1]
        if current in self._top_level:
            top = self._top_level[current]
        for seen in walk:
            self._top_level[seen] = top
        return top

    def classify(self, nodes: Iterable[int]) -> Optional[str]:
        """The single branch shard key covering ``nodes``, or None.

        ``nodes`` is typically a navigation tree's node set.  The root
        is ignored (every tree keeps it); if every remaining node sits
        under one top-level branch the branch's key is returned, and
        ``None`` means the nodes span branches (use the query fallback).
        """
        branch_key: Optional[str] = None
        for node in nodes:
            if node == self._root:
                continue
            key = self._branch_keys.get(self.branch_of(node))
            if key is None:
                return None
            if branch_key is None:
                branch_key = key
            elif key != branch_key:
                return None
        return branch_key

    # ------------------------------------------------------------------
    # Query routing
    # ------------------------------------------------------------------
    @staticmethod
    def query_fallback(query: str) -> str:
        """Deterministic hash shard key for a query without a branch."""
        digest = hashlib.sha256(("query\x1e" + query).encode("utf-8")).hexdigest()
        return "query:%s" % digest[:12]

    def shard_key(self, query: str, nodes: Optional[Iterable[int]] = None) -> str:
        """Shard key for ``query``.

        Args:
            query: the keyword query as issued.
            nodes: the query's navigation-tree nodes when known (the
                owning worker knows them after the first search); omit
                at the routing front end before the query has resolved.

        Returns:
            The covering branch key when ``nodes`` lie under one
            top-level subtree, else the hash-of-query fallback.
        """
        if nodes is not None:
            branch = self.classify(nodes)
            if branch is not None:
                return branch
        return self.query_fallback(query)

    def snapshot(self) -> Dict[str, object]:
        """Sizing summary for the merged stats surface."""
        return {"branch_shards": len(self._branch_keys)}
