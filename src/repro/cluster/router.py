"""The cluster front end: shard-aware routing over a worker fleet.

:class:`BioNavCluster` presents the *same* request surface as a single
:class:`~repro.serving.runtime.ServingRuntime` — ``search`` / ``view``
/ ``expand`` / ``results`` / ``backtrack`` plus ``health()`` /
``stats()`` — so :class:`~repro.web.app.BioNavWebApp` mounts either
interchangeably.  Underneath, requests fan out to a
:class:`~repro.cluster.workers.WorkerSupervisor` fleet:

* **Shard identity** comes from the :class:`~repro.cluster.shardmap.ShardMap`
  (MeSH top-level subtree, hash-of-query fallback); **worker placement**
  from the :class:`~repro.cluster.hashring.ConsistentHashRing` over the
  fleet's stable member names.
* **Two-phase routing** — the first search of a query routes by the
  hash fallback; the owning worker classifies the built navigation tree
  and the router remembers the returned branch key for later searches.
* **Placement modes** — ``"spread"`` (default) hashes shard key *plus*
  a session ordinal, spreading sessions of one hot query across the
  fleet (CPU-bound scaling; the shared L2 keeps stage work
  build-once); ``"shard"`` hashes the shard key alone for strict cache
  affinity.
* **Session identity** — cluster session ids are
  ``w<worker>g<generation>-<local sid>``.  The worker index pins every
  follow-up action to the owning process; the generation makes worker
  death observable: after a crash and respawn the slot's generation has
  advanced, so stale ids answer
  :class:`~repro.serving.sessions.SessionExpired` (``410 Gone``, re-run
  the search) without consulting the replacement worker.  Other
  workers' sessions never notice.
* **Crash windows** — a request in flight when its worker dies
  surfaces as :class:`~repro.serving.admission.RetryLater` (``503`` +
  ``Retry-After``), the same contract as load shedding.

``health()`` and ``stats()`` merge the per-worker answers with
fleet-level rows: per-shard queue depth, shed counts, respawns, and the
L2 store's hit ratio.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.bionav import BioNav
from repro.cluster.hashring import DEFAULT_REPLICAS, ConsistentHashRing
from repro.cluster.shardmap import ShardMap
from repro.cluster.workers import WorkerCrashed, WorkerSupervisor, WorkerUnavailable
from repro.serving.admission import RetryLater
from repro.serving.runtime import (
    DEFAULT_RESULTS_PAGE_SIZE,
    ResultsView,
    SearchResult,
    SessionView,
)
from repro.serving.sessions import SessionExpired

__all__ = ["ClusterConfig", "BioNavCluster"]

#: Cluster session ids: worker index, generation, then the local sid.
_SID = re.compile(r"^w(\d+)g(\d+)-(s\d{6,})$")

#: Remembered query → branch shard keys (two-phase routing state).
_HINT_BOUND = 4096


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet shape and per-worker serving options.

    Attributes:
        workers: fleet size (processes).
        cache_dir: directory of the shared
            :class:`~repro.cluster.stagecache.ClusterStageCache`; None
            disables the L2 (workers still scale, but rebuild stages
            independently).
        placement: ``"spread"`` or ``"shard"`` (see the module
            docstring).
        replicas: virtual nodes per ring member.
        heartbeat_interval: seconds between worker heartbeats.
        heartbeat_timeout: seconds without a heartbeat before a live
            worker is declared wedged and restarted.
        poll_interval: supervisor crash-detection sampling period.
        request_timeout: cap on one proxied request's wait.
        health_timeout: cap on each worker's answer to a merged
            ``health()``/``stats()`` probe.
        runtime: extra :class:`~repro.serving.runtime.ServingRuntime`
            keywords applied in every worker (``deadline``,
            ``max_queue``, ``solver``, ``results_page_size``, ...).
    """

    workers: int = 2
    cache_dir: Optional[str] = None
    placement: str = "spread"
    replicas: int = DEFAULT_REPLICAS
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 30.0
    poll_interval: float = 0.05
    request_timeout: float = 60.0
    health_timeout: float = 5.0
    runtime: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Validate fleet shape and placement mode."""
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.placement not in ("spread", "shard"):
            raise ValueError("placement must be 'spread' or 'shard'")


class BioNavCluster:
    """Sharded multiprocess serving behind a runtime-shaped facade.

    Args:
        bionav: the system every worker serves (shared copy-on-write
            via fork).
        config: fleet shape and per-worker options.

    Thread safety: routing state (learned shard hints) mutates under
    ``self._lock``; the supervisor and hash ring manage their own
    synchronization.
    """

    def __init__(self, bionav: BioNav, config: Optional[ClusterConfig] = None):
        self.config = config or ClusterConfig()
        options: Dict[str, Any] = dict(self.config.runtime)
        options["cache_dir"] = self.config.cache_dir
        options["heartbeat_interval"] = self.config.heartbeat_interval
        self._lock = threading.Lock()
        self._supervisor = WorkerSupervisor(
            bionav,
            self.config.workers,
            options,
            heartbeat_timeout=self.config.heartbeat_timeout,
            poll_interval=self.config.poll_interval,
            request_timeout=self.config.request_timeout,
        )
        self._shardmap = ShardMap(bionav.database.hierarchy)
        self._ring = ConsistentHashRing(
            self._supervisor.names, replicas=self.config.replicas
        )
        self._hints: "OrderedDict[str, str]" = OrderedDict()
        self._spread = itertools.count()
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # Runtime-shaped configuration surface (what the web app reads)
    # ------------------------------------------------------------------
    @property
    def results_page_size(self) -> int:
        """Citations per SHOWRESULTS page (every worker's setting)."""
        return int(
            self.config.runtime.get("results_page_size", DEFAULT_RESULTS_PAGE_SIZE)
        )

    @property
    def deadline(self) -> Optional[float]:
        """Per-request queueing budget applied inside every worker."""
        value = self.config.runtime.get("deadline")
        return float(value) if value is not None else None

    @property
    def shed_retry_after(self) -> float:
        """Honest client back-off for shed requests, in seconds.

        Same contract as
        :attr:`~repro.serving.runtime.ServingRuntime.shed_retry_after`,
        derived from the fleet-wide runtime options.
        """
        hint = float(self.config.runtime.get("retry_after", 1.0))
        if self.deadline is not None:
            hint = max(hint, self.deadline)
        return hint

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_key(self, query: str) -> str:
        """The routing shard key for ``query`` as known right now."""
        with self._lock:
            learned = self._hints.get(query)
        return learned or self._shardmap.query_fallback(query)

    def _place(self, shard_key: str) -> int:
        """Worker index for one new session of ``shard_key``."""
        if self.config.placement == "spread":
            member = self._ring.lookup("%s#%d" % (shard_key, next(self._spread)))
        else:
            member = self._ring.lookup(shard_key)
        return self._supervisor.index_of(member)

    def _learn(self, query: str, shard_key: str) -> None:
        """Remember the worker-classified shard key (bounded, LRU-ish)."""
        with self._lock:
            self._hints[query] = shard_key
            self._hints.move_to_end(query)
            while len(self._hints) > _HINT_BOUND:
                self._hints.popitem(last=False)

    # ------------------------------------------------------------------
    # The request surface
    # ------------------------------------------------------------------
    def search(self, query: str) -> SearchResult:
        """Route a search, learn its shard key, return a cluster sid."""
        index = self._place(self.shard_key(query))
        try:
            payload = self._supervisor.call(index, "search", {"query": query})
        except (WorkerCrashed, WorkerUnavailable):
            raise RetryLater(self.shed_retry_after)
        self._learn(query, payload["shard_hint"])
        result: SearchResult = payload["result"]
        sid = "w%dg%d-%s" % (index, payload["generation"], result.session)
        return replace(result, session=sid)

    def view(self, sid: str) -> SessionView:
        """The session's current interface rows and cost ledger."""
        return self._session_call(sid, "view")

    def expand(self, sid: str, node: int) -> SessionView:
        """EXPAND ``node`` in the session; returns the new state."""
        return self._session_call(sid, "expand", {"node": node})

    def results(self, sid: str, node: int) -> ResultsView:
        """SHOWRESULTS for ``node``'s component in the session."""
        return self._session_call(sid, "results", {"node": node})

    def backtrack(self, sid: str) -> SessionView:
        """Undo the session's most recent EXPAND; returns the state."""
        return self._session_call(sid, "backtrack")

    def _session_call(
        self, sid: str, op: str, extra: Optional[Dict[str, Any]] = None
    ) -> Any:
        """Route one session action to the owning worker incarnation."""
        index, generation, local = self._parse_sid(sid)
        try:
            current = self._supervisor.generation_of(index)
        except KeyError:
            raise KeyError("session %s" % sid)
        if current != generation:
            # The owning worker died and was respawned: its in-memory
            # sessions are gone.  410 Gone — re-run the search.
            raise SessionExpired(sid)
        kwargs: Dict[str, Any] = {"sid": local}
        kwargs.update(extra or {})
        try:
            value = self._supervisor.call(index, op, kwargs)
        except SessionExpired:
            raise SessionExpired(sid)  # evicted locally; report the cluster id
        except (WorkerCrashed, WorkerUnavailable):
            raise RetryLater(self.shed_retry_after)
        return replace(value, session=sid)

    @staticmethod
    def _parse_sid(sid: str) -> Tuple[int, int, str]:
        """Split a cluster sid into (worker index, generation, local sid)."""
        match = _SID.match(sid)
        if match is None:
            raise KeyError("session %s" % sid)
        return int(match.group(1)), int(match.group(2)), match.group(3)

    # ------------------------------------------------------------------
    # Merged observability
    # ------------------------------------------------------------------
    def _probe(self, op: str) -> List[Tuple[Dict[str, Any], Optional[Any]]]:
        """(supervision row, worker answer or None) per fleet slot."""
        rows = self._supervisor.describe()
        answers: List[Tuple[Dict[str, Any], Optional[Any]]] = []
        for row in rows:
            try:
                value = self._supervisor.call(
                    row["index"], op, timeout=self.config.health_timeout
                )
            except Exception:
                value = None
            answers.append((row, value))
        return answers

    def health(self) -> Dict[str, object]:
        """Fleet liveness/saturation summary for ``GET /api/health``."""
        probed = self._probe("health")
        shards = []
        status = "ok"
        sessions = 0
        queue_depth = 0
        for row, answer in probed:
            if answer is None:
                status = "degraded"
                shard_status = "unreachable"
            else:
                shard_status = str(answer.get("status", "ok"))
                sessions += int(answer.get("sessions_active", 0))
                if shard_status != "ok":
                    status = "degraded"
            queue_depth += int(row["queue_depth"])
            shards.append(
                {
                    "name": row["name"],
                    "generation": row["generation"],
                    "alive": row["alive"],
                    "respawns": row["respawns"],
                    "queue_depth": row["queue_depth"],
                    "status": shard_status,
                    "health": answer,
                }
            )
        return {
            "status": status,
            "workers": len(shards),
            "queue_depth": queue_depth,
            "sessions_active": sessions,
            "results_page_size": self.results_page_size,
            "uptime_seconds": time.monotonic() - self._started,
            "cluster": {
                "size": self.config.workers,
                "placement": self.config.placement,
                "crashes": self._supervisor.crashes,
            },
            "shards": shards,
        }

    def stats(self) -> Dict[str, object]:
        """Fleet-merged operational statistics for ``GET /api/stats``.

        Per-stage pipeline counters are summed across workers (hit
        ratios recomputed from the sums); the L2 block merges every
        worker's view of the shared store; per-worker raw answers ride
        along under ``workers`` for drill-down.
        """
        probed = self._probe("stats")
        pipeline: Dict[str, Dict[str, float]] = {}
        l2_totals: Dict[str, float] = {}
        l2_census: Optional[Dict[str, Any]] = None
        shed_total = 0
        workers = []
        with self._lock:
            hints_learned = len(self._hints)
        for row, answer in probed:
            entry: Dict[str, Any] = {
                "name": row["name"],
                "generation": row["generation"],
                "alive": row["alive"],
                "respawns": row["respawns"],
                "queue_depth": row["queue_depth"],
                "stats": answer,
            }
            workers.append(entry)
            if answer is None:
                continue
            for stage, stage_row in answer.get("pipeline", {}).items():
                merged = pipeline.setdefault(stage, {})
                for key, value in stage_row.items():
                    if isinstance(value, (int, float)):
                        merged[key] = merged.get(key, 0.0) + value
            shed_total += int(answer.get("serving", {}).get("shed", {}).get("total", 0))
            l2 = answer.get("l2")
            if l2 is not None:
                for key in ("hits", "misses", "publishes", "evictions", "errors"):
                    l2_totals[key] = l2_totals.get(key, 0.0) + l2.get(key, 0)
                # entries/bytes describe the shared directory: every
                # worker reports the same census, so keep one reading.
                l2_census = {"entries": l2.get("entries"), "bytes": l2.get("bytes")}
        for merged in pipeline.values():
            lookups = merged.get("hits", 0.0) + merged.get("misses", 0.0)
            if "hit_ratio" in merged:
                merged["hit_ratio"] = merged.get("hits", 0.0) / lookups if lookups else 0.0
        l2_block: Optional[Dict[str, Any]] = None
        if l2_census is not None:
            attempts = l2_totals.get("hits", 0.0) + l2_totals.get("misses", 0.0)
            l2_block = dict(l2_totals)
            l2_block["hit_ratio"] = (
                l2_totals.get("hits", 0.0) / attempts if attempts else 0.0
            )
            l2_block.update(l2_census)
        return {
            "cluster": {
                "size": self.config.workers,
                "placement": self.config.placement,
                "crashes": self._supervisor.crashes,
                "hints_learned": hints_learned,
                "branch_shards": self._shardmap.snapshot()["branch_shards"],
                "ring": {
                    "members": list(self._ring.members),
                    "replicas": self.config.replicas,
                },
                "shed_total": shed_total,
            },
            "pipeline": pipeline,
            "l2": l2_block,
            "workers": workers,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def kill_worker(self, index: int) -> None:
        """Crash-inject one worker (tests and resilience drills)."""
        self._supervisor.kill(index)

    def close(self) -> None:
        """Shut the fleet down."""
        self._supervisor.close()

    def __enter__(self) -> "BioNavCluster":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: shut the fleet down."""
        self.close()
