"""The cross-process L2: a file-backed, content-addressed artifact store.

The pipeline's stage artifacts already carry deterministic 40-hex
content keys (sha-256, chained down the dataflow — see
:mod:`repro.pipeline.artifacts`), which makes a shared store trivial to
address: the key *is* the filename, and equal keys mean interchangeable
values by construction.  :class:`ClusterStageCache` turns a directory
into that store so N worker processes share stage work — a navigation
tree built by one worker is unpickled, not rebuilt, by every other.

Protocol (all of it ordinary POSIX file semantics, no server):

* **Publish** — values are pickled to a temporary file in the entry's
  directory and ``os.replace``-d into place.  Rename is atomic on one
  filesystem, so readers only ever see complete entries; double
  publishes of the same key are idempotent overwrites of equal bytes.
* **Single-flight** — builders take a ``<key>.lock`` file
  (``O_CREAT | O_EXCL``) before building.  Losers of the race either
  poll for the winner's publish (:meth:`wait_for`) or rebuild locally
  if the winner dies — locks older than ``stale_after`` are broken, so
  a crashed worker never wedges the key it was building.
* **Eviction** — LRU by mtime: reads touch their entry, and a publish
  that pushes the store past ``max_entries``/``max_bytes`` deletes the
  oldest entries until back under both bounds.

Trust model: the directory is owned by one deployment's worker fleet —
the same trust domain as the process memory the L1 caches live in — so
pickle is an appropriate wire format.  Corrupt or truncated entries
(a reader racing eviction, a torn disk) are treated as misses and
deleted, never raised.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.pipeline.cache import L2_MISS as MISS

__all__ = ["MISS", "ClusterStageCache"]

#: Stages shared across workers by default.  The hierarchy snapshot is
#: deliberately absent: it embeds the offline database every worker
#: already holds, so publishing it would ship megabytes to save nothing.
DEFAULT_STAGES: FrozenSet[str] = frozenset({"results", "nav_tree", "cut"})


class _BuildLock:
    """Context manager for one key's build lock (see ``build_lock``)."""

    def __init__(self, path: Path, stale_after: float):
        self._path = path
        self._stale_after = stale_after
        self.acquired = False

    def __enter__(self) -> "_BuildLock":
        """Try to take the lock file; ``acquired`` records the outcome."""
        self.acquired = self._try_acquire()
        if not self.acquired and self._is_stale():
            # The previous builder died mid-build: break its lock and
            # race for the replacement.  At worst two workers build the
            # same value and the publishes overwrite idempotently.
            self._path.unlink(missing_ok=True)
            self.acquired = self._try_acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Release the lock file when this process holds it."""
        if self.acquired:
            self._path.unlink(missing_ok=True)

    def _try_acquire(self) -> bool:
        try:
            fd = os.open(self._path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write("%d\n" % os.getpid())
        return True

    def _is_stale(self) -> bool:
        try:
            age = time.time() - self._path.stat().st_mtime
        except OSError:
            return False  # released between our attempt and the check
        return age > self._stale_after


class ClusterStageCache:
    """Content-addressed stage artifacts shared across worker processes.

    Args:
        root: directory holding the store (created if missing).
        stages: stage names published here; reads/writes for other
            stages are no-ops, so callers can pass every stage through.
        max_entries: LRU bound on stored artifacts.
        max_bytes: LRU bound on total stored bytes.
        stale_after: seconds after which another worker's build lock is
            considered abandoned and broken.

    Thread safety: file operations are atomic per entry; the in-process
    counters mutate under ``self._lock`` (the serving layer's
    lock-discipline rule covers this class).
    """

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        stages: Iterable[str] = DEFAULT_STAGES,
        max_entries: int = 2048,
        max_bytes: int = 256 * 1024 * 1024,
        stale_after: float = 30.0,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stages = frozenset(stages)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stale_after = stale_after
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._publishes = 0
        self._evictions = 0
        self._errors = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def _entry_path(self, stage: str, key: str) -> Path:
        """Canonical entry path: ``root/<stage>/<key[:2]>/<key>.pkl``."""
        return self.root / stage / key[:2] / (key + ".pkl")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, stage: str, key: str) -> object:
        """The stored value for ``(stage, key)``, or :data:`MISS`.

        A hit touches the entry's mtime (the LRU clock).  Unreadable or
        corrupt entries are deleted and reported as misses.
        """
        if stage not in self.stages:
            return MISS
        path = self._entry_path(stage, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return MISS
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # Torn write or stale class layout: drop the entry and
            # let the caller rebuild it.
            path.unlink(missing_ok=True)
            with self._lock:
                self._errors += 1
                self._misses += 1
            return MISS
        try:
            os.utime(path)
        except OSError:
            pass  # evicted between read and touch; the value is still good
        with self._lock:
            self._hits += 1
        return value

    def wait_for(
        self, stage: str, key: str, timeout: float, interval: float = 0.005
    ) -> object:
        """Poll for another worker's publish of ``(stage, key)``.

        Returns the value once it appears, or :data:`MISS` after
        ``timeout`` seconds (the caller then builds locally).
        """
        deadline = time.monotonic() + timeout
        while True:
            value = self.get(stage, key)
            if value is not MISS:
                return value
            if time.monotonic() >= deadline:
                return MISS
            time.sleep(interval)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, stage: str, key: str, value: object) -> bool:
        """Publish ``value`` under ``(stage, key)``; False when skipped.

        The pickle is written to a sibling temporary file and renamed
        into place, so concurrent readers never observe a partial
        entry.  Values that fail to pickle are skipped (the L1 still
        holds them; only cross-process sharing is lost).
        """
        if stage not in self.stages:
            return False
        path = self._entry_path(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (".tmp-%d-%s" % (os.getpid(), path.name))
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError, TypeError, ValueError, AttributeError):
            tmp.unlink(missing_ok=True)
            with self._lock:
                self._errors += 1
            return False
        with self._lock:
            self._publishes += 1
        self._evict_over_budget()
        return True

    def build_lock(self, stage: str, key: str) -> _BuildLock:
        """Single-flight lock for building ``(stage, key)``.

        Use as ``with cache.build_lock(stage, key) as lock:`` — when
        ``lock.acquired`` is False another worker is building; call
        :meth:`wait_for` instead of duplicating the work.
        """
        path = self._entry_path(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        return _BuildLock(path.with_suffix(".lock"), self.stale_after)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _scan(self) -> List[Tuple[float, int, Path]]:
        """Every entry as (mtime, bytes, path), oldest first."""
        rows: List[Tuple[float, int, Path]] = []
        for path in self.root.glob("*/*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently evicted
            rows.append((stat.st_mtime, stat.st_size, path))
        rows.sort()
        return rows

    def _evict_over_budget(self) -> None:
        """Delete oldest entries until under both LRU bounds."""
        rows = self._scan()
        total_bytes = sum(size for _, size, _ in rows)
        excess = 0
        while rows[excess:] and (
            len(rows) - excess > self.max_entries or total_bytes > self.max_bytes
        ):
            _, size, path = rows[excess]
            path.unlink(missing_ok=True)
            total_bytes -= size
            excess += 1
        if excess:
            with self._lock:
                self._evictions += excess

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Counters plus an on-disk size census (entries and bytes)."""
        rows = self._scan()
        with self._lock:
            hits, misses = self._hits, self._misses
            counters = {
                "hits": hits,
                "misses": misses,
                "hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
                "publishes": self._publishes,
                "evictions": self._evictions,
                "errors": self._errors,
            }
        counters["entries"] = len(rows)
        counters["bytes"] = sum(size for _, size, _ in rows)
        return counters

    def clear(self) -> None:
        """Delete every stored entry (counters are kept)."""
        for _, _, path in self._scan():
            path.unlink(missing_ok=True)
