"""Serve the BioNav web interface locally.

Run with::

    python -m repro.web [--port 8080] [--hierarchy-size 2000] [--workers 4]
    python -m repro.web --cluster 4 [--cache-dir DIR]

Builds the Table I workload and serves the interface with the standard
library's ``wsgiref`` server, upgraded to a threading server: each HTTP
connection gets its own thread, and the app's
:class:`~repro.serving.runtime.ServingRuntime` caps actual request
concurrency at ``--workers``, sheds overload past ``--queue`` with
``503 + Retry-After``, and drops requests still queued after
``--deadline`` seconds.

With ``--cluster N`` the single runtime is replaced by a
:class:`~repro.cluster.router.BioNavCluster` of N forked worker
processes sharing a content-addressed stage cache (``--cache-dir``,
default a fresh temporary directory), behind the same WSGI interface.
Development use only, as with the paper's original deployment notes.
"""

from __future__ import annotations

import argparse
import tempfile
from socketserver import ThreadingMixIn
from wsgiref.simple_server import WSGIServer, make_server

from repro.bionav import BioNav
from repro.web.app import BioNavWebApp
from repro.workload.builder import build_workload


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """wsgiref's server with one thread per connection."""

    daemon_threads = True


def main() -> None:
    """Build the workload and serve the interface."""
    parser = argparse.ArgumentParser(prog="python -m repro.web")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--hierarchy-size", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue", type=int, default=64)
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request queueing budget in seconds (default: none)",
    )
    parser.add_argument(
        "--cluster",
        type=int,
        default=0,
        metavar="N",
        help="serve through a cluster of N worker processes instead of "
        "one in-process runtime (default: 0 = single process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cluster L2 stage-cache directory (default: a fresh "
        "temporary directory; cluster mode only)",
    )
    args = parser.parse_args()

    print("Building the workload (hierarchy size %d)..." % args.hierarchy_size)
    workload = build_workload(hierarchy_size=args.hierarchy_size, seed=args.seed)
    bionav = BioNav(workload.database, workload.entrez)
    if args.cluster > 0:
        # Imported lazily: single-process serving never forks workers.
        from repro.cluster import BioNavCluster, ClusterConfig

        cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="bionav-l2-")
        cluster = BioNavCluster(
            bionav,
            ClusterConfig(
                workers=args.cluster,
                cache_dir=cache_dir,
                runtime={
                    "workers": args.workers,
                    "max_queue": args.queue,
                    "deadline": args.deadline,
                },
            ),
        )
        app = BioNavWebApp(bionav, runtime=cluster)
        banner = "%d worker processes, L2 at %s" % (args.cluster, cache_dir)
    else:
        app = BioNavWebApp(
            bionav,
            workers=args.workers,
            max_queue=args.queue,
            deadline=args.deadline,
        )
        banner = "%d workers" % args.workers
    print(
        "Serving BioNav on http://127.0.0.1:%d/ (%s) — try a "
        "Table I keyword." % (args.port, banner)
    )
    with make_server(
        "127.0.0.1", args.port, app, server_class=_ThreadingWSGIServer
    ) as server:
        try:
            server.serve_forever()
        finally:
            app.close()


if __name__ == "__main__":
    main()
