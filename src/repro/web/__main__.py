"""Serve the BioNav web interface locally.

Run with::

    python -m repro.web [--port 8080] [--hierarchy-size 2000] [--workers 4]

Builds the Table I workload and serves the interface with the standard
library's ``wsgiref`` server, upgraded to a threading server: each HTTP
connection gets its own thread, and the app's
:class:`~repro.serving.runtime.ServingRuntime` caps actual request
concurrency at ``--workers``, sheds overload past ``--queue`` with
``503 + Retry-After``, and drops requests still queued after
``--deadline`` seconds.  Development use only, as with the paper's
original deployment notes.
"""

from __future__ import annotations

import argparse
from socketserver import ThreadingMixIn
from wsgiref.simple_server import WSGIServer, make_server

from repro.bionav import BioNav
from repro.web.app import BioNavWebApp
from repro.workload.builder import build_workload


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """wsgiref's server with one thread per connection."""

    daemon_threads = True


def main() -> None:
    """Build the workload and serve the interface."""
    parser = argparse.ArgumentParser(prog="python -m repro.web")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--hierarchy-size", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue", type=int, default=64)
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request queueing budget in seconds (default: none)",
    )
    args = parser.parse_args()

    print("Building the workload (hierarchy size %d)..." % args.hierarchy_size)
    workload = build_workload(hierarchy_size=args.hierarchy_size, seed=args.seed)
    app = BioNavWebApp(
        BioNav(workload.database, workload.entrez),
        workers=args.workers,
        max_queue=args.queue,
        deadline=args.deadline,
    )
    print(
        "Serving BioNav on http://127.0.0.1:%d/ (%d workers) — try a "
        "Table I keyword." % (args.port, args.workers)
    )
    with make_server(
        "127.0.0.1", args.port, app, server_class=_ThreadingWSGIServer
    ) as server:
        try:
            server.serve_forever()
        finally:
            app.close()


if __name__ == "__main__":
    main()
