"""Serve the BioNav web interface locally.

Run with::

    python -m repro.web [--port 8080] [--hierarchy-size 2000]

Builds the Table I workload and serves the interface with the standard
library's ``wsgiref`` server (development use only, as with the paper's
original deployment notes).
"""

from __future__ import annotations

import argparse
from wsgiref.simple_server import make_server

from repro.bionav import BioNav
from repro.web.app import BioNavWebApp
from repro.workload.builder import build_workload


def main() -> None:
    parser = argparse.ArgumentParser(prog="python -m repro.web")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--hierarchy-size", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print("Building the workload (hierarchy size %d)..." % args.hierarchy_size)
    workload = build_workload(hierarchy_size=args.hierarchy_size, seed=args.seed)
    app = BioNavWebApp(BioNav(workload.database, workload.entrez))
    print("Serving BioNav on http://127.0.0.1:%d/ — try a Table I keyword." % args.port)
    with make_server("127.0.0.1", args.port, app) as server:
        server.serve_forever()


if __name__ == "__main__":
    main()
