"""The BioNav web interface (WSGI) over the simulated substrate."""

from repro.web.app import BioNavWebApp

__all__ = ["BioNavWebApp"]
