"""The BioNav web application (paper §VII — the deployed interface).

The paper's system is a web app (hosted at db.cse.buffalo.edu/bionav):
the user types a keyword query, gets the root of the navigation tree, and
clicks ``>>>`` hyperlinks to EXPAND components or concept labels to
SHOWRESULTS.  This module reproduces that interface as a dependency-free
WSGI application over the simulated substrate:

    GET /                      search form
    GET /search?q=...          run ESearch, create a session, show the root
    GET /nav/<sid>             current interface state
    GET /nav/<sid>/expand?node=N       EXPAND (Heuristic-ReducedOpt)
    GET /nav/<sid>/results?node=N      SHOWRESULTS (simulated ESummary)
    GET /nav/<sid>/backtrack           undo the last EXPAND

plus a JSON API for programmatic clients:

    GET /api/search?q=...      {"session": sid, "count": N}
    GET /api/nav/<sid>                  the visible rows + cost ledger
    GET /api/nav/<sid>/expand?node=N    expand, then the new state
    GET /api/nav/<sid>/results?node=N   the component's PMIDs
    GET /api/stats                      cache/admission/solver statistics
    GET /api/health                     liveness + saturation summary

All cross-request state lives in a
:class:`~repro.serving.runtime.ServingRuntime`: navigation trees are
shared across sessions of the same query through a single-flight LRU
cache, sessions live in a bounded registry with per-session locks, and
every action runs on an admission-controlled worker pool.  The WSGI
callable itself is therefore safe under any multi-threaded server.
Overload answers ``503`` with a ``Retry-After`` header instead of
queueing unboundedly, and a session evicted from the bounded store
answers ``410 Gone`` with the machine-readable error code
``session_expired`` (re-run the search), distinct from the ``404`` an
unknown id gets.  Serve it with ``python -m repro.web`` or mount the
:class:`BioNavWebApp` callable under any WSGI server; tests drive the
callable directly.
"""

from __future__ import annotations

import html
import json
import math
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from urllib.parse import parse_qs

from repro.bionav import BioNav
from repro.serving.admission import DeadlineExceeded, RetryLater
from repro.serving.runtime import (
    DEFAULT_RESULTS_PAGE_SIZE,
    ResultsView,
    ServingRuntime,
    SessionView,
)
from repro.serving.sessions import SessionExpired

__all__ = ["BioNavWebApp"]

StartResponse = Callable[[str, List[Tuple[str, str]]], None]

_PAGE = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>%(title)s</title>
<style>
body { font-family: sans-serif; margin: 1.5em; max-width: 60em; }
ul.bionav { list-style: none; padding-left: 1.2em; border-left: 1px dotted #bbb; }
span.count { color: #555; }
a.expand { color: #0645ad; text-decoration: none; margin-left: 0.4em; }
p.cost { color: #333; background: #f2f2f2; padding: 0.4em; }
</style></head><body>
<h1><a href="/">BioNav</a></h1>
%(body)s
</body></html>
"""


class BioNavWebApp:
    """A WSGI callable serving the BioNav interface.

    Holds no mutable state of its own — every shared structure lives in
    the runtime behind it, which is what makes the callable safe to
    mount under a threaded WSGI server.

    The runtime is normally built here from ``bionav``, but any object
    with the :class:`ServingRuntime` request surface (``search`` /
    ``view`` / ``expand`` / ``results`` / ``backtrack`` plus
    ``health()`` / ``stats()`` / ``results_page_size`` /
    ``shed_retry_after`` / ``close()``) mounts the same way — pass it
    as ``runtime``.  That is how a
    :class:`~repro.cluster.router.BioNavCluster` fleet serves this
    exact interface (``python -m repro.web --cluster N``); the
    remaining keyword arguments are ignored in that case, since the
    injected runtime already carries its own configuration.
    """

    def __init__(
        self,
        bionav: Optional[BioNav] = None,
        tree_cache_size: int = 32,
        max_sessions: int = 256,
        workers: int = 4,
        max_queue: int = 64,
        deadline: Optional[float] = None,
        backend_latency: float = 0.0,
        solver: str = "heuristic",
        results_page_size: int = DEFAULT_RESULTS_PAGE_SIZE,
        runtime: Optional[object] = None,
    ):
        if runtime is None:
            if bionav is None:
                raise ValueError("either bionav or runtime is required")
            runtime = ServingRuntime(
                bionav,
                tree_cache_size=tree_cache_size,
                max_sessions=max_sessions,
                workers=workers,
                max_queue=max_queue,
                deadline=deadline,
                backend_latency=backend_latency,
                solver=solver,
                results_page_size=results_page_size,
            )
        self.runtime = runtime
        self.bionav = bionav

    def close(self) -> None:
        """Shut the runtime's worker pool down."""
        self.runtime.close()

    # ------------------------------------------------------------------
    # WSGI entry point
    # ------------------------------------------------------------------
    def __call__(self, environ: Dict, start_response: StartResponse) -> Iterable[bytes]:
        path = environ.get("PATH_INFO", "/")
        params = parse_qs(environ.get("QUERY_STRING", ""))
        is_api = path.startswith("/api/")
        extra_headers: List[Tuple[str, str]] = []
        try:
            if is_api:
                status, body = self._route_api(path[len("/api") :], params)
            else:
                status, body = self._route(path, params)
        except SessionExpired as exc:
            status = "410 Gone"
            if is_api:
                body = json.dumps(
                    {
                        "error": "session %s expired; re-run the search" % exc.sid,
                        "error_code": "session_expired",
                    }
                )
            else:
                body = self._page(
                    "Session expired",
                    "<p>Session %s expired (the session store is bounded). "
                    '<a href="/">Re-run your search</a>.</p>'
                    % html.escape(exc.sid),
                )
        except KeyError as exc:
            if is_api:
                status, body = "404 Not Found", json.dumps(
                    {"error": "unknown resource: %s" % exc, "error_code": "not_found"}
                )
            else:
                status, body = "404 Not Found", self._page(
                    "Not found", "<p>Unknown resource: %s</p>" % html.escape(str(exc))
                )
        except ValueError as exc:
            if is_api:
                status, body = "400 Bad Request", json.dumps(
                    {"error": str(exc), "error_code": "bad_request"}
                )
            else:
                status, body = "400 Bad Request", self._page(
                    "Bad request", "<p>%s</p>" % html.escape(str(exc))
                )
        except RetryLater as exc:
            status = "503 Service Unavailable"
            retry_after = max(1, int(round(exc.retry_after)))
            extra_headers.append(("Retry-After", str(retry_after)))
            if is_api:
                body = json.dumps(
                    {
                        "error": str(exc),
                        "error_code": "overloaded",
                        "retry_after": retry_after,
                    }
                )
            else:
                body = self._page(
                    "Overloaded",
                    "<p>The server is overloaded; retry in %d second(s).</p>"
                    % retry_after,
                )
        except DeadlineExceeded as exc:
            status = "503 Service Unavailable"
            # The honest back-off is the runtime's: at least the
            # configured queueing deadline (the queue needs that long
            # to drain), never a hardcoded constant.
            retry_after = max(1, math.ceil(self.runtime.shed_retry_after))
            extra_headers.append(("Retry-After", str(retry_after)))
            if is_api:
                body = json.dumps(
                    {
                        "error": str(exc),
                        "error_code": "deadline_exceeded",
                        "retry_after": retry_after,
                    }
                )
            else:
                body = self._page(
                    "Timed out",
                    "<p>The request waited too long in the queue; retry.</p>",
                )
        payload = body.encode("utf-8")
        content_type = (
            "application/json; charset=utf-8"
            if is_api
            else "text/html; charset=utf-8"
        )
        start_response(
            status,
            [
                ("Content-Type", content_type),
                ("Content-Length", str(len(payload))),
            ]
            + extra_headers,
        )
        return [payload]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, path: str, params: Dict[str, List[str]]) -> Tuple[str, str]:
        if path in ("", "/"):
            return "200 OK", self._render_home()
        if path == "/search":
            query = params.get("q", [""])[0].strip()
            if not query:
                raise ValueError("missing query parameter q")
            return "200 OK", self._render_search(query)
        if path.startswith("/nav/"):
            parts = path[len("/nav/") :].split("/")
            sid = parts[0]
            action = parts[1] if len(parts) > 1 else ""
            if action == "":
                return "200 OK", self._render_view(self.runtime.view(sid))
            if action == "expand":
                node = self._node_param(params)
                return "200 OK", self._render_view(self.runtime.expand(sid, node))
            if action == "results":
                node = self._node_param(params)
                return "200 OK", self._render_results(
                    self.runtime.results(sid, node)
                )
            if action == "backtrack":
                return "200 OK", self._render_view(self.runtime.backtrack(sid))
            raise KeyError("action %s" % action)
        raise KeyError(path)

    # ------------------------------------------------------------------
    # HTML rendering (pure functions of runtime view objects)
    # ------------------------------------------------------------------
    def _render_home(self) -> str:
        body = (
            '<form action="/search" method="get">'
            '<input name="q" size="40" placeholder="e.g. prothymosin">'
            '<button type="submit">Search</button></form>'
        )
        return self._page("Search", body)

    def _render_search(self, query: str) -> str:
        result = self.runtime.search(query)
        if result.count == 0:
            return self._page(
                "No results", "<p>No citations match %s.</p>" % html.escape(repr(query))
            )
        return self._render_view(self.runtime.view(result.session))

    def _render_results(self, view: ResultsView) -> str:
        rows = "".join(
            "<li>[%d] %s <em>(%s, %d)</em></li>"
            % (
                s.pmid,
                html.escape(s.title),
                html.escape("; ".join(s.authors[:3])),
                s.year,
            )
            for s in view.summaries
        )
        page_size = self.runtime.results_page_size
        more = (
            "<p>(showing first %d of %d)</p>" % (page_size, len(view.pmids))
            if len(view.pmids) > page_size
            else ""
        )
        body = (
            '<p><a href="/nav/%s">&larr; back to the navigation</a></p>'
            "<h2>%s — %d citations under %s</h2><ul>%s</ul>%s"
            % (
                view.session,
                html.escape(view.query),
                len(view.pmids),
                html.escape(view.label),
                rows,
                more,
            )
        )
        return self._page("Results", body + self._cost_footer(view))

    def _render_view(self, view: SessionView) -> str:
        sid = view.session
        parts: List[str] = []
        depth = -1
        for row in view.rows:
            while depth >= row.depth:
                parts.append("</ul>")
                depth -= 1
            parts.append('<ul class="bionav">')
            depth = row.depth
            expand = (
                ' <a class="expand" href="/nav/%s/expand?node=%d">&gt;&gt;&gt;</a>'
                % (sid, row.node)
                if row.expandable
                else ""
            )
            parts.append(
                '<li><a href="/nav/%s/results?node=%d">%s</a> '
                '<span class="count">(%d)</span>%s</li>'
                % (sid, row.node, html.escape(row.label), row.count, expand)
            )
        while depth >= 0:
            parts.append("</ul>")
            depth -= 1
        body = (
            "<h2>%s</h2>%s"
            '<p><a href="/nav/%s/backtrack">Backtrack</a></p>'
            % (html.escape(view.query), "\n".join(parts), sid)
        )
        return self._page(view.query, body + self._cost_footer(view))

    # ------------------------------------------------------------------
    # JSON API
    # ------------------------------------------------------------------
    def _route_api(self, path: str, params: Dict[str, List[str]]) -> Tuple[str, str]:
        if path == "/stats":
            return "200 OK", json.dumps(self.runtime.stats())
        if path == "/health":
            return "200 OK", json.dumps(self.runtime.health())
        if path == "/search":
            query = params.get("q", [""])[0].strip()
            if not query:
                raise ValueError("missing query parameter q")
            result = self.runtime.search(query)
            return "200 OK", json.dumps(
                {
                    "session": result.session,
                    "query": result.query,
                    "count": result.count,
                }
            )
        if path.startswith("/nav/"):
            parts = path[len("/nav/") :].split("/")
            sid = parts[0]
            action = parts[1] if len(parts) > 1 else ""
            if action == "":
                return "200 OK", self._json_view(self.runtime.view(sid))
            if action == "expand":
                node = self._node_param(params)
                return "200 OK", self._json_view(self.runtime.expand(sid, node))
            if action == "results":
                node = self._node_param(params)
                view = self.runtime.results(sid, node)
                return "200 OK", json.dumps(
                    {
                        "session": view.session,
                        "node": view.node,
                        "label": view.label,
                        "pmids": list(view.pmids),
                    }
                )
            if action == "backtrack":
                return "200 OK", self._json_view(self.runtime.backtrack(sid))
            raise KeyError("action %s" % action)
        raise KeyError(path)

    @staticmethod
    def _json_view(view: SessionView) -> str:
        return json.dumps(
            {
                "session": view.session,
                "query": view.query,
                "rows": [
                    {
                        "node": row.node,
                        "label": row.label,
                        "count": row.count,
                        "depth": row.depth,
                        "parent": row.parent,
                        "expandable": row.expandable,
                    }
                    for row in view.rows
                ],
                "cost": {
                    "total": view.cost.total,
                    "navigation": view.cost.navigation,
                    "expands": view.cost.expands,
                    "revealed": view.cost.revealed,
                    "citations": view.cost.citations,
                },
            }
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _cost_footer(view: "SessionView | ResultsView") -> str:
        return (
            '<p class="cost">Session effort: %.0f '
            "(%d concepts examined + %d EXPANDs + %d citations listed)</p>"
            % (
                view.cost.total,
                view.cost.revealed,
                view.cost.expands,
                view.cost.citations,
            )
        )

    def _page(self, title: str, body: str) -> str:
        return _PAGE % {"title": html.escape(title), "body": body}

    @staticmethod
    def _node_param(params: Dict[str, List[str]]) -> int:
        values = params.get("node")
        if not values or not values[0].lstrip("-").isdigit():
            raise ValueError("missing or non-integer node parameter")
        return int(values[0])
