"""The BioNav web application (paper §VII — the deployed interface).

The paper's system is a web app (hosted at db.cse.buffalo.edu/bionav):
the user types a keyword query, gets the root of the navigation tree, and
clicks ``>>>`` hyperlinks to EXPAND components or concept labels to
SHOWRESULTS.  This module reproduces that interface as a dependency-free
WSGI application over the simulated substrate:

    GET /                      search form
    GET /search?q=...          run ESearch, create a session, show the root
    GET /nav/<sid>             current interface state
    GET /nav/<sid>/expand?node=N       EXPAND (Heuristic-ReducedOpt)
    GET /nav/<sid>/results?node=N      SHOWRESULTS (simulated ESummary)
    GET /nav/<sid>/backtrack           undo the last EXPAND

plus a JSON API for programmatic clients:

    GET /api/search?q=...      {"session": sid, "count": N}
    GET /api/nav/<sid>                  the visible rows + cost ledger
    GET /api/nav/<sid>/expand?node=N    expand, then the new state
    GET /api/nav/<sid>/results?node=N   the component's PMIDs
    GET /api/stats                      cache + solver-latency statistics

Navigation trees are shared across sessions of the same query through an
LRU cache, and sessions themselves live in a bounded LRU store (evicted
sessions 404, as in any stateful web app).  Sessions of the same cached
query also share one Heuristic-ReducedOpt decision cache, so an EXPAND any
of them has already optimized is answered from cache for all of them; a
single :class:`~repro.analysis.runtime.SolverProfile` collects per-EXPAND
solver latency across every session for ``/api/stats``.  Serve it with
``python -m repro.web`` or mount the :class:`BioNavWebApp` callable under
any WSGI server; tests drive the callable directly.
"""

from __future__ import annotations

import html
import json
from typing import Callable, Dict, FrozenSet, Iterable, List, Tuple
from urllib.parse import parse_qs

from repro.analysis.runtime import SolverProfile
from repro.bionav import BioNav
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.core.relevance import ranked_visualization
from repro.core.session import NavigationSession
from repro.core.strategy import CutDecision
from repro.storage.cache import LRUCache

__all__ = ["BioNavWebApp"]

StartResponse = Callable[[str, List[Tuple[str, str]]], None]

_PAGE = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>%(title)s</title>
<style>
body { font-family: sans-serif; margin: 1.5em; max-width: 60em; }
ul.bionav { list-style: none; padding-left: 1.2em; border-left: 1px dotted #bbb; }
span.count { color: #555; }
a.expand { color: #0645ad; text-decoration: none; margin-left: 0.4em; }
p.cost { color: #333; background: #f2f2f2; padding: 0.4em; }
</style></head><body>
<h1><a href="/">BioNav</a></h1>
%(body)s
</body></html>
"""


class _QueryState:
    """Shared per-query artifacts: tree, probability model, decisions.

    ``decisions`` is the Heuristic-ReducedOpt decision cache every session
    of this query shares — EdgeCut decisions are deterministic per query,
    so one session's EXPAND work serves all of them.
    """

    def __init__(self, tree: NavigationTree, probs: ProbabilityModel):
        self.tree = tree
        self.probs = probs
        self.decisions: Dict[FrozenSet[int], CutDecision] = {}


class BioNavWebApp:
    """A WSGI callable serving the BioNav interface."""

    def __init__(
        self,
        bionav: BioNav,
        tree_cache_size: int = 32,
        max_sessions: int = 256,
    ):
        self.bionav = bionav
        self._queries: LRUCache[str, _QueryState] = LRUCache(tree_cache_size)
        self._sessions: LRUCache[str, Tuple[str, NavigationSession]] = LRUCache(
            max_sessions
        )
        self._session_counter = 0
        self.profile = SolverProfile()

    # ------------------------------------------------------------------
    # WSGI entry point
    # ------------------------------------------------------------------
    def __call__(self, environ: Dict, start_response: StartResponse) -> Iterable[bytes]:
        path = environ.get("PATH_INFO", "/")
        params = parse_qs(environ.get("QUERY_STRING", ""))
        is_api = path.startswith("/api/")
        try:
            if is_api:
                status, body = self._route_api(path[len("/api") :], params)
            else:
                status, body = self._route(path, params)
        except KeyError as exc:
            if is_api:
                status, body = "404 Not Found", json.dumps(
                    {"error": "unknown resource: %s" % exc}
                )
            else:
                status, body = "404 Not Found", self._page(
                    "Not found", "<p>Unknown resource: %s</p>" % html.escape(str(exc))
                )
        except ValueError as exc:
            if is_api:
                status, body = "400 Bad Request", json.dumps({"error": str(exc)})
            else:
                status, body = "400 Bad Request", self._page(
                    "Bad request", "<p>%s</p>" % html.escape(str(exc))
                )
        payload = body.encode("utf-8")
        content_type = (
            "application/json; charset=utf-8"
            if is_api
            else "text/html; charset=utf-8"
        )
        start_response(
            status,
            [
                ("Content-Type", content_type),
                ("Content-Length", str(len(payload))),
            ],
        )
        return [payload]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, path: str, params: Dict[str, List[str]]) -> Tuple[str, str]:
        if path in ("", "/"):
            return "200 OK", self._render_home()
        if path == "/search":
            query = params.get("q", [""])[0].strip()
            if not query:
                raise ValueError("missing query parameter q")
            return "200 OK", self._render_search(query)
        if path.startswith("/nav/"):
            parts = path[len("/nav/") :].split("/")
            sid = parts[0]
            action = parts[1] if len(parts) > 1 else ""
            if sid not in self._sessions:
                raise KeyError("session %s" % sid)
            if action == "":
                return "200 OK", self._render_session(sid)
            if action == "expand":
                node = self._node_param(params)
                return "200 OK", self._do_expand(sid, node)
            if action == "results":
                node = self._node_param(params)
                return "200 OK", self._do_results(sid, node)
            if action == "backtrack":
                return "200 OK", self._do_backtrack(sid)
            raise KeyError("action %s" % action)
        raise KeyError(path)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _render_home(self) -> str:
        body = (
            '<form action="/search" method="get">'
            '<input name="q" size="40" placeholder="e.g. prothymosin">'
            '<button type="submit">Search</button></form>'
        )
        return self._page("Search", body)

    def _render_search(self, query: str) -> str:
        state = self._queries.get_or_create(query, lambda: self._build_query(query))
        sid = self._new_session(query, state)
        count = len(state.tree.all_results())
        if count == 0:
            return self._page(
                "No results", "<p>No citations match %s.</p>" % html.escape(repr(query))
            )
        return self._render_session(sid)

    def _do_expand(self, sid: str, node: int) -> str:
        _, session = self._session(sid)
        if not session.active.is_expandable(node):
            raise ValueError("node %d has nothing hidden to reveal" % node)
        session.expand(node)
        return self._render_session(sid)

    def _do_results(self, sid: str, node: int) -> str:
        query, session = self._session(sid)
        if not session.active.is_visible(node):
            raise ValueError("node %d is not visible" % node)
        pmids = session.show_results(node)
        summaries = self.bionav.summaries(pmids[:50])
        rows = "".join(
            "<li>[%d] %s <em>(%s, %d)</em></li>"
            % (
                s.pmid,
                html.escape(s.title),
                html.escape("; ".join(s.authors[:3])),
                s.year,
            )
            for s in summaries
        )
        more = (
            "<p>(showing first 50 of %d)</p>" % len(pmids) if len(pmids) > 50 else ""
        )
        body = (
            '<p><a href="/nav/%s">&larr; back to the navigation</a></p>'
            "<h2>%s — %d citations under %s</h2><ul>%s</ul>%s"
            % (
                sid,
                html.escape(query),
                len(pmids),
                html.escape(session.tree.label(node)),
                rows,
                more,
            )
        )
        return self._page("Results", body + self._cost_footer(session))

    def _do_backtrack(self, sid: str) -> str:
        _, session = self._session(sid)
        session.backtrack()
        return self._render_session(sid)

    def _render_session(self, sid: str) -> str:
        query, session = self._session(sid)
        rows = ranked_visualization(session.active, self._probs_of(query))
        parts: List[str] = []
        depth = -1
        for row in rows:
            while depth >= row.depth:
                parts.append("</ul>")
                depth -= 1
            parts.append('<ul class="bionav">')
            depth = row.depth
            expand = (
                ' <a class="expand" href="/nav/%s/expand?node=%d">&gt;&gt;&gt;</a>'
                % (sid, row.node)
                if row.expandable
                else ""
            )
            parts.append(
                '<li><a href="/nav/%s/results?node=%d">%s</a> '
                '<span class="count">(%d)</span>%s</li>'
                % (sid, row.node, html.escape(row.label), row.count, expand)
            )
        while depth >= 0:
            parts.append("</ul>")
            depth -= 1
        body = (
            "<h2>%s</h2>%s"
            '<p><a href="/nav/%s/backtrack">Backtrack</a></p>'
            % (html.escape(query), "\n".join(parts), sid)
        )
        return self._page(query, body + self._cost_footer(session))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _build_query(self, query: str) -> _QueryState:
        result = self.bionav.search(query)
        return _QueryState(tree=result.tree, probs=result.probs)

    def _probs_of(self, query: str) -> ProbabilityModel:
        state = self._queries.get(query)
        if state is None:  # pragma: no cover - cache evicted mid-session
            state = self._build_query(query)
            self._queries.put(query, state)
        return state.probs

    def _new_session(self, query: str, state: _QueryState) -> str:
        self._session_counter += 1
        sid = "s%06d" % self._session_counter
        strategy = HeuristicReducedOpt(
            state.tree, state.probs, decision_cache=state.decisions
        )
        session = NavigationSession(state.tree, strategy, profiler=self.profile)
        self._sessions.put(sid, (query, session))
        return sid

    def _session(self, sid: str) -> Tuple[str, NavigationSession]:
        entry = self._sessions.get(sid)
        if entry is None:
            raise KeyError("session %s" % sid)
        return entry

    # ------------------------------------------------------------------
    # JSON API
    # ------------------------------------------------------------------
    def _route_api(self, path: str, params: Dict[str, List[str]]) -> Tuple[str, str]:
        if path == "/stats":
            return "200 OK", self._json_stats()
        if path == "/search":
            query = params.get("q", [""])[0].strip()
            if not query:
                raise ValueError("missing query parameter q")
            state = self._queries.get_or_create(query, lambda: self._build_query(query))
            sid = self._new_session(query, state)
            return "200 OK", json.dumps(
                {"session": sid, "query": query, "count": len(state.tree.all_results())}
            )
        if path.startswith("/nav/"):
            parts = path[len("/nav/") :].split("/")
            sid = parts[0]
            action = parts[1] if len(parts) > 1 else ""
            if sid not in self._sessions:
                raise KeyError("session %s" % sid)
            if action == "":
                return "200 OK", self._json_state(sid)
            if action == "expand":
                node = self._node_param(params)
                _, session = self._session(sid)
                if not session.active.is_expandable(node):
                    raise ValueError("node %d has nothing hidden to reveal" % node)
                session.expand(node)
                return "200 OK", self._json_state(sid)
            if action == "results":
                node = self._node_param(params)
                query, session = self._session(sid)
                if not session.active.is_visible(node):
                    raise ValueError("node %d is not visible" % node)
                pmids = session.show_results(node)
                return "200 OK", json.dumps(
                    {
                        "session": sid,
                        "node": node,
                        "label": session.tree.label(node),
                        "pmids": pmids,
                    }
                )
            if action == "backtrack":
                _, session = self._session(sid)
                session.backtrack()
                return "200 OK", self._json_state(sid)
            raise KeyError("action %s" % action)
        raise KeyError(path)

    def _json_state(self, sid: str) -> str:
        query, session = self._session(sid)
        rows = ranked_visualization(session.active, self._probs_of(query))
        return json.dumps(
            {
                "session": sid,
                "query": query,
                "rows": [
                    {
                        "node": row.node,
                        "label": row.label,
                        "count": row.count,
                        "depth": row.depth,
                        "parent": row.parent,
                        "expandable": row.expandable,
                    }
                    for row in rows
                ],
                "cost": {
                    "total": session.total_cost,
                    "navigation": session.navigation_cost,
                    "expands": session.ledger.expand_actions,
                    "revealed": session.ledger.concepts_revealed,
                    "citations": session.ledger.citations_displayed,
                },
            }
        )

    def _json_stats(self) -> str:
        """Operational statistics: caches plus per-EXPAND solver latency."""
        queries = [
            {
                "query": query,
                "tree_size": len(state.tree),
                "decision_cache_size": len(state.decisions),
            }
            for query, state in self._queries.items()
        ]
        return json.dumps(
            {
                "query_cache": {
                    "size": len(self._queries),
                    "capacity": self._queries.capacity,
                    "hits": self._queries.hits,
                    "misses": self._queries.misses,
                    "evictions": self._queries.evictions,
                    "hit_rate": self._queries.hit_rate,
                },
                "sessions": {
                    "active": len(self._sessions),
                    "created": self._session_counter,
                },
                "queries": queries,
                "solver": self.profile.summary(),
            }
        )

    def _cost_footer(self, session: NavigationSession) -> str:
        return (
            '<p class="cost">Session effort: %.0f '
            "(%d concepts examined + %d EXPANDs + %d citations listed)</p>"
            % (
                session.total_cost,
                session.ledger.concepts_revealed,
                session.ledger.expand_actions,
                session.ledger.citations_displayed,
            )
        )

    def _page(self, title: str, body: str) -> str:
        return _PAGE % {"title": html.escape(title), "body": body}

    @staticmethod
    def _node_param(params: Dict[str, List[str]]) -> int:
        values = params.get("node")
        if not values or not values[0].lstrip("-").isdigit():
            raise ValueError("missing or non-integer node parameter")
        return int(values[0])
