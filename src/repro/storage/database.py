"""The BioNav database (paper §VII).

:class:`BioNavDatabase` is the product of BioNav's off-line pre-processing:
it holds the MeSH hierarchy, the concept–citation association tables (both
normalized and denormalized), the per-concept MEDLINE-wide counts, and the
keyword index the simulated ESearch runs over.

The paper harvested associations by issuing one PubMed query per MeSH
concept over ~20 days; :meth:`BioNavDatabase.build` performs the equivalent
extraction directly from the simulated :class:`MedlineDatabase` in one pass.
At substrate scale the associations instead live in a pre-built
:class:`~repro.substrate.store.MmapStore` directory and
:meth:`BioNavDatabase.from_store` wraps it without any extraction pass —
either way the online layers see one :class:`~repro.substrate.store.CorpusStore`
access path.  A JSON save/load round-trip is provided so the toy-scale
pre-processing can be cached between runs, mirroring the persistent
Oracle store.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.concept import ConceptHierarchy
from repro.storage.index import InvertedIndex
from repro.storage.tables import (
    AssociationTable,
    ConceptStatsTable,
    DenormalizedCitationTable,
)
from repro.substrate.store import CorpusStore, InMemoryStore

__all__ = ["BioNavDatabase", "hierarchy_digest"]


def hierarchy_digest(hierarchy: ConceptHierarchy) -> str:
    """Fingerprint of the hierarchy's full (uid, label, parent) stream.

    This is the toy-scale content identity of a deployment; 40 hex chars
    to match the pipeline's ``content_key`` format.  The record walk is
    O(n) Python, so the result is memoized on the hierarchy instance,
    keyed by its positional-array ``content_key`` — mutation drops the
    arrays cache and with it the memo, keeping the digest honest.
    """
    arrays = getattr(hierarchy, "_arrays_cache", None)
    cached = getattr(hierarchy, "_digest_cache", None)
    if (
        arrays is not None
        and cached is not None
        and cached[0] == arrays.content_key
    ):
        return cached[1]
    hasher = hashlib.sha256()
    hasher.update(("%d" % len(hierarchy)).encode("utf-8"))
    for uid, label, parent in hierarchy.to_records():
        hasher.update(("%s\x1f%s\x1f%d\x1e" % (uid, label, parent)).encode("utf-8"))
    digest = hasher.hexdigest()[:40]
    if arrays is not None:
        hierarchy._digest_cache = (arrays.content_key, digest)
    return digest


class BioNavDatabase:
    """Off-line artifact store: hierarchy + corpus store + keyword index.

    Every concept→citation membership question is answered by
    :attr:`store`; the normalized/denormalized tables remain as the
    toy-scale persistence surface (and for databases loaded from the
    legacy JSON format, which carries no store).
    """

    def __init__(
        self,
        hierarchy: ConceptHierarchy,
        associations: Optional[AssociationTable] = None,
        denormalized: Optional[DenormalizedCitationTable] = None,
        stats: Optional[ConceptStatsTable] = None,
        index: Optional[InvertedIndex] = None,
        store: Optional[CorpusStore] = None,
    ):
        self.hierarchy = hierarchy
        self.associations = associations
        self.denormalized = denormalized
        self.stats = stats
        self.index = index
        self.store = store

    # ------------------------------------------------------------------
    # Off-line pre-processing
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, hierarchy: ConceptHierarchy, medline: MedlineDatabase
    ) -> "BioNavDatabase":
        """Run the off-line pre-processing pass over a MEDLINE snapshot."""
        associations = AssociationTable()
        index = InvertedIndex()
        for citation in medline.iter_citations():
            for concept in set(citation.concepts):
                associations.insert(concept, citation.pmid)
            index.add_document(citation.pmid, citation.searchable_text())
        stats = ConceptStatsTable()
        for concept in range(len(hierarchy)):
            count = medline.medline_count(concept)
            if count:
                stats.set_count(concept, count)
        return cls(
            hierarchy=hierarchy,
            associations=associations,
            denormalized=associations.denormalize(),
            stats=stats,
            index=index,
            store=InMemoryStore(medline, hierarchy=hierarchy),
        )

    @classmethod
    def from_store(
        cls, store: CorpusStore, hierarchy: Optional[ConceptHierarchy] = None
    ) -> "BioNavDatabase":
        """Stand up the database over an already-built corpus store.

        No extraction pass runs: the store *is* the pre-processing
        output.  The hierarchy defaults to the one captured in the
        store's build manifest.
        """
        if hierarchy is None:
            hierarchy = store.hierarchy()
        if hierarchy is None:
            raise ValueError(
                "store carries no hierarchy; pass one explicitly"
            )
        return cls(hierarchy=hierarchy, store=store)

    # ------------------------------------------------------------------
    # Online access paths (all routed through the corpus store)
    # ------------------------------------------------------------------
    def concepts_of_citations(
        self, pmids: Sequence[int]
    ) -> Dict[int, Tuple[int, ...]]:
        """Concept lists for a query result (denormalized access path)."""
        if self.store is not None:
            return self.store.concepts_of_citations(pmids)
        return self.denormalized.get_many(pmids)

    def annotations_for_result(self, pmids: Sequence[int]) -> Dict[int, FrozenSet[int]]:
        """concept → set of result PMIDs attached to it.

        This is exactly the input the initial navigation tree needs: the
        restriction of the association table to the query result.
        """
        if self.store is not None:
            return self.store.annotations_for_result(pmids)
        by_concept: Dict[int, set] = {}
        for pmid, concepts in self.denormalized.get_many(pmids).items():
            for concept in concepts:
                by_concept.setdefault(concept, set()).add(pmid)
        return {concept: frozenset(ids) for concept, ids in by_concept.items()}

    def medline_count(self, concept: int) -> int:
        """``LT(n)`` for the EXPLORE probability."""
        if self.store is not None:
            return self.store.medline_count(concept)
        return self.stats.count(concept)

    # ------------------------------------------------------------------
    # Content identity
    # ------------------------------------------------------------------
    def content_digest(self) -> str:
        """Deployment identity for the pipeline's hierarchy snapshot.

        Manifest-backed stores already carry a digest covering the
        hierarchy, the citation table, and every association file, so
        the snapshot key derives from it directly instead of rehashing
        48k hierarchy records per deployment.  Stores without a manifest
        (the toy in-memory path) keep the original hierarchy-record
        fingerprint, so seed cache keys are unchanged.
        """
        manifest = self.store.manifest_digest if self.store is not None else None
        if manifest:
            return hashlib.sha256(
                ("substrate|%s" % manifest).encode("utf-8")
            ).hexdigest()[:40]
        return hierarchy_digest(self.hierarchy)

    def store_info(self) -> Dict[str, object]:
        """Observability block describing the corpus backend."""
        if self.store is not None:
            return self.store.store_info()
        return {
            "backend": "tables",
            "path": None,
            "manifest": None,
            "citations": len(self.denormalized) if self.denormalized else 0,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Serialize everything except the keyword index to JSON.

        The index is cheap to rebuild from the corpus and dominates file
        size, so persistence stores only the pre-processing outputs the
        paper kept in Oracle: hierarchy, associations, and concept stats.
        Substrate-backed databases persist as their store directory
        instead (the manifest already owns that format).
        """
        if self.associations is None or self.stats is None:
            raise ValueError(
                "store-backed database: persistence is the substrate "
                "directory itself (see repro.substrate)"
            )
        payload = {
            "hierarchy": [list(r) for r in self.hierarchy.to_records()],
            "associations": [list(row) for row in self.associations.iter_rows()],
            "stats": [list(item) for item in self.stats.items()],
        }
        tmp_path = path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)

    @classmethod
    def load(cls, path: str, medline: Optional[MedlineDatabase] = None) -> "BioNavDatabase":
        """Load a saved database; rebuilds the keyword index from ``medline``.

        Args:
            path: file written by :meth:`save`.
            medline: corpus used to rebuild the keyword index; when omitted
                the index is left empty (navigation still works from PMIDs).
        """
        with open(path) as handle:
            payload = json.load(handle)
        hierarchy = ConceptHierarchy.from_records(
            (uid, label, parent) for uid, label, parent in payload["hierarchy"]
        )
        associations = AssociationTable()
        associations.insert_many(
            (concept, pmid) for concept, pmid in payload["associations"]
        )
        stats = ConceptStatsTable()
        for concept, count in payload["stats"]:
            stats.set_count(concept, count)
        index = InvertedIndex()
        if medline is not None:
            for citation in medline.iter_citations():
                index.add_document(citation.pmid, citation.searchable_text())
        # The legacy JSON format carries the association tables but not
        # the corpus, so the loaded database answers membership from the
        # tables path (store=None) regardless of the index corpus — the
        # saved associations, not the passed medline, are authoritative.
        return cls(
            hierarchy=hierarchy,
            associations=associations,
            denormalized=associations.denormalize(),
            stats=stats,
            index=index,
        )
