"""The BioNav database (paper §VII).

:class:`BioNavDatabase` is the product of BioNav's off-line pre-processing:
it holds the MeSH hierarchy, the concept–citation association tables (both
normalized and denormalized), the per-concept MEDLINE-wide counts, and the
keyword index the simulated ESearch runs over.

The paper harvested associations by issuing one PubMed query per MeSH
concept over ~20 days; :meth:`BioNavDatabase.build` performs the equivalent
extraction directly from the simulated :class:`MedlineDatabase` in one pass.
A JSON save/load round-trip is provided so pre-processing can be cached
between runs, mirroring the persistent Oracle store.
"""

from __future__ import annotations

import json
import os
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.concept import ConceptHierarchy
from repro.storage.index import InvertedIndex
from repro.storage.tables import (
    AssociationTable,
    ConceptStatsTable,
    DenormalizedCitationTable,
)

__all__ = ["BioNavDatabase"]


class BioNavDatabase:
    """Off-line artifact store: hierarchy + associations + keyword index."""

    def __init__(
        self,
        hierarchy: ConceptHierarchy,
        associations: AssociationTable,
        denormalized: DenormalizedCitationTable,
        stats: ConceptStatsTable,
        index: InvertedIndex,
    ):
        self.hierarchy = hierarchy
        self.associations = associations
        self.denormalized = denormalized
        self.stats = stats
        self.index = index

    # ------------------------------------------------------------------
    # Off-line pre-processing
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, hierarchy: ConceptHierarchy, medline: MedlineDatabase
    ) -> "BioNavDatabase":
        """Run the off-line pre-processing pass over a MEDLINE snapshot."""
        associations = AssociationTable()
        index = InvertedIndex()
        for citation in medline.iter_citations():
            for concept in set(citation.concepts):
                associations.insert(concept, citation.pmid)
            index.add_document(citation.pmid, citation.searchable_text())
        stats = ConceptStatsTable()
        for concept in range(len(hierarchy)):
            count = medline.medline_count(concept)
            if count:
                stats.set_count(concept, count)
        return cls(
            hierarchy=hierarchy,
            associations=associations,
            denormalized=associations.denormalize(),
            stats=stats,
            index=index,
        )

    # ------------------------------------------------------------------
    # Online access paths
    # ------------------------------------------------------------------
    def concepts_of_citations(
        self, pmids: Sequence[int]
    ) -> Dict[int, Tuple[int, ...]]:
        """Concept lists for a query result (denormalized access path)."""
        return self.denormalized.get_many(pmids)

    def annotations_for_result(self, pmids: Sequence[int]) -> Dict[int, FrozenSet[int]]:
        """concept → set of result PMIDs attached to it.

        This is exactly the input the initial navigation tree needs: the
        restriction of the association table to the query result.
        """
        by_concept: Dict[int, set] = {}
        for pmid, concepts in self.denormalized.get_many(pmids).items():
            for concept in concepts:
                by_concept.setdefault(concept, set()).add(pmid)
        return {concept: frozenset(ids) for concept, ids in by_concept.items()}

    def medline_count(self, concept: int) -> int:
        """``LT(n)`` for the EXPLORE probability."""
        return self.stats.count(concept)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Serialize everything except the keyword index to JSON.

        The index is cheap to rebuild from the corpus and dominates file
        size, so persistence stores only the pre-processing outputs the
        paper kept in Oracle: hierarchy, associations, and concept stats.
        """
        payload = {
            "hierarchy": [list(r) for r in self.hierarchy.to_records()],
            "associations": [list(row) for row in self.associations.iter_rows()],
            "stats": [list(item) for item in self.stats.items()],
        }
        tmp_path = path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)

    @classmethod
    def load(cls, path: str, medline: Optional[MedlineDatabase] = None) -> "BioNavDatabase":
        """Load a saved database; rebuilds the keyword index from ``medline``.

        Args:
            path: file written by :meth:`save`.
            medline: corpus used to rebuild the keyword index; when omitted
                the index is left empty (navigation still works from PMIDs).
        """
        with open(path) as handle:
            payload = json.load(handle)
        hierarchy = ConceptHierarchy.from_records(
            (uid, label, parent) for uid, label, parent in payload["hierarchy"]
        )
        associations = AssociationTable()
        associations.insert_many(
            (concept, pmid) for concept, pmid in payload["associations"]
        )
        stats = ConceptStatsTable()
        for concept, count in payload["stats"]:
            stats.set_count(concept, count)
        index = InvertedIndex()
        if medline is not None:
            for citation in medline.iter_citations():
                index.add_document(citation.pmid, citation.searchable_text())
        return cls(
            hierarchy=hierarchy,
            associations=associations,
            denormalized=associations.denormalize(),
            stats=stats,
            index=index,
        )
